//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds hermetically (no registry access), so the external
//! locking crate is replaced by this shim: the same `Mutex` / `MutexGuard` /
//! `Condvar` API surface the workspace uses, implemented over `std::sync`.
//! Differences from the real crate that matter here:
//!
//! - `lock()` is infallible: a poisoned std mutex is transparently recovered
//!   (parking_lot has no poisoning at all, so this matches its semantics).
//! - `Condvar::wait` takes `&mut MutexGuard` like parking_lot, which is why
//!   the guard wraps the std guard in an `Option` (taken and re-stored
//!   around the wait).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard wrapping the std guard; `Option` so `Condvar::wait` can take it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`
/// signatures, implemented over `std::sync::RwLock` (poison recovered).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable matching parking_lot's `wait(&mut MutexGuard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_reads_exclusive_writes() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
            assert!(l.try_write().is_none(), "readers must block writers");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        t.join().unwrap();
    }
}
