//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds hermetically (no registry access), so this shim
//! provides the slice of rand 0.8's API that the simulators use:
//! `Rng::gen_range` over half-open and inclusive numeric ranges,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic for a given seed, statistically strong
//! enough for sampling tests and random-circuit generation.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range from which `gen_range` can draw a single uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden seed for xoshiro.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extension providing Fisher–Yates `shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-12i32..-2);
            assert!((-12..-2).contains(&i));
            let u = rng.gen_range(3u32..=6);
            assert!((3..=6).contains(&u));
        }
    }

    #[test]
    fn unit_interval_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
