//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no registry access), so this shim
//! re-implements the property-testing surface the test suite uses:
//! `proptest!` test blocks with optional `#![proptest_config(..)]`,
//! numeric-range / tuple / `Just` strategies, `prop_map`,
//! `prop_filter_map`, `prop_oneof!` (weighted and unweighted),
//! `any::<T>()`, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design: cases are generated from a
//! fixed per-test seed (fully deterministic, no persistence files) and
//! failing inputs are reported but not shrunk.

pub mod test_runner {
    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. `sample` draws one value; combinators are
    /// provided as defaulted methods so the trait stays object-safe.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Maps and filters in one step; resamples until the closure
        /// accepts (bounded, to surface overly strict filters).
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` arms.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F, U> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map '{}' rejected 10000 samples in a row",
                self.whence
            );
        }
    }

    /// Weighted choice between type-erased arms (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "all prop_oneof! weights are zero"
            );
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut draw = rng.next_u64() % total;
            for (w, strat) in &self.arms {
                if draw < *w as u64 {
                    return strat.sample(rng);
                }
                draw -= *w as u64;
            }
            unreachable!("weighted draw out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Strategy for "any value of T"; implemented per primitive type.
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// `any::<T>()` — the full value domain of a primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // Arbitrary bit patterns, like real proptest's full-range f64:
            // includes NaNs, infinities and subnormals.
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of `collection::vec`.
    pub trait SizeBounds {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeBounds for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// `prop::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy, Z: SizeBounds>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod runner {
    use super::test_runner::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives one `proptest!` test item: `cfg.cases` deterministic cases.
    /// `case` returns a debug rendering of the sampled inputs plus the
    /// body's verdict; the first failure panics with both.
    pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> (String, Result<(), String>),
    {
        for i in 0..cfg.cases {
            let seed = fnv1a(name) ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
            let mut rng = StdRng::seed_from_u64(seed);
            let (inputs, verdict) = case(&mut rng);
            if let Err(msg) = verdict {
                panic!(
                    "proptest '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                    name,
                    i + 1,
                    cfg.cases,
                    msg,
                    inputs
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares a block of property tests. Each `fn name(arg in strategy, ..)`
/// item becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run_cases($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let __verdict: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__inputs, __verdict)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assertion inside `proptest!` bodies; fails the case (not the process)
/// so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err(
                    format!("assertion failed: {}", stringify!($cond)),
                );
            }
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err(
                    format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
                );
            }
        }
    };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`: {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        prop_oneof![
            8 => -1.0f64..1.0,
            1 => Just(0.0f64),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0usize..100, y in 1u32..=6, z in -3.0f64..3.0) {
            prop_assert!(x < 100);
            prop_assert!((1..=6).contains(&y));
            prop_assert!((-3.0..3.0).contains(&z), "z = {}", z);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn oneof_and_maps(x in small(), pair in (0u32..5, 0u32..5)) {
            prop_assert!(x.abs() < 1e12);
            prop_assert_eq!(pair.0 < 5, true);
        }

        #[test]
        fn filter_map_filters(d in (0u32..8, 0u32..8)
            .prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b))))
        {
            prop_assert!(d.0 != d.1);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
