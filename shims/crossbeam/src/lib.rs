//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace builds hermetically (no registry access), so this shim
//! supplies the two crossbeam facilities the engines use:
//!
//! - [`channel`]: multi-producer/multi-consumer bounded and unbounded
//!   channels with crossbeam's disconnect semantics (receivers drain the
//!   queue before reporting disconnection; senders fail once every
//!   receiver is gone).
//! - [`thread`]: `thread::scope` with crossbeam's closure shape — spawn
//!   closures receive a `&Scope` argument — implemented over
//!   `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    fn lock<T>(chan: &Chan<T>) -> MutexGuard<'_, Inner<T>> {
        chan.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sending half; clonable (mpmc).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; clonable (mpmc).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Returned by `send` when all receivers are gone; carries the value back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Returned by `recv` when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Returned by `try_send`; carries the value back like crossbeam's.
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A channel holding at most `cap` in-flight messages. `cap == 0`
    /// (a rendezvous channel in real crossbeam) is treated as capacity 1;
    /// no call site in this workspace uses a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// A channel with no backpressure.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once all receivers drop.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.chan);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self
                            .chan
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails immediately instead of waiting for
        /// room, returning the value either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.chan);
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = inner.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued in the channel.
        pub fn len(&self) -> usize {
            lock(&self.chan).queue.len()
        }

        /// Whether the channel holds no queued messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.chan).senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.chan);
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake receivers so they can observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; drains the queue before
        /// reporting disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.chan);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .chan
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like `recv` but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.chan);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Messages currently queued in the channel.
        pub fn len(&self) -> usize {
            lock(&self.chan).queue.len()
        }

        /// Whether the channel holds no queued messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.chan);
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.chan).receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.chan);
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake blocked senders so they can observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to spawn closures (crossbeam's closure shape).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Joinable handle mirroring crossbeam's `ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before this returns. Unlike crossbeam (which catches
    /// child panics and returns them as `Err`), std's scoped threads
    /// resume the panic on join — so the error arm is unreachable in
    /// practice, but callers' `.expect(..)` unwraps keep compiling.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounded_channel_round_trip() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn recv_drains_before_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected_without_blocking() {
        let (tx, rx) = channel::bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.len(), 1);
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.is_empty());
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Disconnected(3))
        ));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let h1 = s.spawn(|_| data[..2].iter().sum::<u64>());
            let h2 = s.spawn(|_| data[2..].iter().sum::<u64>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn blocked_sender_unblocks_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(0).unwrap();
        let t = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
    }
}
