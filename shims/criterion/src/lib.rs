//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds hermetically (no registry access), so the bench
//! targets link against this shim instead: the same `criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_function` /
//! `bench_with_input` API, backed by a plain warmup-then-measure timing
//! loop that prints mean ns/iter (plus throughput when configured).
//! No statistics, plots, or baselines — just honest wall-clock numbers.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation; folded into the printed report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` for a short warmup, then `iters` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        // Keep runs short: the shim reports means, not distributions, so a
        // handful of iterations per sample target is enough signal.
        let iters = (self.sample_size as u64).clamp(1, 50);
        let mut bencher = Bencher {
            iters,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.mean_ns;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib_s = n as f64 / per_iter.max(1.0) * 1e9 / (1u64 << 30) as f64;
                format!("  {:10.3} GiB/s", gib_s)
            }
            Some(Throughput::Elements(n)) => {
                let melem_s = n as f64 / per_iter.max(1.0) * 1e9 / 1e6;
                format!("  {:10.3} Melem/s", melem_s)
            }
            None => String::new(),
        };
        println!(
            "bench {:<40} {:>14.1} ns/iter{}",
            format!("{}/{}", self.name, id),
            per_iter,
            rate
        );
    }
}

/// Top-level harness object; one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
