//! Property tests over the substrates: bit kernels, compression
//! primitives, the device allocator, and QASM round trips — randomized
//! inputs, structural invariants.

use mq_circuit::{qasm, Circuit, Gate};
use mq_compress::{lzss, varint};
use mq_device::{Device, DeviceBuffer, DeviceSpec};
use mq_num::bits;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- bit kernels ---------------------------------------------------------

    #[test]
    fn insert_zero_bit_clears_exactly_that_bit(i in 0usize..(1 << 20), pos in 0u32..20) {
        let j = bits::insert_zero_bit(i, pos);
        prop_assert!(!bits::bit(j, pos));
        // Removing the inserted bit recovers i.
        let low = j & ((1usize << pos) - 1);
        let high = (j >> (pos + 1)) << pos;
        prop_assert_eq!(high | low, i);
    }

    #[test]
    fn split_join_identity(global in 0usize..(1 << 30), chunk_bits in 0u32..20) {
        let (c, o) = bits::split_index(global, chunk_bits);
        prop_assert_eq!(bits::join_index(c, o, chunk_bits), global);
    }

    #[test]
    fn bit_reverse_is_involutive(i in 0usize..(1 << 16)) {
        prop_assert_eq!(bits::bit_reverse(bits::bit_reverse(i, 16), 16), i);
    }

    // --- varint / lzss over arbitrary bytes -----------------------------------

    #[test]
    fn varint_round_trips(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn lzss_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut buf = Vec::new();
        lzss::encode(&data, &mut buf);
        let mut out = vec![0u8; data.len()];
        lzss::decode(&buf, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn fpc_round_trips_arbitrary_bit_patterns(raw in prop::collection::vec(any::<u64>(), 0..512)) {
        // Arbitrary u64 bit patterns — includes NaN payloads and subnormals.
        let data: Vec<f64> = raw.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = Vec::new();
        mq_compress::fpc::encode(&data, &mut buf);
        let mut out = vec![0.0f64; data.len()];
        mq_compress::fpc::decode(&buf, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // --- device allocator invariants -------------------------------------------

    #[test]
    fn arena_alloc_free_invariants(ops in prop::collection::vec((any::<bool>(), 1usize..200), 1..60)) {
        let device = Device::new(DeviceSpec::tiny_test(2048));
        let mut live: Vec<DeviceBuffer> = Vec::new();
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                match device.alloc(size) {
                    Ok(buf) => live.push(buf),
                    Err(_) => {
                        // OOM acceptable; accounting must still balance.
                    }
                }
            } else {
                let buf = live.swap_remove(size % live.len());
                device.free(buf).unwrap();
            }
            let used: usize = live.iter().map(|b| b.len()).sum();
            prop_assert_eq!(device.used_amps(), used);
            prop_assert_eq!(device.available_amps(), 2048 - used);
        }
        for buf in live {
            device.free(buf).unwrap();
        }
        prop_assert_eq!(device.used_amps(), 0);
        prop_assert_eq!(device.available_amps(), 2048);
    }

    // --- qasm round trip ---------------------------------------------------------

    #[test]
    fn qasm_round_trips_random_expressible_circuits(
        seeds in prop::collection::vec((0u8..7, 0u32..5, 0u32..5, -3.0f64..3.0), 1..30),
    ) {
        let n = 5u32;
        let mut circuit = Circuit::new(n);
        for (kind, a, b, theta) in seeds {
            let a = a % n;
            let b = b % n;
            let gate = match kind {
                0 => Gate::H(a),
                1 => Gate::T(a),
                2 => Gate::Rz(a, theta),
                3 => Gate::U3(a, theta, -theta, 0.5 * theta),
                4 if a != b => Gate::Cx(a, b),
                5 if a != b => Gate::Cp(a, b, theta),
                6 if a != b => Gate::Swap(a, b),
                _ => Gate::X(a),
            };
            circuit.push(gate);
        }
        let text = qasm::emit(&circuit).unwrap();
        let back = qasm::parse(&text).unwrap().circuit;
        prop_assert_eq!(back.n_qubits(), n);
        let want = mq_circuit::unitary::run_dense(&circuit, 0);
        let got = mq_circuit::unitary::run_dense(&back, 0);
        let err = mq_num::metrics::max_amp_err(&want, &got);
        prop_assert!(err < 1e-12, "round trip drifted by {}", err);
    }

    // --- partition invariants over random circuits ------------------------------

    #[test]
    fn partition_preserves_gates_and_bounds_high_sets(
        seeds in prop::collection::vec((0u8..6, 0u32..8, 0u32..8, -2.0f64..2.0), 1..40),
        chunk_bits in 1u32..8,
    ) {
        let n = 8u32;
        let mut circuit = Circuit::new(n);
        for (kind, a, b, theta) in seeds {
            let a = a % n;
            let b = b % n;
            let gate = match kind {
                0 => Gate::H(a),
                1 => Gate::Rz(a, theta),
                2 if a != b => Gate::Cx(a, b),
                3 if a != b => Gate::Cz(a, b),
                4 if a != b => Gate::Swap(a, b),
                5 if a != b => Gate::Rzz(a, b, theta),
                _ => Gate::X(a),
            };
            circuit.push(gate);
        }
        let plan = mq_circuit::partition::partition(
            &circuit,
            &mq_circuit::partition::PartitionConfig {
                chunk_bits,
                max_high_qubits: 2,
            },
        );
        let flat: Vec<&Gate> = plan.stages.iter().flat_map(|s| s.gates.iter()).collect();
        prop_assert_eq!(flat.len(), circuit.len());
        for (x, y) in flat.iter().zip(circuit.gates()) {
            prop_assert_eq!(*x, y);
        }
        for stage in &plan.stages {
            prop_assert!(stage.high_qubits.len() <= 2);
            for &h in &stage.high_qubits {
                prop_assert!(h >= chunk_bits);
            }
        }
    }
}
