//! Integration: the hybrid pipeline under stress and failure injection —
//! tiny staging pools, many chunks, worker threads, device OOM, and
//! sampling equivalence between dense and compressed paths.

use memqsim_core::{
    build_store, engine::hybrid, measure, ChunkStore, Counter, EngineError, MemQSimConfig, Role,
    Telemetry,
};
use mq_circuit::library;
use mq_circuit::unitary::run_dense;
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceError, DeviceSpec};
use mq_num::metrics::max_amp_err;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(chunk_bits: u32) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-12 },
        workers: 2,
        ..Default::default()
    }
}

fn run_hybrid(
    circuit: &mq_circuit::Circuit,
    config: &MemQSimConfig,
    device_amps: usize,
    pipelined: bool,
) {
    let store = build_store(circuit.n_qubits(), config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(device_amps));
    hybrid::run(&store, circuit, config, &device, pipelined).expect("hybrid run failed");
    let got = store.to_dense().expect("store readable");
    let want = run_dense(circuit, 0);
    let err = max_amp_err(&got, &want);
    assert!(err < 1e-8, "{}: err {err}", circuit.name());
}

#[test]
fn many_tiny_chunks_through_a_small_pool() {
    // 2^7 chunks of 4 amps each with only 1-3 in-flight slots.
    let circuit = library::qft(9);
    for buffers in [1usize, 2, 3] {
        let config = MemQSimConfig {
            pipeline_buffers: buffers,
            ..cfg(2)
        };
        run_hybrid(&circuit, &config, 1 << 12, true);
        run_hybrid(&circuit, &config, 1 << 12, false);
    }
}

#[test]
fn heavy_cpu_share_with_worker_threads() {
    let circuit = library::random_circuit(9, 6, 21);
    for share in [0.5, 0.9] {
        let config = MemQSimConfig {
            cpu_share: share,
            workers: 3,
            ..cfg(3)
        };
        run_hybrid(&circuit, &config, 1 << 12, true);
    }
}

#[test]
fn device_exactly_fits_the_staging_buffers() {
    // Device capacity == pipeline_buffers * group size: must succeed.
    let circuit = library::ghz(8);
    let config = cfg(3); // groups up to 2^(3+2) = 32 amps; 2 slots = 64 amps
    run_hybrid(&circuit, &config, 64, true);
}

#[test]
fn device_one_amp_short_is_oom() {
    let circuit = library::ghz(8);
    let config = cfg(3);
    let store = build_store(8, &config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(63));
    match hybrid::run(&store, &circuit, &config, &device, true) {
        Err(EngineError::Device(DeviceError::OutOfMemory {
            requested,
            available,
        })) => {
            assert_eq!(requested, 32);
            assert!(available < 32);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn store_survives_a_failed_run() {
    // After an OOM the store must still be structurally readable.
    let circuit = library::ghz(8);
    let config = cfg(3);
    let store = build_store(8, &config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(8));
    let _ = hybrid::run(&store, &circuit, &config, &device, true);
    let dense = store.to_dense().expect("store must stay readable");
    assert_eq!(dense.len(), 256);
    // The |0..0> amplitude is still there (no gates committed).
    assert!((store.norm().unwrap() - 1.0).abs() < 1e-6);
}

#[test]
fn sampling_matches_between_dense_and_compressed() {
    let circuit = library::w_state(8);
    let config = cfg(3);
    let store = build_store(8, &config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(1 << 10));
    hybrid::run(&store, &circuit, &config, &device, true).expect("run failed");

    let shots = 4000;
    let counts = measure::sample_counts(&store, shots, &mut StdRng::seed_from_u64(5)).unwrap();
    // W state: 8 single-excitation outcomes, each ~shots/8.
    assert_eq!(counts.len(), 8);
    for &(state, count) in &counts {
        assert_eq!(state.count_ones(), 1);
        let expect = shots as f64 / 8.0;
        assert!(
            (count as f64 - expect).abs() < expect * 0.5,
            "state {state:#b} count {count}"
        );
    }
}

#[test]
fn repeated_runs_on_one_device_reuse_memory_cleanly() {
    // Allocations must be freed between runs: 8 consecutive runs on a device
    // sized for ~1.5 runs' worth of buffers.
    let circuit = library::ghz(8);
    let config = cfg(3);
    let device = Device::new(DeviceSpec::tiny_test(96));
    for round in 0..8 {
        let store = build_store(8, &config).expect("store construction failed");
        hybrid::run(&store, &circuit, &config, &device, true)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    assert_eq!(device.used_amps(), 0, "device memory leaked");
}

#[test]
fn telemetry_record_balances_and_matches_report_durations() {
    // The report's duration fields are *derived* from the telemetry record,
    // so they must agree exactly — and the record itself must be coherent.
    let circuit = library::supremacy_like(9, 5, 4);
    let config = cfg(3);
    let store = build_store(9, &config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(1 << 12));
    let r = hybrid::run(&store, &circuit, &config, &device, true).expect("run failed");
    let t = &r.telemetry;

    // Every span opened was closed.
    assert!(
        t.balanced(),
        "{} opened, {} closed",
        t.spans_opened,
        t.spans_closed
    );
    // Role busy sums ARE the report durations.
    assert_eq!(r.wall, t.wall);
    assert_eq!(r.decompress, t.busy(Role::Decompress));
    assert_eq!(r.compress, t.busy(Role::Recompress));
    assert_eq!(r.cpu_apply, t.busy(Role::CpuApply));
    // Transfer counters mirror the device's own accounting.
    assert_eq!(t.counter(Counter::BytesH2d), r.device.bytes_h2d as u64);
    assert_eq!(t.counter(Counter::BytesD2h), r.device.bytes_d2h as u64);
    assert!(t.counter(Counter::KernelLaunches) > 0);
    assert!(t.counter(Counter::BytesDecompressed) > 0);
    assert!(t.counter(Counter::BytesCompressed) > 0);
    // Interval algebra: the union of busy intervals never exceeds the sum.
    assert!(t.union_busy() <= t.serial_sum());
    assert_eq!(t.serial_sum() - t.union_busy(), t.overlap());
}

#[test]
fn telemetry_counters_are_monotonic() {
    // Counters only ever accumulate while a handle is attached.
    let telemetry = Telemetry::new();
    let config = MemQSimConfig {
        chunk_bits: 2,
        codec: CodecSpec::Fpc,
        ..Default::default()
    };
    let store = build_store(6, &config).expect("store construction failed");
    store.attach_telemetry(telemetry.clone());
    let mut last_bytes = 0;
    let mut last_visits = 0;
    for basis in [0usize, 5, 9, 33, 63] {
        let _ = store.probability(basis).expect("store readable");
        let bytes = telemetry.counter(Counter::BytesDecompressed);
        let visits = telemetry.counter(Counter::ChunkVisits);
        assert!(bytes >= last_bytes, "{bytes} < {last_bytes}");
        assert!(visits > last_visits, "visit counter did not advance");
        last_bytes = bytes;
        last_visits = visits;
    }
    store.detach_telemetry();
    // Detached: further traffic leaves the counters untouched.
    let _ = store.probability(0).expect("store readable");
    assert_eq!(telemetry.counter(Counter::ChunkVisits), last_visits);
}

#[test]
fn pipelined_run_overlaps_roles_where_serial_does_not() {
    // 2^9 chunks in groups of 4 give the pipeline hundreds of work items per
    // stage: the producer's decompression of group k+1 must overlap the
    // completer's recompression of group k. The serial engine's stage
    // barrier makes overlap structurally impossible.
    let circuit = library::qft(11);
    let config = MemQSimConfig {
        workers: 2,
        ..cfg(2)
    };
    let mk = || build_store(11, &config).expect("store construction failed");
    let device = Device::new(DeviceSpec::tiny_test(1 << 12));

    let serial_store = mk();
    let serial = hybrid::run(&serial_store, &circuit, &config, &device, false).expect("serial");
    assert!(serial.telemetry.balanced());
    assert!(
        !serial.telemetry.has_role_overlap(),
        "serial run overlapped"
    );
    assert_eq!(serial.telemetry.overlap(), std::time::Duration::ZERO);
    assert_eq!(serial.telemetry.union_busy(), serial.telemetry.serial_sum());

    let piped_store = mk();
    let piped = hybrid::run(&piped_store, &circuit, &config, &device, true).expect("pipelined");
    assert!(piped.telemetry.balanced());
    assert!(
        piped.telemetry.union_busy() < piped.telemetry.serial_sum(),
        "pipelined run shows no measured overlap: union {:?} vs sum {:?}",
        piped.telemetry.union_busy(),
        piped.telemetry.serial_sum()
    );
    assert!(piped.telemetry.has_role_overlap());
}

#[test]
fn pipelined_and_serial_produce_identical_states() {
    let circuit = library::supremacy_like(9, 5, 4);
    let config = cfg(3);
    let mk = || build_store(9, &config).expect("store construction failed");
    let a = mk();
    let b = mk();
    let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
    hybrid::run(&a, &circuit, &config, &dev, true).unwrap();
    hybrid::run(&b, &circuit, &config, &dev, false).unwrap();
    let err = max_amp_err(&a.to_dense().unwrap(), &b.to_dense().unwrap());
    assert!(err < 1e-12, "pipelining changed the result: {err}");
}
