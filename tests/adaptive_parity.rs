//! Adaptive-codec parity: `CodecSpec::Auto` without an error allowance may
//! pick a different backend per chunk, but every pick is lossless — so the
//! run must be an observational no-op relative to each static lossless
//! codec: same bits, same work accounting, same cache-visit identity. Only
//! payload sizes (and therefore link traffic) are allowed to move.
//!
//! With a fidelity budget configured, the run-level error ledger must stay
//! within the budget and the end state must actually hit the target.

use memqsim_core::engine::{cpu, hybrid, Granularity};
use memqsim_core::{build_store, ChunkStore, MemQSimConfig, RunReport};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceSpec, DeviceTopology};
use mq_num::metrics::fidelity;
use mq_num::Complex64;
use mq_telemetry::Counter;

fn config(codec: CodecSpec) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec,
        workers: 1,
        // Half the chunks fit, so the hits+misses==visits identity is
        // exercised with real evictions rather than trivially with zeros.
        cache_bytes: 8 * (1 << 3) * std::mem::size_of::<Complex64>(),
        ..Default::default()
    }
}

#[derive(Clone, Copy)]
enum Engine {
    Cpu(Granularity),
    Hybrid { pipelined: bool },
}

impl Engine {
    fn label(&self) -> String {
        match self {
            Engine::Cpu(g) => format!("cpu/{g:?}"),
            Engine::Hybrid { pipelined } => format!("hybrid/pipelined={pipelined}"),
        }
    }
}

fn run(circuit: &Circuit, codec: CodecSpec, engine: Engine) -> (Vec<Complex64>, RunReport) {
    let cfg = config(codec);
    let store = build_store(circuit.n_qubits(), &cfg).expect("store");
    let report = match engine {
        Engine::Cpu(granularity) => cpu::run(&store, circuit, &cfg, granularity).expect("cpu run"),
        Engine::Hybrid { pipelined } => {
            let device = Device::new(DeviceSpec::tiny_test(1 << 12));
            hybrid::run(&store, circuit, &cfg, &device, pipelined).expect("hybrid run")
        }
    };
    (store.to_dense().expect("dense"), report)
}

const ENGINES: [Engine; 4] = [
    Engine::Cpu(Granularity::Staged),
    Engine::Cpu(Granularity::PerGate),
    Engine::Hybrid { pipelined: true },
    Engine::Hybrid { pipelined: false },
];

const STATIC_LOSSLESS: [CodecSpec; 3] =
    [CodecSpec::ZeroRle, CodecSpec::Fpc, CodecSpec::ShuffleLzss];

fn assert_cache_identity(r: &RunReport, tag: &str) {
    let hits = r.telemetry.counter(Counter::CacheHits);
    let misses = r.telemetry.counter(Counter::CacheMisses);
    assert_eq!(
        hits + misses,
        r.telemetry.counter(Counter::ChunkVisits),
        "cache visit identity broke: {tag}"
    );
}

/// Every workload, both granularities, CPU and hybrid engines: lossless
/// Auto computes the same bits with the same accounting as every static
/// lossless codec.
#[test]
fn lossless_auto_matches_every_static_codec() {
    for engine in ENGINES {
        for circuit in library::standard_suite(7) {
            let (auto_state, auto) = run(&circuit, CodecSpec::Auto { eb: None }, engine);
            let auto_tag = format!("{} auto {}", circuit.name(), engine.label());
            assert_cache_identity(&auto, &auto_tag);
            for spec in STATIC_LOSSLESS {
                let (state, r) = run(&circuit, spec, engine);
                let tag = format!("{} {spec} {}", circuit.name(), engine.label());
                assert_eq!(auto_state, state, "state diverged: {tag}");
                assert_eq!(auto.gates_applied, r.gates_applied, "{tag}");
                assert_eq!(auto.scalars_applied, r.scalars_applied, "{tag}");
                assert_eq!(auto.chunk_visits, r.chunk_visits, "{tag}");
                assert_eq!(auto.stages, r.stages, "{tag}");
                assert_eq!(auto.groups_device, r.groups_device, "{tag}");
                assert_eq!(auto.groups_cpu, r.groups_cpu, "{tag}");
                assert_cache_identity(&r, &tag);
            }
            // Lossless-only selection must never record a lossy encode or
            // an f32 demotion, and the budget fields stay inert.
            assert_eq!(
                auto.telemetry.counter(Counter::LossyEncodes),
                0,
                "{auto_tag}"
            );
            assert_eq!(
                auto.telemetry.counter(Counter::MixedPrecisionChunks),
                0,
                "{auto_tag}"
            );
            assert_eq!(auto.fidelity_budget, None, "{auto_tag}");
            assert_eq!(auto.error_spent, 0.0, "{auto_tag}");
        }
    }
}

/// On a device fleet the aggregate stream accounting must equal the sum of
/// the per-device lanes, and sharded Auto stays bit-identical to one device.
#[test]
fn auto_fleet_accounting_sums_per_device() {
    let circuit = library::qft(7);
    let spec = CodecSpec::Auto { eb: None };
    let cfg = config(spec);
    let single = {
        let store = build_store(7, &cfg).expect("store");
        let device = Device::new(DeviceSpec::tiny_test(1 << 12));
        hybrid::run(&store, &circuit, &cfg, &device, true).expect("run");
        store.to_dense().expect("dense")
    };
    for devices in [2usize, 4] {
        let store = build_store(7, &cfg).expect("store");
        let fleet = DeviceTopology::homogeneous(devices, DeviceSpec::tiny_test(1 << 12)).build();
        let r = hybrid::run_fleet(&store, &circuit, &cfg, &fleet, true).expect("run");
        assert_eq!(single, store.to_dense().expect("dense"), "x{devices}");
        assert_eq!(r.per_device.len(), devices, "x{devices}");
        for (field, total, per) in [
            (
                "bytes_h2d",
                r.device.bytes_h2d,
                r.per_device.iter().map(|d| d.bytes_h2d).sum::<usize>(),
            ),
            (
                "bytes_d2h",
                r.device.bytes_d2h,
                r.per_device.iter().map(|d| d.bytes_d2h).sum(),
            ),
            (
                "bytes_h2d_compressed",
                r.device.bytes_h2d_compressed,
                r.per_device.iter().map(|d| d.bytes_h2d_compressed).sum(),
            ),
            (
                "bytes_d2h_compressed",
                r.device.bytes_d2h_compressed,
                r.per_device.iter().map(|d| d.bytes_d2h_compressed).sum(),
            ),
        ] {
            assert_eq!(total, per, "{field} aggregate != per-device sum x{devices}");
        }
    }
}

/// A fidelity budget turns into a per-stage error ledger that sums within
/// the run-level allowance, and the end state actually meets the target
/// against the lossless reference.
#[test]
fn fidelity_budget_ledger_stays_within_budget() {
    let circuit = library::qft(7);
    let (reference, _) = run(
        &circuit,
        CodecSpec::Auto { eb: None },
        Engine::Cpu(Granularity::Staged),
    );
    let target = 0.999;
    let cfg = MemQSimConfig {
        fidelity_budget: Some(target),
        ..config(CodecSpec::Auto { eb: None })
    };
    let store = build_store(7, &cfg).expect("store");
    let report = cpu::run(&store, &circuit, &cfg, Granularity::Staged).expect("budgeted run");
    let state = store.to_dense().expect("dense");

    assert_eq!(report.fidelity_budget, Some(target));
    assert!(report.error_budget > 0.0);
    let ledger = report.telemetry.error_spend();
    assert_eq!(ledger.len(), report.stages, "one ledger entry per stage");
    let allocated: f64 = ledger.iter().map(|s| s.allocated).sum();
    assert!(
        (allocated - report.error_budget).abs() <= report.error_budget * 1e-12,
        "allocations must exhaust the budget: {allocated} vs {}",
        report.error_budget
    );
    for s in ledger {
        assert!(
            s.spent == 0.0 || s.spent == s.allocated,
            "stage {} spent {} outside {{0, {}}}",
            s.stage,
            s.spent,
            s.allocated
        );
    }
    assert!(
        report.error_spent <= report.error_budget,
        "spent {} exceeds budget {}",
        report.error_spent,
        report.error_budget
    );
    let f = fidelity(&reference, &state);
    assert!(f >= target, "fidelity {f} below target {target}");
}
