//! Sharded-execution parity: an N-device fleet must be an observational
//! no-op relative to one device — same bits, same accounting — because
//! chunk groups within a stage touch disjoint chunk sets, so *where* a
//! group runs can never change *what* it computes. Only the modeled
//! makespan (max over device lanes) is allowed to move.

use memqsim_core::engine::hybrid;
use memqsim_core::{build_store, ChunkStore, MemQSimConfig, RunReport, ShardPolicy};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{DeviceSpec, DeviceTopology};
use mq_num::Complex64;

fn config(devices: usize, policy: ShardPolicy) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        devices,
        shard_policy: policy,
        ..Default::default()
    }
}

fn run_fleet(
    circuit: &Circuit,
    devices: usize,
    policy: ShardPolicy,
    pipelined: bool,
) -> (Vec<Complex64>, RunReport) {
    let cfg = config(devices, policy);
    let store = build_store(circuit.n_qubits(), &cfg).expect("store");
    let fleet = DeviceTopology::homogeneous(devices, DeviceSpec::tiny_test(1 << 12)).build();
    let report = hybrid::run_fleet(&store, circuit, &cfg, &fleet, pipelined).expect("run");
    (store.to_dense().expect("dense"), report)
}

/// Every workload, pipelined and serial, 2 and 4 devices: bit-identical
/// states and identical work accounting against the single-device run.
#[test]
fn sharded_runs_are_bit_identical_to_single_device() {
    for pipelined in [true, false] {
        for circuit in library::standard_suite(7) {
            let (one_state, one) = run_fleet(&circuit, 1, ShardPolicy::ChunkAffinity, pipelined);
            for devices in [2usize, 4] {
                let (state, r) =
                    run_fleet(&circuit, devices, ShardPolicy::ChunkAffinity, pipelined);
                let tag = format!("{} x{devices} pipelined={pipelined}", circuit.name());
                assert_eq!(one_state, state, "state diverged: {tag}");
                assert_eq!(r.gates_applied, one.gates_applied, "{tag}");
                assert_eq!(r.scalars_applied, one.scalars_applied, "{tag}");
                assert_eq!(r.chunk_visits, one.chunk_visits, "{tag}");
                assert_eq!(r.stages, one.stages, "{tag}");
                assert_eq!(r.groups_device, one.groups_device, "{tag}");
                assert_eq!(r.groups_cpu, one.groups_cpu, "{tag}");
            }
        }
    }
}

/// Every shard policy routes differently but computes identically.
#[test]
fn every_shard_policy_is_a_semantic_noop() {
    let circuit = library::random_circuit(7, 6, 11);
    let (reference, _) = run_fleet(&circuit, 1, ShardPolicy::ChunkAffinity, true);
    for policy in [
        ShardPolicy::ChunkAffinity,
        ShardPolicy::RoundRobin,
        ShardPolicy::LoadBalanced,
    ] {
        for devices in [2usize, 3, 4] {
            let (state, _) = run_fleet(&circuit, devices, policy, true);
            assert_eq!(reference, state, "{policy:?} x{devices}");
        }
    }
}

/// The fleet aggregate in the report is exactly the fold of the per-device
/// lanes: `modeled` is the makespan (max), every other column sums.
#[test]
fn per_device_stats_sum_to_fleet_totals() {
    for devices in [1usize, 2, 4] {
        let (_, r) = run_fleet(&library::qft(7), devices, ShardPolicy::ChunkAffinity, true);
        let lanes = &r.per_device;
        assert_eq!(lanes.len(), devices);
        let makespan = lanes.iter().map(|s| s.modeled).max().expect("lanes");
        assert_eq!(r.device.modeled, makespan, "x{devices}");
        assert_eq!(
            r.device.modeled_h2d,
            lanes.iter().map(|s| s.modeled_h2d).sum(),
            "x{devices}"
        );
        assert_eq!(
            r.device.modeled_d2h,
            lanes.iter().map(|s| s.modeled_d2h).sum(),
            "x{devices}"
        );
        assert_eq!(
            r.device.modeled_kernel,
            lanes.iter().map(|s| s.modeled_kernel).sum(),
            "x{devices}"
        );
        assert_eq!(
            r.device.bytes_h2d,
            lanes.iter().map(|s| s.bytes_h2d).sum::<usize>(),
            "x{devices}"
        );
        assert_eq!(
            r.device.bytes_d2h,
            lanes.iter().map(|s| s.bytes_d2h).sum::<usize>(),
            "x{devices}"
        );
        assert_eq!(
            r.device.commands,
            lanes.iter().map(|s| s.commands).sum::<usize>(),
            "x{devices}"
        );
        // Telemetry lanes mirror the stream stats and account for every
        // device-routed group.
        let tl = r.telemetry.device_lanes();
        assert_eq!(tl.len(), devices);
        assert_eq!(
            tl.iter().map(|l| l.groups).sum::<u64>() as usize,
            r.groups_device,
            "x{devices}"
        );
        for (i, lane) in tl.iter().enumerate() {
            assert_eq!(lane.device, i);
            assert_eq!(lane.bytes_h2d as usize, lanes[i].bytes_h2d);
            assert_eq!(lane.bytes_d2h as usize, lanes[i].bytes_d2h);
            assert_eq!(lane.modeled_ns as u128, lanes[i].modeled.as_nanos());
            assert_eq!(
                lane.kernel_time_ns as u128,
                lanes[i].modeled_kernel.as_nanos()
            );
        }
        assert!(r.telemetry.load_imbalance() >= 1.0, "x{devices}");
    }
}

/// The single-device configuration through the fleet entry point must
/// reproduce the pre-refactor single-device report shape: the old executor
/// name, one lane equal to the aggregate, neutral imbalance.
#[test]
fn one_device_fleet_reproduces_the_single_device_report() {
    let (_, r) = run_fleet(&library::qft(7), 1, ShardPolicy::ChunkAffinity, true);
    assert_eq!(r.executor, "device-pipeline[pipelined]");
    assert_eq!(r.per_device.len(), 1);
    assert_eq!(r.per_device[0], r.device);
    assert_eq!(r.telemetry.load_imbalance(), 1.0);

    let (_, serial) = run_fleet(&library::qft(7), 1, ShardPolicy::ChunkAffinity, false);
    assert_eq!(serial.executor, "device-pipeline[serial]");
    assert!(!serial.telemetry.has_role_overlap());
}

/// Spreading the same groups over more devices shortens the modeled
/// makespan — the whole point of sharding.
#[test]
fn more_devices_shrink_the_modeled_makespan() {
    let circuit = library::qft(8);
    let (_, r1) = run_fleet(&circuit, 1, ShardPolicy::ChunkAffinity, true);
    let (_, r2) = run_fleet(&circuit, 2, ShardPolicy::ChunkAffinity, true);
    let (_, r4) = run_fleet(&circuit, 4, ShardPolicy::ChunkAffinity, true);
    assert!(r2.device.modeled < r1.device.modeled);
    assert!(r4.device.modeled < r2.device.modeled);
}
