//! Acceptance: the disk-spill tier completes circuits whose decompressed
//! working set does not fit in the configured resident budget — the layered
//! realization of the paper's "simulate past the memory limit" direction —
//! while keeping the store's resident bytes inside the budget throughout.

use memqsim_core::engine::{cpu, Granularity};
use memqsim_core::{build_store, ChunkStore, MemQSimConfig, StoreKind};
use mq_circuit::library;
use mq_circuit::unitary::run_dense;
use mq_compress::CodecSpec;
use mq_num::metrics::max_amp_err;

fn spill_cfg(chunk_bits: u32, resident_budget: usize) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        store_kind: StoreKind::Spill { resident_budget },
        ..Default::default()
    }
}

#[test]
fn acceptance_spill_run_exceeding_budget_completes_under_it() {
    // A Porter–Thomas-like random state is incompressible: with Fpc the
    // stored chunks weigh about as much as the 2^12 * 16 B = 64 KiB dense
    // state. An 8 KiB resident budget therefore cannot hold the working set
    // — the run only completes if chunks actually cycle through disk.
    let n = 12u32;
    let budget = 8 << 10;
    let dense_bytes = (1usize << n) * 16;
    assert!(
        dense_bytes > 4 * budget,
        "test premise: working set >> budget"
    );

    let circuit = library::random_circuit(n, 6, 42);
    let cfg = spill_cfg(6, budget);
    let store = build_store(n, &cfg).expect("store construction failed");
    let report = cpu::run(&store, &circuit, &cfg, Granularity::Staged).expect("spill run failed");

    // The store never held more than the budget in memory...
    assert!(
        store.peak_resident_bytes() <= budget,
        "peak resident {} exceeds budget {}",
        store.peak_resident_bytes(),
        budget
    );
    assert_eq!(report.peak_resident_bytes, store.peak_resident_bytes());
    // ...which is only possible because chunks went to disk and came back.
    let counters = store.counters();
    assert!(counters.spill_bytes_written > 0, "nothing was ever spilled");
    assert!(
        counters.spill_bytes_read > 0,
        "spilled chunks never reloaded"
    );

    // And the answer is still exact (Fpc is lossless).
    let got = store.to_dense().expect("store readable after spill run");
    let want = run_dense(&circuit, 0);
    let err = max_amp_err(&got, &want);
    assert!(err < 1e-10, "spill run drifted from dense oracle: {err}");
}

#[test]
fn spill_store_round_trips_through_the_facade() {
    // The same store kind selected through the public builder, end to end.
    let n = 10u32;
    let cfg = MemQSimConfig::builder()
        .chunk_bits(5)
        .codec(CodecSpec::Sz { eb: 1e-10 })
        .store_kind(StoreKind::Spill {
            resident_budget: 2 << 10,
        })
        .build()
        .expect("valid config");
    let sim = memqsim_core::MemQSim::new(cfg);
    let outcome = sim.simulate(&library::ghz(n)).expect("simulation failed");
    assert!((outcome.probability(0) - 0.5).abs() < 1e-6);
    assert!((outcome.probability((1 << n) - 1) - 0.5).abs() < 1e-6);
    assert!(outcome.store.peak_resident_bytes() <= 2 << 10);
}
