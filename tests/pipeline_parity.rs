//! Integration: the pipelined CPU executor. Every `pipeline_depth` must be
//! observationally identical to the serial loop — same state, same
//! accounting — while actually overlapping the decode/apply/encode roles,
//! and the new builder knobs must validate through the facade.

use memqsim_core::{build_store, ChunkStore, Granularity, MemQSimConfig, Role};
use mq_circuit::unitary::run_dense;
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_num::metrics::max_amp_err;
use mq_num::Complex64;

fn cfg(chunk_bits: u32, depth: usize, workers: usize) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers,
        pipeline_depth: depth,
        ..Default::default()
    }
}

fn run_at_depth(
    circuit: &Circuit,
    depth: usize,
    granularity: Granularity,
) -> (Vec<Complex64>, memqsim_core::engine::RunReport) {
    let config = cfg(3, depth, 2);
    let store = build_store(circuit.n_qubits(), &config).expect("store");
    let report =
        memqsim_core::engine::cpu::run(&store, circuit, &config, granularity).expect("run");
    (store.to_dense().expect("dense"), report)
}

#[test]
fn every_depth_matches_serial_state_and_accounting() {
    for circuit in library::standard_suite(7) {
        for granularity in [Granularity::Staged, Granularity::PerGate] {
            let (serial_state, serial) = run_at_depth(&circuit, 1, granularity);
            for depth in [2usize, 4, 8] {
                let (state, r) = run_at_depth(&circuit, depth, granularity);
                let err = max_amp_err(&serial_state, &state);
                assert!(
                    err < 1e-12,
                    "{} depth {depth} {granularity:?}: drifted by {err}",
                    circuit.name()
                );
                // The pipeline reorders work in time, never in meaning: every
                // accounting column the serial loop reports must be identical.
                assert_eq!(r.executor, serial.executor, "{}", circuit.name());
                assert_eq!(r.stages, serial.stages, "{}", circuit.name());
                assert_eq!(r.chunk_visits, serial.chunk_visits, "{}", circuit.name());
                assert_eq!(r.gates_applied, serial.gates_applied, "{}", circuit.name());
                assert_eq!(
                    r.scalars_applied,
                    serial.scalars_applied,
                    "{}",
                    circuit.name()
                );
                assert_eq!(r.gates_fused, serial.gates_fused, "{}", circuit.name());
                assert_eq!(r.groups_cpu, serial.groups_cpu, "{}", circuit.name());
                assert_eq!(r.groups_device, 0, "{}", circuit.name());
            }
        }
    }
}

#[test]
fn depth_matches_the_dense_oracle_end_to_end() {
    let circuit = library::qft(9);
    let want = run_dense(&circuit, 0);
    for depth in [1usize, 2, 4, 8] {
        let (state, _) = run_at_depth(&circuit, depth, Granularity::Staged);
        let err = max_amp_err(&state, &want);
        assert!(err < 1e-10, "depth {depth}: {err}");
    }
}

#[test]
fn pipelined_run_overlaps_the_three_roles() {
    // Enough stages x groups that decode of group k+1 reliably lands while
    // apply/encode of group k is still open. Whether spans interleave on a
    // single-CPU or loaded host depends on where the OS preempts, so one
    // non-overlapping run is scheduler noise; three in a row is a real
    // regression.
    let circuit = library::qft(12);
    let config = MemQSimConfig {
        codec: CodecSpec::Sz { eb: 1e-10 },
        ..cfg(4, 4, 3)
    };
    let run = || {
        let store = build_store(12, &config).expect("store");
        memqsim_core::engine::cpu::run(&store, &circuit, &config, Granularity::Staged).expect("run")
    };
    let mut r = run();
    for _ in 0..2 {
        if r.telemetry.has_role_overlap() {
            break;
        }
        r = run();
    }
    assert!(r.telemetry.balanced(), "unbalanced spans");
    assert!(
        r.telemetry.has_role_overlap(),
        "pipelined run recorded no role overlap in 3 attempts"
    );
    for role in [Role::Decompress, Role::CpuApply, Role::Recompress] {
        assert!(
            r.telemetry.busy(role) > std::time::Duration::ZERO,
            "{role:?} idle"
        );
    }
    // The emitted JSON carries the flag CI greps for.
    assert!(r
        .telemetry
        .to_json(false)
        .contains("\"role_overlap\": true"));
}

#[test]
fn serial_run_records_no_role_overlap() {
    let circuit = library::qft(10);
    let config = cfg(4, 1, 1);
    let store = build_store(10, &config).expect("store");
    let r = memqsim_core::engine::cpu::run(&store, &circuit, &config, Granularity::Staged)
        .expect("run");
    assert!(r.telemetry.balanced());
    assert!(!r.telemetry.has_role_overlap());
    assert_eq!(r.telemetry.overlap(), std::time::Duration::ZERO);
}

#[test]
fn pipelined_peak_buffer_is_the_in_flight_budget() {
    // depth in-flight groups x group amplitudes x 16 bytes — the knob's
    // memory claim, verifiable straight off the report: doubling the depth
    // doubles the working-buffer peak, amplitude-aligned.
    let circuit = library::ghz(9);
    let run = |depth: usize| {
        let config = cfg(3, depth, 2);
        let store = build_store(9, &config).expect("store");
        memqsim_core::engine::cpu::run(&store, &circuit, &config, Granularity::Staged).expect("run")
    };
    let r2 = run(2);
    let r4 = run(4);
    assert_eq!(r4.peak_buffer_bytes, 2 * r2.peak_buffer_bytes);
    assert_eq!(r2.peak_buffer_bytes % (2 * 16), 0);
    assert!(r2.peak_buffer_bytes > 0);
    assert!(r4.peak_working_bytes() >= r4.peak_buffer_bytes);
}

#[test]
fn builder_knobs_validate_through_the_facade() {
    use memqsim_suite::{MemQSimConfig, WorkerSplit};

    let ok = MemQSimConfig::builder()
        .chunk_bits(4)
        .pipeline_depth(4)
        .worker_split(WorkerSplit::new(2, 1, 2))
        .build()
        .expect("valid config");
    assert_eq!(ok.pipeline_depth, 4);
    assert_eq!(ok.worker_split, Some(WorkerSplit::new(2, 1, 2)));

    let err = MemQSimConfig::builder()
        .pipeline_depth(0)
        .build()
        .unwrap_err();
    assert!(err.contains("pipeline_depth"), "{err}");

    let err = MemQSimConfig::builder()
        .worker_split(WorkerSplit::new(1, 0, 1))
        .build()
        .unwrap_err();
    assert!(err.contains("worker_split"), "{err}");

    // Depth 1 is the documented serial mode, not an error.
    assert!(MemQSimConfig::builder().pipeline_depth(1).build().is_ok());
}

/// ROADMAP item 4 (measurement half): the commutation-aware reordering
/// pass must *measurably* cut chunk visits — the engine's own visit
/// counters, not stage counts, are the evidence. Random and QAOA circuits
/// interleave chunk-crossing and local gates, which is exactly the shape
/// the pass exists to fix; GHZ-style linear chains have nothing to reclaim
/// and only need to not regress.
#[test]
fn reorder_pass_measurably_cuts_chunk_visits() {
    let run_with = |circuit: &Circuit, reorder: bool| {
        let config = MemQSimConfig {
            reorder,
            ..cfg(3, 1, 2)
        };
        let store = build_store(circuit.n_qubits(), &config).expect("store");
        let report = memqsim_core::engine::cpu::run(&store, circuit, &config, Granularity::Staged)
            .expect("run");
        (store.to_dense().expect("dense"), report)
    };
    let graph = library::ring_graph(8);
    let workloads = vec![
        library::random_circuit(8, 8, 2),
        library::random_circuit(8, 8, 5),
        library::qaoa_maxcut(8, &graph, &[0.7, 0.4], &[0.3, 0.9]),
    ];
    let mut improved = 0usize;
    for circuit in &workloads {
        let (base_state, base) = run_with(circuit, false);
        let (reordered_state, reordered) = run_with(circuit, true);
        // Correctness first: reordering is semantics-preserving.
        let err = max_amp_err(&base_state, &reordered_state);
        assert!(err < 1e-10, "{}: reorder drifted by {err}", circuit.name());
        // Never worse, on any workload.
        assert!(
            reordered.chunk_visits <= base.chunk_visits,
            "{}: reorder increased visits {} -> {}",
            circuit.name(),
            base.chunk_visits,
            reordered.chunk_visits
        );
        if reordered.chunk_visits < base.chunk_visits {
            improved += 1;
        }
    }
    assert!(
        improved >= 2,
        "reorder pass reduced chunk visits on only {improved}/{} workloads",
        workloads.len()
    );
}
