//! Integration: the memory claims — peak accounting, compression-ratio
//! behaviour across workload classes, and the qubit-extension mechanism
//! behind the paper's "+5 qubits".

use memqsim_core::{ChunkStore, CompressedTier, Granularity, MemQSimConfig};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use std::sync::Arc;

fn run(
    circuit: &Circuit,
    chunk_bits: u32,
    codec: CodecSpec,
) -> (Arc<CompressedTier>, memqsim_core::engine::RunReport) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec,
        workers: 1,
        ..Default::default()
    };
    let store = Arc::new(CompressedTier::zero_state(
        circuit.n_qubits(),
        cfg.effective_chunk_bits(circuit.n_qubits()),
        Arc::from(codec.build()),
    ));
    let engine_store: Arc<dyn ChunkStore> = store.clone();
    let report = memqsim_core::engine::cpu::run(&engine_store, circuit, &cfg, Granularity::Staged)
        .expect("run failed");
    (store, report)
}

#[test]
fn structured_states_compress_far_below_dense() {
    let sz = CodecSpec::Sz { eb: 1e-10 };
    for (circuit, min_ratio) in [
        (library::ghz(14), 50.0),
        (library::w_state(14), 40.0),
        (library::bernstein_vazirani(13, 0b1010101), 50.0),
    ] {
        let (store, _) = run(&circuit, 8, sz);
        let ratio = store.current_ratio();
        assert!(
            ratio > min_ratio,
            "{}: ratio {ratio} < {min_ratio}",
            circuit.name()
        );
    }
}

#[test]
fn random_states_do_not_compress() {
    let (store, _) = run(
        &library::random_circuit(12, 10, 3),
        6,
        CodecSpec::Sz { eb: 1e-10 },
    );
    let ratio = store.current_ratio();
    assert!(ratio < 2.0, "Porter–Thomas state compressed {ratio}x?!");
}

#[test]
fn peak_tracks_the_worst_moment_not_the_end() {
    // A circuit that inflates mid-run (uniform superposition) then returns
    // to a basis state: the peak must exceed the final footprint.
    let n = 12u32;
    let mut circuit = Circuit::named(n, "inflate-deflate");
    for q in 0..n {
        circuit.h(q);
    }
    for q in 0..n {
        circuit.h(q);
    }
    let (store, report) = run(&circuit, 6, CodecSpec::Sz { eb: 1e-10 });
    assert!(
        report.peak_compressed_bytes > store.state_bytes(),
        "peak {} vs final {}",
        report.peak_compressed_bytes,
        store.state_bytes()
    );
}

#[test]
fn tighter_bounds_cost_more_resident_bytes() {
    let circuit = library::qft(12);
    let (loose, _) = run(&circuit, 6, CodecSpec::Sz { eb: 1e-4 });
    let (tight, _) = run(&circuit, 6, CodecSpec::Sz { eb: 1e-12 });
    assert!(loose.state_bytes() < tight.state_bytes());
}

#[test]
fn qubit_extension_mechanism_ghz() {
    // The C3 experiment in miniature: at a budget that caps dense
    // simulation at 10 qubits, compressed GHZ fits with >= 5 extra qubits.
    // At this miniature scale the per-chunk container floor (~33 bytes of
    // SZ header/table per chunk) is what finally exhausts the budget — the
    // paper's "excessively fine granularity lowers the ratio" trade-off in
    // action. The full-scale version of this experiment is the
    // `qubit_extension` harness binary.
    let budget = (1usize << 10) * 16; // dense limit: 10 qubits
    let codec = CodecSpec::Sz { eb: 1e-10 };
    let mut max_fitting = 0u32;
    for n in 10..=17u32 {
        let (_, report) = run(&library::ghz(n), 6, codec);
        let peak = report.peak_compressed_bytes + report.peak_buffer_bytes;
        if peak <= budget {
            max_fitting = n;
        } else {
            break;
        }
    }
    assert!(
        max_fitting >= 14,
        "only reached {max_fitting} qubits in a 10-qubit dense budget"
    );
}

#[test]
fn working_buffer_peak_scales_with_group_size() {
    let circuit = library::qft(12);
    let (_, small_groups) = run(&circuit, 4, CodecSpec::Fpc);
    let (_, large_groups) = run(&circuit, 10, CodecSpec::Fpc);
    assert!(large_groups.peak_buffer_bytes > small_groups.peak_buffer_bytes);
}

#[test]
fn cumulative_stats_count_every_store() {
    let circuit = library::ghz(10);
    let (store, report) = run(&circuit, 5, CodecSpec::Fpc);
    let stats = store.cumulative_stats();
    // Initial fill (32 chunks) + one store per chunk visit.
    assert_eq!(stats.blocks, 32 + report.chunk_visits);
}

#[test]
fn corrupted_chunk_is_detected_not_garbage() {
    let circuit = library::ghz(10);
    let (store, _) = run(&circuit, 5, CodecSpec::Sz { eb: 1e-10 });
    // Flip a byte inside one chunk's compressed representation.
    store.debug_corrupt_chunk(3);
    let mut buf = vec![mq_num::Complex64::ZERO; store.chunk_amps()];
    match store.load_chunk(3, &mut buf) {
        Err(mq_compress::CodecError::Corrupt(msg)) => {
            assert!(msg.contains("checksum"), "{msg}");
        }
        other => panic!("corruption not detected: {other:?}"),
    }
    // Other chunks stay readable.
    store
        .load_chunk(0, &mut buf)
        .expect("untouched chunk must load");
    // Whole-state reads also surface the error.
    assert!(store.to_dense().is_err());
}

#[test]
fn engine_surfaces_corruption_as_engine_error() {
    use memqsim_core::EngineError;
    let cfg = MemQSimConfig {
        chunk_bits: 4,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        ..Default::default()
    };
    let store = Arc::new(CompressedTier::zero_state(
        8,
        4,
        Arc::from(cfg.codec.build()),
    ));
    store.debug_corrupt_chunk(7);
    let engine_store: Arc<dyn ChunkStore> = store;
    let result =
        memqsim_core::engine::cpu::run(&engine_store, &library::qft(8), &cfg, Granularity::Staged);
    assert!(matches!(result, Err(EngineError::Codec(_))), "{result:?}");
}

#[test]
fn adaptive_codec_runs_the_engine_and_beats_fixed_rle_on_mixed_states() {
    use mq_compress::{AdaptiveCodec, Codec};
    // Run a circuit whose state is sparse early and dense late.
    let circuit = library::qft(10);
    let cfg = MemQSimConfig {
        chunk_bits: 5,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc, // placeholder; store below uses adaptive
        workers: 1,
        ..Default::default()
    };
    let adaptive: Arc<dyn Codec> = Arc::new(AdaptiveCodec::lossy(1e-11));
    let store: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(10, 5, adaptive));
    memqsim_core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged).unwrap();
    let got = store.to_dense().unwrap();
    let want = mq_circuit::unitary::run_dense(&circuit, 0);
    assert!(mq_num::metrics::max_amp_err(&got, &want) < 1e-6);
}
