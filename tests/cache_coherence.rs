//! Integration: the hot-chunk residency cache. Cached runs must be
//! observationally identical to uncached runs while eliminating codec
//! traffic; corruption detection must still fire on every real decode; and
//! measurement must see dirty cached writes without an explicit flush.

use memqsim_core::{
    build_store, engine::cpu, measure, CachePolicy, ChunkStore, CompressedTier, Counter,
    Granularity, MemQSimConfig, ResidencyCache, RunReport,
};
use mq_circuit::unitary::run_dense;
use mq_circuit::{library, Circuit, Gate};
use mq_compress::{CodecError, CodecSpec};
use mq_num::metrics::max_amp_err;
use mq_num::Complex64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn cached_cfg(chunk_bits: u32, cache_bytes: usize) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        cache_bytes,
        ..Default::default()
    }
}

fn run_cpu(circuit: &Circuit, cfg: &MemQSimConfig) -> (Arc<dyn ChunkStore>, RunReport) {
    let store = build_store(circuit.n_qubits(), cfg).expect("store construction failed");
    let report = cpu::run(&store, circuit, cfg, Granularity::Staged).expect("engine run failed");
    (store, report)
}

// --- acceptance: codec-traffic elimination under a memory budget ------------

#[test]
fn acceptance_cached_grover_halves_codec_traffic_within_budget() {
    // Repeated-stage workload: Grover with 6 iterations over 2^5 = 32 chunks
    // (>= 16), cache sized for half the working set (dense state + one group
    // staging buffer).
    let n = 8u32;
    let chunk_bits = 3u32;
    let circuit = library::grover(n, 0b0110_1001, 6);
    let state_bytes = (1usize << n) * 16;
    let group_bytes = (1usize << (chunk_bits + 2)) * 16;
    let cache_bytes = (state_bytes + group_bytes) / 2;

    let (_, uncached) = run_cpu(&circuit, &cached_cfg(chunk_bits, 0));
    let (store, cached) = run_cpu(&circuit, &cached_cfg(chunk_bits, cache_bytes));

    // Backend agreement with the dense reference (Fpc is lossless).
    let err = max_amp_err(&store.to_dense().unwrap(), &run_dense(&circuit, 0));
    assert!(err < 1e-10, "cached run drifted from dense oracle: {err}");

    // Every chunk visit is classified as exactly one of hit/miss.
    let hits = cached.telemetry.counter(Counter::CacheHits);
    let misses = cached.telemetry.counter(Counter::CacheMisses);
    assert_eq!(
        hits + misses,
        cached.telemetry.counter(Counter::ChunkVisits),
        "hits {hits} + misses {misses} != visits"
    );
    assert!(hits > 0, "no cache hits on a repeated-stage workload");

    // The headline claim: >= 2x less decompression traffic.
    let cold = uncached.telemetry.counter(Counter::BytesDecompressed);
    let warm = cached.telemetry.counter(Counter::BytesDecompressed);
    assert!(
        warm * 2 <= cold,
        "cache cut decompression only {cold} -> {warm} ({:.2}x, want >= 2x)",
        cold as f64 / warm.max(1) as f64
    );

    // Footprint stays inside the configured budget: compressed peak plus at
    // most the cache byte budget.
    assert!(
        cached.peak_resident_bytes <= cached.peak_compressed_bytes + cache_bytes,
        "resident peak {} exceeds compressed peak {} + cache budget {}",
        cached.peak_resident_bytes,
        cached.peak_compressed_bytes,
        cache_bytes
    );
    // The uncached ablation reports no cache traffic at all.
    assert_eq!(uncached.telemetry.counter(Counter::CacheHits), 0);
    assert_eq!(uncached.telemetry.counter(Counter::Evictions), 0);
}

// --- corruption detection vs cache hits -------------------------------------

#[test]
fn corruption_is_detected_on_miss_and_bypassed_on_hit() {
    let amps: Vec<Complex64> = (0..64)
        .map(|i| Complex64::new(0.1 * i as f64, -0.05 * i as f64))
        .collect();
    let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::from_amplitudes(
        &amps,
        3,
        Arc::from(CodecSpec::Fpc.build()),
    ));
    // Cache sized for 4 of the 8 chunks, layered explicitly over the codec tier.
    let store = ResidencyCache::new(inner, 4 * 8 * 16, CachePolicy::WriteBack);

    // A corrupted chunk that is NOT resident fails its checksum at decode.
    let mut buf = vec![Complex64::ZERO; 8];
    store.debug_corrupt_chunk(5);
    match store.load_chunk(5, &mut buf) {
        Err(CodecError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("corruption not detected: {other:?}"),
    }

    // A resident chunk serves hits from the decoded copy: corrupting the
    // compressed slot underneath is invisible until the entry leaves.
    let mut first = vec![Complex64::ZERO; 8];
    store.load_chunk(0, &mut first).expect("clean load");
    store.debug_corrupt_chunk(0);
    let mut hit = vec![Complex64::ZERO; 8];
    store
        .load_chunk(0, &mut hit)
        .expect("cached hit must bypass the checksum");
    assert_eq!(first, hit);

    // Draining the cache forces the next read back through the decoder,
    // which now sees the corrupt slot.
    store.drain().expect("drain must succeed");
    assert!(matches!(
        store.load_chunk(0, &mut buf),
        Err(CodecError::Corrupt(_))
    ));
}

// --- measurement coherence ---------------------------------------------------

#[test]
fn dirty_cached_writes_are_visible_to_measurement_without_flush() {
    let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
        6,
        2,
        Arc::from(CodecSpec::Fpc.build()),
    ));
    let store = ResidencyCache::new(inner.clone(), 4 * 4 * 16, CachePolicy::WriteBack);

    // Move all amplitude mass from |000000> to |000001> through the cache:
    // the compressed slot still holds the old chunk until eviction/flush.
    let mut chunk = vec![Complex64::ZERO; 4];
    chunk[1] = Complex64::new(1.0, 0.0);
    store.store_chunk(0, &chunk).expect("store through cache");

    assert!((store.probability(1).unwrap() - 1.0).abs() < 1e-12);
    assert!(store.probability(0).unwrap() < 1e-12);
    assert!((store.norm().unwrap() - 1.0).abs() < 1e-12);

    // After an explicit flush the compressed tier underneath agrees even
    // when read directly, bypassing the cache.
    store.flush().expect("flush must succeed");
    assert!((inner.probability(1).unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn sampling_a_cached_run_matches_the_uncached_run_exactly() {
    let circuit = library::w_state(8);
    let (plain, _) = run_cpu(&circuit, &cached_cfg(3, 0));
    let (cached, _) = run_cpu(&circuit, &cached_cfg(3, 10 * 8 * 16));
    // Lossless codec + identical seed: the sampled counts must be identical.
    let a = measure::sample_counts(&plain, 2000, &mut StdRng::seed_from_u64(11)).unwrap();
    let b = measure::sample_counts(&cached, 2000, &mut StdRng::seed_from_u64(11)).unwrap();
    assert_eq!(a, b);
}

// --- property: cached == uncached across random circuits and tiny budgets ---

fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::T),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q, -3.0f64..3.0).prop_map(|(q, t)| Gate::Rz(q, t)),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| (a != b).then_some(Gate::Cx(a, b))),
        (0..n, 0..n, -3.0f64..3.0).prop_filter_map("distinct", move |(a, b, l)| (a != b)
            .then_some(Gate::Cp(a, b, l))),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| (a != b)
            .then_some(Gate::Swap(a, b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cached_engine_matches_uncached_on_random_circuits(
        gates in prop::collection::vec(arb_gate(6), 1..20),
        chunk_bits in 1u32..=4,
        cache_entries in 1usize..=5,
        write_through in any::<bool>(),
    ) {
        let mut circuit = Circuit::new(6);
        for g in gates {
            circuit.push(g);
        }
        let mut cfg = cached_cfg(
            chunk_bits,
            cache_entries * (1usize << chunk_bits) * 16,
        );
        if write_through {
            cfg.cache_policy = CachePolicy::WriteThrough;
        }
        let (plain, _) = run_cpu(&circuit, &cached_cfg(chunk_bits, 0));
        let (cached, report) = run_cpu(&circuit, &cfg);
        let err = max_amp_err(&plain.to_dense().unwrap(), &cached.to_dense().unwrap());
        prop_assert!(err < 1e-12, "cache changed the result by {} ({:?})", err, cfg.cache_policy);
        // The hit/miss accounting identity holds on every run shape.
        let hits = report.telemetry.counter(Counter::CacheHits);
        let misses = report.telemetry.counter(Counter::CacheMisses);
        prop_assert_eq!(hits + misses, report.telemetry.counter(Counter::ChunkVisits));
        // Budget invariant under heavy eviction pressure.
        prop_assert!(
            report.peak_resident_bytes <= report.peak_compressed_bytes + cfg.cache_bytes
        );
    }
}
