//! Transfer-mode parity: `TransferMode::Compressed` must be an accounting-
//! and bit-level no-op relative to `TransferMode::Raw` — only the link
//! traffic and the codec location change.
//!
//! The device-side encode kernel folds the group scalar into the
//! amplitudes *before* compressing, so the payloads it writes back are
//! byte-identical to what the raw path's host recompression would have
//! produced — which makes the final states equal exactly, even under a
//! lossy codec.

use memqsim_core::engine::hybrid;
use memqsim_core::{build_store, ChunkStore, MemQSimConfig, RunReport, TransferMode};
use mq_circuit::{library, Circuit};
use mq_compress::{compress_complex, CodecSpec, CompressionBackend, HostCodecBackend};
use mq_device::{Device, DeviceCodecBackend, DeviceSpec};
use mq_num::Complex64;
use proptest::prelude::*;
use std::sync::Arc;

fn config(codec: CodecSpec, mode: TransferMode) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec,
        workers: 1,
        transfer_mode: mode,
        ..Default::default()
    }
}

fn run_mode(
    circuit: &Circuit,
    codec: CodecSpec,
    mode: TransferMode,
    pipelined: bool,
) -> (Vec<Complex64>, RunReport) {
    let cfg = config(codec, mode);
    let store = build_store(circuit.n_qubits(), &cfg).expect("store");
    let device = Device::new(DeviceSpec::tiny_test(1 << 12));
    let report = hybrid::run(&store, circuit, &cfg, &device, pipelined).expect("run");
    (store.to_dense().expect("dense"), report)
}

/// Every workload, both pipeline granularities, a lossless and a lossy
/// codec: compressed transfers give bit-identical states and identical
/// work accounting.
#[test]
fn compressed_transfers_are_a_semantic_noop() {
    for codec in [CodecSpec::Fpc, CodecSpec::Sz { eb: 1e-8 }] {
        for pipelined in [true, false] {
            for circuit in library::standard_suite(7) {
                let (raw_state, raw) = run_mode(&circuit, codec, TransferMode::Raw, pipelined);
                let (comp_state, comp) =
                    run_mode(&circuit, codec, TransferMode::Compressed, pipelined);
                let tag = format!("{} {codec} pipelined={pipelined}", circuit.name());
                assert_eq!(raw_state, comp_state, "state diverged: {tag}");
                assert_eq!(raw.gates_applied, comp.gates_applied, "{tag}");
                assert_eq!(raw.scalars_applied, comp.scalars_applied, "{tag}");
                assert_eq!(raw.chunk_visits, comp.chunk_visits, "{tag}");
                assert_eq!(raw.stages, comp.stages, "{tag}");
                assert_eq!(raw.groups_device, comp.groups_device, "{tag}");
                assert_eq!(raw.groups_cpu, comp.groups_cpu, "{tag}");
            }
        }
    }
}

/// The compressed run really did skip the staged raw copies: strictly
/// fewer link bytes and strictly less host decompression, with the codec
/// kernels charged on the stream clock.
#[test]
fn compressed_transfers_cut_traffic_without_changing_results() {
    let circuit = library::qft(7);
    let (_, raw) = run_mode(&circuit, CodecSpec::Fpc, TransferMode::Raw, true);
    let (_, comp) = run_mode(&circuit, CodecSpec::Fpc, TransferMode::Compressed, true);
    assert!(comp.device.bytes_h2d < raw.device.bytes_h2d);
    assert_eq!(comp.device.bytes_h2d, comp.device.bytes_h2d_compressed);
    assert!(comp.device.modeled_decode > std::time::Duration::ZERO);
    assert!(comp.device.modeled_encode > std::time::Duration::ZERO);
    assert!(
        comp.telemetry
            .counter(mq_telemetry::Counter::DeviceDecodeTime)
            > 0,
        "decode kernel time must land in the run telemetry"
    );
}

/// An *active* residency cache no longer forces whole-group raw fallback:
/// it serves payloads encode-through (dirty residents written back first)
/// and commits device-encoded payloads by invalidating the resident slot.
/// With a lossless codec the cached compressed run stays bit-identical to
/// the cached raw run while actually shipping compressed link traffic.
///
/// `cpu_share: 0.5` matters here — the CPU half of every stage dirties the
/// cache through plain `store_chunk`, so the device half keeps exercising
/// the writeback-on-payload-load path, not just cold serves.
#[test]
fn compressed_transfers_survive_an_active_cache() {
    let cached = |mode: TransferMode| {
        let cfg = MemQSimConfig {
            cache_bytes: 8 * (1 << 3) * 16, // half the chunks
            cpu_share: 0.5,
            ..config(CodecSpec::Fpc, mode)
        };
        let circuit = library::qft(7);
        let store = build_store(7, &cfg).expect("store");
        let device = Device::new(DeviceSpec::tiny_test(1 << 12));
        let report = hybrid::run(&store, &circuit, &cfg, &device, true).expect("run");
        (store.to_dense().expect("dense"), report)
    };
    let (raw_state, raw) = cached(TransferMode::Raw);
    let (comp_state, comp) = cached(TransferMode::Compressed);
    assert_eq!(raw_state, comp_state, "cached compressed diverged from raw");
    assert_eq!(raw.gates_applied, comp.gates_applied);
    assert_eq!(raw.chunk_visits, comp.chunk_visits);
    assert!(
        comp.device.bytes_h2d_compressed > 0,
        "active cache must serve payloads, not fall back to raw staging"
    );
    for r in [&raw, &comp] {
        let hits = r.telemetry.counter(mq_telemetry::Counter::CacheHits);
        let misses = r.telemetry.counter(mq_telemetry::Counter::CacheMisses);
        assert_eq!(
            hits + misses,
            r.telemetry.counter(mq_telemetry::Counter::ChunkVisits),
            "cache visit identity broke"
        );
    }
}

fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => -1.0f64..1.0,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::MIN_POSITIVE),        // smallest normal
        1 => Just(f64::MIN_POSITIVE / 8.0),  // subnormal
        1 => Just(1e300f64),
        1 => Just(-1e300f64),
        1 => Just(1e-300f64),
        // SZ bin-edge straddlers: values a hair around multiples of the
        // 1e-8 error bound, where quantization rounds either way.
        1 => (-64i64..64).prop_map(|k| k as f64 * 1e-8 + 4.9e-9),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Host-encoded payloads decode identically through the device codec
    /// path, and device-encoded payloads are byte-identical to host ones —
    /// the two backends are interchangeable on adversarial amplitudes.
    #[test]
    fn device_codec_backend_round_trips_adversarial_amplitudes(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 16..=16),
    ) {
        let amps: Vec<Complex64> =
            reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let device = Device::new(DeviceSpec::tiny_test(1 << 10));
        for spec in [
            CodecSpec::ZeroRle,
            CodecSpec::Fpc,
            CodecSpec::ShuffleLzss,
            CodecSpec::Sz { eb: 1e-8 },
        ] {
            let codec = Arc::from(spec.build());
            let host = HostCodecBackend::new(Arc::clone(&codec));
            let dev = DeviceCodecBackend::new(&device, Arc::clone(&codec));

            let host_payload = host.encode(&amps).unwrap();
            let dev_payload = dev.encode(&amps).unwrap();
            prop_assert_eq!(&host_payload, &dev_payload, "payloads differ under {}", spec);

            let mut via_device = vec![Complex64::ZERO; amps.len()];
            dev.decode(&host_payload, &mut via_device).unwrap();
            let mut via_host = vec![Complex64::ZERO; amps.len()];
            host.decode(&host_payload, &mut via_host).unwrap();
            prop_assert_eq!(&via_device, &via_host, "decodes differ under {}", spec);

            // Lossless codecs must round-trip the adversarial bits exactly.
            if codec.is_lossless() {
                prop_assert_eq!(
                    compress_complex(codec.as_ref(), &via_device),
                    host_payload,
                    "re-encode not stable under {}", spec
                );
                for (a, b) in amps.iter().zip(&via_device) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }
    }
}
