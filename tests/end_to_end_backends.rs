//! Integration: every library algorithm, on every backend, against the
//! independent dense oracle — the full stack exercised end to end.

use memqsim_core::{
    run_on_all, Backend, CompressedCpuBackend, DenseCpuBackend, EngineError, Granularity,
    HybridBackend, MemQSimConfig,
};
use mq_circuit::unitary::run_dense;
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::DeviceSpec;
use mq_num::metrics::{fidelity, max_amp_err};

fn cfg(chunk_bits: u32, codec: CodecSpec) -> MemQSimConfig {
    MemQSimConfig::builder()
        .chunk_bits(chunk_bits)
        .max_high_qubits(2)
        .codec(codec)
        .workers(2)
        .pipeline_buffers(2)
        .cpu_share(0.3)
        .build()
        .expect("valid test config")
}

fn all_circuits(n: u32) -> Vec<Circuit> {
    let mut v = library::standard_suite(n);
    v.push(library::w_state(n));
    v.push(library::bernstein_vazirani(
        n - 1,
        0b1011 & ((1 << (n - 1)) - 1),
    ));
    v.push(library::phase_estimation(n - 1, 0.3125));
    v.push(library::supremacy_like(n, 6, 3));
    v.push(library::quantum_volume(n, 3, 9));
    v
}

#[test]
fn every_algorithm_on_every_backend_matches_the_oracle() {
    let n = 8u32;
    let dense = DenseCpuBackend { workers: 2 };
    let compressed = CompressedCpuBackend::new(cfg(4, CodecSpec::Sz { eb: 1e-12 }));
    let per_gate = CompressedCpuBackend {
        cfg: cfg(4, CodecSpec::Fpc),
        granularity: Granularity::PerGate,
    };
    let hybrid = HybridBackend::new(
        cfg(4, CodecSpec::Sz { eb: 1e-12 }),
        DeviceSpec::tiny_test(1 << 14),
    );
    let backends: Vec<&dyn Backend> = vec![&dense, &compressed, &per_gate, &hybrid];

    for circuit in all_circuits(n) {
        let oracle = run_dense(&circuit, 0);
        for backend in &backends {
            let run = backend.run(&circuit).expect("backend failed");
            let err = max_amp_err(&oracle, &run.amplitudes);
            assert!(
                err < 1e-6,
                "{} on {}: max amp err {err}",
                circuit.name(),
                backend.name()
            );
            let f = fidelity(&oracle, &run.amplitudes);
            assert!(f > 1.0 - 1e-9, "{} fidelity {f}", backend.name());
        }
    }
}

#[test]
fn backends_agree_across_chunk_geometries() {
    let circuit = library::qft(9);
    for chunk_bits in [2u32, 3, 5, 7, 9] {
        let compressed = CompressedCpuBackend::new(cfg(chunk_bits, CodecSpec::Fpc));
        let dense = DenseCpuBackend::default();
        run_on_all(&circuit, &[&dense, &compressed], 1e-9)
            .unwrap_or_else(|e| panic!("chunk_bits={chunk_bits}: {e}"));
    }
}

#[test]
fn divergence_is_a_typed_error_not_a_panic() {
    // A deliberately lossy backend checked at an impossible tolerance: the
    // modularity harness must hand back a structured error naming both
    // backends, never panic.
    let circuit = library::qft(6);
    let dense = DenseCpuBackend::default();
    let lossy = CompressedCpuBackend::new(cfg(3, CodecSpec::Sz { eb: 1e-2 }));
    match run_on_all(&circuit, &[&dense, &lossy], 1e-15) {
        Err(EngineError::BackendDivergence {
            first,
            other,
            max_err,
            tol,
        }) => {
            assert_eq!(first, "dense-cpu");
            assert!(other.contains("compressed-cpu"), "{other}");
            assert!(max_err > tol);
            let msg = run_on_all(&circuit, &[&dense, &lossy], 1e-15)
                .unwrap_err()
                .to_string();
            assert!(msg.contains("diverges"), "{msg}");
        }
        other => panic!("expected BackendDivergence, got {other:?}"),
    }
}

#[test]
fn all_codecs_work_as_the_store_codec() {
    let circuit = library::grover(7, 42, 3);
    let oracle = run_dense(&circuit, 0);
    for spec in CodecSpec::sweep_set() {
        let tol = match spec {
            CodecSpec::Sz { eb } => (eb * 1e4).max(1e-8), // error accumulates per stage
            _ => 1e-10,
        };
        let backend = CompressedCpuBackend::new(cfg(3, spec));
        let run = backend.run(&circuit).expect("run failed");
        let err = max_amp_err(&oracle, &run.amplitudes);
        assert!(err < tol.max(1e-3), "{spec}: err {err}");
    }
}

#[test]
fn deep_circuit_error_accumulation_stays_bounded() {
    // 40 layers of random circuit through a tight lossy store: fidelity must
    // survive hundreds of recompressions.
    let circuit = library::random_circuit(7, 40, 17);
    let oracle = run_dense(&circuit, 0);
    let backend = CompressedCpuBackend::new(cfg(3, CodecSpec::Sz { eb: 1e-12 }));
    let run = backend.run(&circuit).expect("run failed");
    let f = fidelity(&oracle, &run.amplitudes);
    assert!(f > 0.99999, "fidelity after deep circuit: {f}");
}

#[test]
fn single_chunk_degenerate_case() {
    // chunk_bits >= n means one chunk and no cross-chunk logic at all.
    let circuit = library::qft(5);
    let backend = CompressedCpuBackend::new(cfg(16, CodecSpec::Fpc));
    let run = backend.run(&circuit).expect("run failed");
    let oracle = run_dense(&circuit, 0);
    assert!(max_amp_err(&oracle, &run.amplitudes) < 1e-10);
}

#[test]
fn two_qubit_minimum_register() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1).rz(1, 0.5).swap(0, 1);
    let oracle = run_dense(&c, 0);
    for chunk_bits in [1u32, 2] {
        let backend = CompressedCpuBackend::new(cfg(chunk_bits, CodecSpec::Fpc));
        let run = backend.run(&c).expect("run failed");
        assert!(
            max_amp_err(&oracle, &run.amplitudes) < 1e-12,
            "cb={chunk_bits}"
        );
    }
}

#[test]
fn optimization_flags_change_nothing_observable() {
    // reorder + dual_stream are pure optimizations: same amplitudes.
    let circuit = library::hardware_efficient_ansatz(8, 2, 3);
    let oracle = run_dense(&circuit, 0);
    let plain = cfg(3, CodecSpec::Fpc);
    let optimized = MemQSimConfig {
        reorder: true,
        dual_stream: true,
        ..plain
    };
    for config in [plain, optimized] {
        let compressed = CompressedCpuBackend::new(config);
        let hybrid = HybridBackend::new(config, DeviceSpec::tiny_test(1 << 12));
        for backend in [&compressed as &dyn Backend, &hybrid] {
            let run = backend.run(&circuit).expect("run failed");
            let err = max_amp_err(&oracle, &run.amplitudes);
            assert!(err < 1e-10, "{}: {err}", backend.name());
        }
    }
}
