//! Fusion parity: enabling plan-level fusion and the blocked apply driver
//! must never change *what* is computed — only how many passes over the
//! amplitudes it takes. Every fusion level is run against `FusionLevel::Off`
//! on a lossless codec, so the final states must agree to float-product
//! reassociation error (~1e-12), while the fused runs' reports show the
//! passes actually saved.

use memqsim_core::engine::{cpu, hybrid, Granularity, RunReport};
use memqsim_core::{build_store, ChunkStore, FusionLevel, MemQSimConfig};
use memqsim_suite::{
    circuit::library, circuit::Circuit, num::metrics::max_amp_err, CodecSpec, DeviceSpec,
};

fn cfg(fusion: FusionLevel) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        fusion,
        ..Default::default()
    }
}

fn run_cpu(
    circuit: &Circuit,
    config: &MemQSimConfig,
    granularity: Granularity,
) -> (RunReport, Vec<memqsim_suite::num::Complex64>) {
    let store = build_store(circuit.n_qubits(), config).expect("store construction failed");
    let report = cpu::run(&store, circuit, config, granularity).unwrap();
    (report, store.to_dense().unwrap())
}

/// Amplitude-buffer passes per the run's own accounting: with `Off`, every
/// applied gate and scalar is one pass over a group buffer; the blocked
/// driver's savings are reported in `apply_passes_saved`.
fn buffer_passes(r: &RunReport) -> usize {
    r.gates_applied + r.scalars_applied - r.apply_passes_saved
}

#[test]
fn fused_levels_match_off_across_suite_and_granularities() {
    let mut any_fused = false;
    let mut any_saved = false;
    for circuit in library::standard_suite(7) {
        for granularity in [Granularity::Staged, Granularity::PerGate] {
            let (off, want) = run_cpu(&circuit, &cfg(FusionLevel::Off), granularity);
            assert_eq!(off.gates_fused, 0);
            assert_eq!(off.apply_passes_saved, 0);
            for level in [FusionLevel::Runs1q, FusionLevel::Blocks2q] {
                let (fused, got) = run_cpu(&circuit, &cfg(level), granularity);
                let err = max_amp_err(&want, &got);
                assert!(
                    err < 1e-12,
                    "{} {granularity:?} {level:?}: err {err}",
                    circuit.name()
                );
                // Fusion only ever removes gates.
                assert!(fused.gates_applied <= off.gates_applied);
                any_fused |= fused.gates_fused > 0;
                any_saved |= fused.apply_passes_saved > 0;
            }
        }
    }
    // The sweep must actually exercise both mechanisms somewhere.
    assert!(any_fused, "no circuit in the suite fused any gates");
    assert!(any_saved, "no circuit in the suite saved any passes");
}

#[test]
fn qft12_blocks2q_saves_passes_and_matches_off() {
    let circuit = library::qft(12);
    let mk = |fusion| MemQSimConfig {
        chunk_bits: 6,
        ..cfg(fusion)
    };
    let (off, want) = run_cpu(&circuit, &mk(FusionLevel::Off), Granularity::Staged);
    let (fused, got) = run_cpu(&circuit, &mk(FusionLevel::Blocks2q), Granularity::Staged);

    let err = max_amp_err(&want, &got);
    assert!(err < 1e-12, "err {err}");
    assert!(fused.gates_fused > 0);
    assert!(fused.apply_passes_saved > 0);

    // The acceptance bar: at least 2x fewer buffer passes per chunk visit.
    assert_eq!(off.chunk_visits, fused.chunk_visits);
    let (p_off, p_fused) = (buffer_passes(&off), buffer_passes(&fused));
    assert!(
        p_fused * 2 <= p_off,
        "passes {p_off} -> {p_fused}: less than 2x reduction"
    );
}

#[test]
fn hybrid_blocks2q_matches_cpu_off_and_batches_kernels() {
    let circuit = library::random_circuit(8, 14, 11);
    let (_, want) = run_cpu(&circuit, &cfg(FusionLevel::Off), Granularity::Staged);

    let run_hybrid = |fusion| {
        let config = cfg(fusion);
        let store = build_store(circuit.n_qubits(), &config).expect("store construction failed");
        let device = memqsim_suite::device::Device::new(DeviceSpec::tiny_test(1 << 16));
        let report = hybrid::run(&store, &circuit, &config, &device, true).unwrap();
        (report, store.to_dense().unwrap())
    };

    let (off, base) = run_hybrid(FusionLevel::Off);
    let (fused, got) = run_hybrid(FusionLevel::Blocks2q);
    assert!(max_amp_err(&want, &base) < 1e-12);
    let err = max_amp_err(&want, &got);
    assert!(err < 1e-12, "err {err}");

    // Each device group becomes one batched kernel instead of one launch
    // per gate, so modeled kernel launches must drop.
    let launches = |r: &RunReport| r.telemetry.counter(memqsim_core::Counter::KernelLaunches);
    assert!(
        launches(&fused) < launches(&off),
        "launches {} -> {}",
        launches(&off),
        launches(&fused)
    );
}
