//! Report parity between executors: a CPU run and a hybrid run of the same
//! circuit must agree on everything the shared driver accounts for — the
//! [`RunReport`] shape is unified, so the numbers must be comparable too.

use memqsim_core::engine::{cpu, hybrid, Granularity, RunReport};
use memqsim_core::{CompressedStateVector, Counter, MemQSimConfig};
use memqsim_suite::{circuit::library, circuit::Circuit, CodecSpec, DeviceSpec};
use std::sync::Arc;

fn cfg() -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        ..Default::default()
    }
}

fn run_cpu(circuit: &Circuit, config: &MemQSimConfig) -> RunReport {
    let store = CompressedStateVector::zero_state(
        circuit.n_qubits(),
        config.effective_chunk_bits(circuit.n_qubits()),
        Arc::from(config.codec.build()),
    );
    cpu::run(&store, circuit, config, Granularity::Staged).unwrap()
}

fn run_hybrid(circuit: &Circuit, config: &MemQSimConfig) -> RunReport {
    let store = CompressedStateVector::zero_state(
        circuit.n_qubits(),
        config.effective_chunk_bits(circuit.n_qubits()),
        Arc::from(config.codec.build()),
    );
    let device = memqsim_suite::device::Device::new(DeviceSpec::tiny_test(1 << 16));
    hybrid::run(&store, circuit, config, &device, true).unwrap()
}

#[test]
fn cpu_and_hybrid_reports_agree_on_driver_accounting() {
    let config = cfg();
    for circuit in [library::qft(7), library::ghz(7), library::w_state(7)] {
        let c = run_cpu(&circuit, &config);
        let h = run_hybrid(&circuit, &config);

        // The shared driver does the plan building and visit accounting, so
        // these are identical regardless of the executor.
        assert_eq!(c.stages, h.stages, "{}", circuit.name());
        assert_eq!(c.chunk_visits, h.chunk_visits, "{}", circuit.name());

        // Both executors specialize the same plan against the same state, so
        // they apply exactly the same gates and scalars.
        assert_eq!(c.gates_applied, h.gates_applied, "{}", circuit.name());
        assert_eq!(c.scalars_applied, h.scalars_applied, "{}", circuit.name());
        assert_eq!(
            c.groups_cpu,
            h.groups_cpu + h.groups_device,
            "{}",
            circuit.name()
        );

        // Lossless codec + identical state trajectory: codec traffic
        // matches byte for byte.
        for counter in [Counter::BytesDecompressed, Counter::BytesCompressed] {
            assert_eq!(
                c.telemetry.counter(counter),
                h.telemetry.counter(counter),
                "{}: {counter:?}",
                circuit.name()
            );
        }

        // Executor identity is the only expected difference in shape.
        assert_eq!(c.executor, "cpu-workers");
        assert_eq!(h.executor, "device-pipeline[pipelined]");
    }
}

#[test]
fn cache_identity_holds_for_both_executors() {
    // With the residency cache on, every chunk visit is either a hit or a
    // miss — on both executors, because the store-side accounting is shared.
    let config = MemQSimConfig {
        cache_bytes: 8 * (1 << 3) * 16,
        ..cfg()
    };
    let circuit = library::qft(7);
    for report in [run_cpu(&circuit, &config), run_hybrid(&circuit, &config)] {
        let visits = report.telemetry.counter(Counter::ChunkVisits);
        assert_eq!(visits, report.chunk_visits as u64, "{}", report.executor);
        assert_eq!(
            report.telemetry.counter(Counter::CacheHits)
                + report.telemetry.counter(Counter::CacheMisses),
            visits,
            "{}",
            report.executor
        );
        assert!(report.telemetry.counter(Counter::CacheHits) > 0);
    }
}

#[test]
fn byte_accounting_is_internally_consistent() {
    let config = cfg();
    let circuit = library::random_circuit(7, 6, 9);
    let c = run_cpu(&circuit, &config);
    let h = run_hybrid(&circuit, &config);

    // CPU-only: no staging, no device buffers, no device time.
    assert_eq!(c.pinned_bytes, 0);
    assert_eq!(c.device_buffer_bytes, 0);
    assert_eq!(c.peak_working_bytes(), c.peak_buffer_bytes);
    assert_eq!(c.groups_device, 0);

    // Hybrid: staging buffers on both sides of the bus, sized identically.
    assert!(h.pinned_bytes > 0);
    assert_eq!(h.pinned_bytes, h.device_buffer_bytes);
    assert_eq!(h.peak_working_bytes(), h.peak_buffer_bytes + h.pinned_bytes);
    assert!(h.groups_device > 0);

    // Both runs held the same compressed state at peak (same trajectory).
    assert_eq!(c.peak_compressed_bytes, h.peak_compressed_bytes);
}
