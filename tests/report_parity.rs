//! Report parity between executors: a CPU run and a hybrid run of the same
//! circuit must agree on everything the shared driver accounts for — the
//! [`RunReport`] shape is unified, so the numbers must be comparable too.

use memqsim_core::engine::{cpu, hybrid, Granularity, RunReport};
use memqsim_core::{build_store, ChunkStore, Counter, MemQSimConfig, StoreKind};
use memqsim_suite::{circuit::library, circuit::Circuit, CodecSpec, DeviceSpec};

fn cfg() -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        ..Default::default()
    }
}

fn run_cpu(circuit: &Circuit, config: &MemQSimConfig) -> RunReport {
    let store = build_store(circuit.n_qubits(), config).expect("store construction failed");
    cpu::run(&store, circuit, config, Granularity::Staged).unwrap()
}

fn run_hybrid(circuit: &Circuit, config: &MemQSimConfig) -> RunReport {
    let store = build_store(circuit.n_qubits(), config).expect("store construction failed");
    let device = memqsim_suite::device::Device::new(DeviceSpec::tiny_test(1 << 16));
    hybrid::run(&store, circuit, config, &device, true).unwrap()
}

#[test]
fn cpu_and_hybrid_reports_agree_on_driver_accounting() {
    let config = cfg();
    for circuit in [library::qft(7), library::ghz(7), library::w_state(7)] {
        let c = run_cpu(&circuit, &config);
        let h = run_hybrid(&circuit, &config);

        // The shared driver does the plan building and visit accounting, so
        // these are identical regardless of the executor.
        assert_eq!(c.stages, h.stages, "{}", circuit.name());
        assert_eq!(c.chunk_visits, h.chunk_visits, "{}", circuit.name());

        // Both executors specialize the same plan against the same state, so
        // they apply exactly the same gates and scalars.
        assert_eq!(c.gates_applied, h.gates_applied, "{}", circuit.name());
        assert_eq!(c.scalars_applied, h.scalars_applied, "{}", circuit.name());
        assert_eq!(
            c.groups_cpu,
            h.groups_cpu + h.groups_device,
            "{}",
            circuit.name()
        );

        // Lossless codec + identical state trajectory: codec traffic
        // matches byte for byte.
        for counter in [Counter::BytesDecompressed, Counter::BytesCompressed] {
            assert_eq!(
                c.telemetry.counter(counter),
                h.telemetry.counter(counter),
                "{}: {counter:?}",
                circuit.name()
            );
        }

        // Executor identity is the only expected difference in shape.
        assert_eq!(c.executor, "cpu-workers");
        assert_eq!(h.executor, "device-pipeline[pipelined]");
    }
}

#[test]
fn cache_identity_holds_for_both_executors() {
    // With the residency cache on, every chunk visit is either a hit or a
    // miss — on both executors, because the store-side accounting is shared.
    let config = MemQSimConfig {
        cache_bytes: 8 * (1 << 3) * 16,
        ..cfg()
    };
    let circuit = library::qft(7);
    for report in [run_cpu(&circuit, &config), run_hybrid(&circuit, &config)] {
        let visits = report.telemetry.counter(Counter::ChunkVisits);
        assert_eq!(visits, report.chunk_visits as u64, "{}", report.executor);
        assert_eq!(
            report.telemetry.counter(Counter::CacheHits)
                + report.telemetry.counter(Counter::CacheMisses),
            visits,
            "{}",
            report.executor
        );
        assert!(report.telemetry.counter(Counter::CacheHits) > 0);
    }
}

#[test]
fn driver_accounting_is_identical_across_store_kinds() {
    // The store tier must be invisible to the driver: dense, compressed and
    // disk-spilling stores see the same plan, the same visits and the same
    // gate/scalar work — and (with a lossless codec) the same final state.
    let circuit = library::qft(7);
    let kinds = [
        StoreKind::Compressed,
        StoreKind::Dense,
        StoreKind::Spill {
            // Far below the 2 KiB dense state: forces mid-run disk traffic.
            resident_budget: 512,
        },
    ];
    let mut reports = Vec::new();
    let mut states = Vec::new();
    for kind in kinds {
        let config = MemQSimConfig {
            store_kind: kind,
            ..cfg()
        };
        let store = build_store(circuit.n_qubits(), &config).expect("store construction failed");
        let report = cpu::run(&store, &circuit, &config, Granularity::Staged).unwrap();
        states.push(store.to_dense().unwrap());
        reports.push(report);
    }
    let base = &reports[0];
    for (r, kind) in reports.iter().zip(kinds).skip(1) {
        assert_eq!(base.stages, r.stages, "{kind:?}");
        assert_eq!(base.chunk_visits, r.chunk_visits, "{kind:?}");
        assert_eq!(base.gates_applied, r.gates_applied, "{kind:?}");
        assert_eq!(base.scalars_applied, r.scalars_applied, "{kind:?}");
        assert_eq!(base.groups_cpu, r.groups_cpu, "{kind:?}");
        assert_eq!(
            base.telemetry.counter(Counter::ChunkVisits),
            r.telemetry.counter(Counter::ChunkVisits),
            "{kind:?}"
        );
    }
    for (s, kind) in states.iter().zip(kinds).skip(1) {
        let err = memqsim_suite::num::metrics::max_amp_err(&states[0], s);
        assert!(err < 1e-12, "{kind:?} drifted from compressed run by {err}");
    }
}

#[test]
fn byte_accounting_is_internally_consistent() {
    let config = cfg();
    let circuit = library::random_circuit(7, 6, 9);
    let c = run_cpu(&circuit, &config);
    let h = run_hybrid(&circuit, &config);

    // CPU-only: no staging, no device buffers, no device time.
    assert_eq!(c.pinned_bytes, 0);
    assert_eq!(c.device_buffer_bytes, 0);
    assert_eq!(c.peak_working_bytes(), c.peak_buffer_bytes);
    assert_eq!(c.groups_device, 0);

    // Hybrid: staging buffers on both sides of the bus, sized identically.
    assert!(h.pinned_bytes > 0);
    assert_eq!(h.pinned_bytes, h.device_buffer_bytes);
    assert_eq!(h.peak_working_bytes(), h.peak_buffer_bytes + h.pinned_bytes);
    assert!(h.groups_device > 0);

    // Both runs held the same compressed state at peak (same trajectory).
    assert_eq!(c.peak_compressed_bytes, h.peak_compressed_bytes);
}
