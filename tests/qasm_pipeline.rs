//! Integration: OpenQASM text through the whole stack — parse, plan,
//! simulate compressed, compare against the dense oracle — plus emitter
//! round trips of generated circuits.

use memqsim_core::{Backend, CompressedCpuBackend, MemQSimConfig};
use mq_circuit::unitary::run_dense;
use mq_circuit::{library, qasm};
use mq_compress::CodecSpec;
use mq_num::metrics::max_amp_err;

fn backend() -> CompressedCpuBackend {
    CompressedCpuBackend::new(MemQSimConfig {
        chunk_bits: 3,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-12 },
        ..Default::default()
    })
}

#[test]
fn handwritten_qasm_runs_compressed() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[6];
        creg c[6];
        h q;
        cx q[0],q[5];
        rz(pi/3) q[2];
        cp(-pi/4) q[1],q[4];
        ccx q[0],q[1],q[3];
        swap q[2],q[5];
        u3(0.3,0.2,0.1) q[4];
        barrier q;
        measure q[0] -> c[0];
    "#;
    let program = qasm::parse(src).expect("parse failed");
    assert_eq!(program.circuit.n_qubits(), 6);
    assert_eq!(program.measurements, vec![(0, 0)]);

    let run = backend().run(&program.circuit).expect("run failed");
    let oracle = run_dense(&program.circuit, 0);
    assert!(max_amp_err(&oracle, &run.amplitudes) < 1e-8);
}

#[test]
fn emitted_circuits_reparse_to_equivalent_unitaries() {
    // Emit a library circuit, re-parse it, and check both run to the same
    // state through the compressed engine.
    for circuit in [
        library::qft(5),
        library::ghz(5),
        library::bernstein_vazirani(4, 0b1010),
    ] {
        let text = qasm::emit(&circuit).expect("emit failed");
        let reparsed = qasm::parse(&text).expect("reparse failed").circuit;
        let a = run_dense(&circuit, 0);
        let b = run_dense(&reparsed, 0);
        assert!(
            max_amp_err(&a, &b) < 1e-10,
            "{}: round trip changed the state",
            circuit.name()
        );
        // And the compressed engine agrees on the reparsed circuit.
        let run = backend().run(&reparsed).expect("run failed");
        assert!(max_amp_err(&a, &run.amplitudes) < 1e-8);
    }
}

/// A parsed QASM program through the greedy layout: bit-identical to the
/// fixed-layout run and within lossy tolerance of the dense oracle. QASM
/// swap statements become `Gate::Swap`s the greedy planner may absorb, so
/// this exercises the parse → absorb → remap → restore chain end to end.
#[test]
fn parsed_qasm_under_greedy_layout_matches_fixed_and_oracle() {
    use memqsim_core::LayoutPolicy;
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[7];
        h q[0];
        cx q[0],q[6];
        cx q[0],q[5];
        cx q[0],q[4];
        swap q[4],q[6];
        cx q[0],q[6];
        cx q[0],q[5];
        cx q[0],q[4];
        rz(pi/5) q[3];
        cx q[0],q[6];
        cx q[0],q[5];
        cx q[0],q[4];
    "#;
    let circuit = qasm::parse(src).expect("parse failed").circuit;

    let policy_backend = |policy: LayoutPolicy| {
        CompressedCpuBackend::new(MemQSimConfig {
            chunk_bits: 3,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb: 1e-12 },
            layout_policy: policy,
            ..Default::default()
        })
    };
    let fixed = policy_backend(LayoutPolicy::Fixed)
        .run(&circuit)
        .expect("fixed run");
    let greedy = policy_backend(LayoutPolicy::Greedy)
        .run(&circuit)
        .expect("greedy run");

    // Same codec, same per-chunk contents at every store boundary in
    // logical space: the two runs must agree bit for bit, lossy or not.
    assert_eq!(fixed.amplitudes, greedy.amplitudes);
    let oracle = run_dense(&circuit, 0);
    assert!(max_amp_err(&oracle, &greedy.amplitudes) < 1e-8);
    use memqsim_core::Counter;
    assert!(
        greedy.telemetry.counter(Counter::RemapPasses) > 0,
        "rotating targets should trigger a remap"
    );
    assert!(
        greedy.telemetry.counter(Counter::ChunkVisits)
            < fixed.telemetry.counter(Counter::ChunkVisits)
    );
}

#[test]
fn qasm_errors_are_line_accurate_not_panics() {
    let cases: Vec<(&str, usize)> = vec![
        ("OPENQASM 2.0;\nqreg q[2];\nh q[9];\n", 3),
        ("OPENQASM 2.0;\nqreg q[2];\nmystery q[0];\n", 3),
        ("OPENQASM 2.0;\nqreg q[2];\nrz(1/0) q[0];\n", 3),
        ("OPENQASM 2.0;\nqreg q[2];\nqreg r[2];\n", 3),
        ("OPENQASM 2.0;\nh q[0];\n", 2),
    ];
    for (src, line) in cases {
        let err = qasm::parse(src).expect_err("should fail");
        assert_eq!(err.line, line, "{src:?} -> {err}");
    }
}

#[test]
fn rzz_lowering_survives_the_full_stack() {
    let mut c = mq_circuit::Circuit::new(4);
    c.h(0).rzz(0, 3, 0.7).rzz(1, 2, -0.4).h(3);
    let text = qasm::emit(&c).expect("emit failed");
    let reparsed = qasm::parse(&text).expect("parse failed").circuit;
    // Lowered circuit has more gates but the same unitary action.
    assert!(reparsed.len() > c.len());
    let a = run_dense(&c, 0);
    let b = run_dense(&reparsed, 0);
    assert!(max_amp_err(&a, &b) < 1e-12);
}
