//! Property-based integration tests: codec guarantees and chunked-engine
//! equivalence over randomized inputs.

use memqsim_core::{ChunkStore, CompressedTier, Granularity, MemQSimConfig};
use mq_circuit::unitary::run_dense;
use mq_circuit::{Circuit, Gate};
use mq_compress::{Codec, CodecSpec};
use mq_num::metrics::max_amp_err;
use mq_num::Complex64;
use proptest::prelude::*;
use std::sync::Arc;

// --- codec properties ---------------------------------------------------------

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0f64..1.0,
        1 => -1e12f64..1e12,
        1 => Just(0.0f64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_are_bit_exact(data in prop::collection::vec(finite_f64(), 0..512)) {
        for spec in [CodecSpec::Null, CodecSpec::ZeroRle, CodecSpec::Fpc, CodecSpec::ShuffleLzss] {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len()];
            codec.decompress(&bytes, &mut out).unwrap();
            for (a, b) in data.iter().zip(&out) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn sz_respects_its_bound_on_arbitrary_data(
        data in prop::collection::vec(finite_f64(), 1..512),
        eb_exp in -12i32..-2,
    ) {
        let eb = 10f64.powi(eb_exp);
        let codec = mq_compress::SzCodec::new(eb);
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
    }

    #[test]
    fn store_round_trips_arbitrary_states(
        reim in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64..=64),
        chunk_bits in 1u32..=6,
    ) {
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let store = CompressedTier::from_amplitudes(
            &amps,
            chunk_bits,
            Arc::from(CodecSpec::Fpc.build()),
        );
        let back = store.to_dense().unwrap();
        prop_assert_eq!(amps, back);
    }
}

// --- randomized circuit equivalence -----------------------------------------

/// Strategy: a random gate over `n` qubits, weighted toward the tricky
/// cases (cross-chunk targets, diagonal gates, multi-controls).
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::T),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rz(q, t)),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| (a != b).then_some(Gate::Cx(a, b))),
        (0..n, 0..n, -3.0f64..3.0).prop_filter_map("distinct", move |(a, b, l)| (a != b)
            .then_some(Gate::Cp(a, b, l))),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| (a != b)
            .then_some(Gate::Swap(a, b))),
        (0..n, 0..n, -3.0f64..3.0).prop_filter_map("distinct", move |(a, b, t)| (a != b)
            .then_some(Gate::Rzz(a, b, t))),
        (0..n, 0..n, 0..n).prop_filter_map("distinct", move |(a, b, t)| {
            (a != b && a != t && b != t).then(|| Gate::ccx(a, b, t))
        }),
        (0..n, 0..n, 0..n).prop_filter_map("distinct", move |(a, b, t)| {
            (a != b && a != t && b != t).then(|| Gate::mcz(&[a, b], t))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_engine_equals_oracle_on_random_circuits(
        gates in prop::collection::vec(arb_gate(6), 1..24),
        chunk_bits in 1u32..=6,
    ) {
        let mut circuit = Circuit::new(6);
        for g in gates {
            circuit.push(g);
        }
        let cfg = MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            workers: 1,
            ..Default::default()
        };
        let store: Arc<dyn ChunkStore> =
            Arc::new(CompressedTier::zero_state(6, chunk_bits.min(6), Arc::from(cfg.codec.build())));
        memqsim_core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(&circuit, 0);
        let err = max_amp_err(&got, &want);
        prop_assert!(err < 1e-10, "err = {} at chunk_bits {}", err, chunk_bits);
    }

    #[test]
    fn staged_and_per_gate_agree_on_random_circuits(
        gates in prop::collection::vec(arb_gate(5), 1..16),
    ) {
        let mut circuit = Circuit::new(5);
        for g in gates {
            circuit.push(g);
        }
        let cfg = MemQSimConfig {
            chunk_bits: 2,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            workers: 1,
            ..Default::default()
        };
        let a: Arc<dyn ChunkStore> =
            Arc::new(CompressedTier::zero_state(5, 2, Arc::from(cfg.codec.build())));
        memqsim_core::engine::cpu::run(&a, &circuit, &cfg, Granularity::Staged).unwrap();
        let b: Arc<dyn ChunkStore> =
            Arc::new(CompressedTier::zero_state(5, 2, Arc::from(cfg.codec.build())));
        memqsim_core::engine::cpu::run(&b, &circuit, &cfg, Granularity::PerGate).unwrap();
        let err = max_amp_err(&a.to_dense().unwrap(), &b.to_dense().unwrap());
        prop_assert!(err < 1e-12);
    }

    #[test]
    fn fusion_preserves_random_circuits(gates in prop::collection::vec(arb_gate(5), 1..20)) {
        let mut circuit = Circuit::new(5);
        for g in gates {
            circuit.push(g);
        }
        let fused1 = mq_circuit::fusion::fuse_1q_runs(&circuit);
        let fused2 = mq_circuit::fusion::fuse_to_2q(&circuit);
        let want = run_dense(&circuit, 0);
        prop_assert!(max_amp_err(&run_dense(&fused1, 0), &want) < 1e-10);
        prop_assert!(max_amp_err(&run_dense(&fused2, 0), &want) < 1e-10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reorder_pass_preserves_random_circuits_through_the_engine(
        gates in prop::collection::vec(arb_gate(6), 1..24),
        chunk_bits in 1u32..=5,
    ) {
        let mut circuit = Circuit::new(6);
        for g in gates {
            circuit.push(g);
        }
        let want = run_dense(&circuit, 0);
        // Reorder standalone preserves the unitary...
        let reordered = mq_circuit::reorder::reorder_for_locality(&circuit, chunk_bits);
        prop_assert!(max_amp_err(&run_dense(&reordered, 0), &want) < 1e-10);
        // ...and the engine with reorder=true matches the oracle.
        let cfg = MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            workers: 1,
            reorder: true,
            ..Default::default()
        };
        let store: Arc<dyn ChunkStore> =
            Arc::new(CompressedTier::zero_state(6, chunk_bits.min(6), Arc::from(cfg.codec.build())));
        memqsim_core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged).unwrap();
        let err = max_amp_err(&store.to_dense().unwrap(), &want);
        prop_assert!(err < 1e-10, "reordered engine drifted by {}", err);
    }
}
