//! Layout parity: `LayoutPolicy::Greedy` must be an observational no-op
//! relative to `Fixed` — same bits on every workload, executor and
//! granularity — because remap transitions are exact permutations and the
//! engine restores the identity layout before it returns. Only the chunk
//! *accounting* is allowed to move, and only downward: the planner keeps
//! the fixed plan unless remapping strictly reduces chunk visits.

use memqsim_core::engine::hybrid::DevicePipelineExecutor;
use memqsim_core::engine::{cpu, Granularity};
use memqsim_core::{
    build_store, run_with_executor, ChunkStore, Counter, LayoutPolicy, MemQSimConfig, RunReport,
    SerialAdapter,
};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{DeviceSpec, DeviceTopology};
use mq_num::Complex64;

#[derive(Clone, Copy, PartialEq, Debug)]
enum Exec {
    Cpu,
    Hybrid,
    Fleet2,
}

const EXECUTORS: [Exec; 3] = [Exec::Cpu, Exec::Hybrid, Exec::Fleet2];

fn config(policy: LayoutPolicy, chunk_bits: u32) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        // Lossless codec: "bit-identical" must hold exactly, and a lossy
        // codec would let the permuted chunk contents round differently.
        codec: CodecSpec::Fpc,
        workers: 1,
        // Residency cache on, so the hits + misses == visits identity is
        // exercised (it holds vacuously with the cache disabled).
        cache_bytes: 1 << 16,
        layout_policy: policy,
        ..Default::default()
    }
}

fn run(
    circuit: &Circuit,
    policy: LayoutPolicy,
    exec: Exec,
    granularity: Granularity,
    chunk_bits: u32,
) -> (Vec<Complex64>, RunReport) {
    let mut cfg = config(policy, chunk_bits);
    let store = build_store(circuit.n_qubits(), &cfg).expect("store");
    let report = match exec {
        Exec::Cpu => cpu::run(&store, circuit, &cfg, granularity).expect("cpu run"),
        Exec::Hybrid | Exec::Fleet2 => {
            let n = if exec == Exec::Fleet2 { 2 } else { 1 };
            cfg.devices = n;
            let fleet = DeviceTopology::homogeneous(n, DeviceSpec::tiny_test(1 << 12)).build();
            let mut executor = SerialAdapter::new(DevicePipelineExecutor::new_fleet(&fleet, true));
            run_with_executor(&store, circuit, &cfg, granularity, &mut executor).expect("run")
        }
    };
    (store.to_dense().expect("dense"), report)
}

/// A workload the greedy layout provably wins: three high targets rotating
/// under one shared low control. Commutation-aware reorder cannot merge the
/// stages (every gate shares the non-diagonal control), but one remap pass
/// drops all three targets below the chunk boundary and the whole body
/// collapses into local stages.
fn rotating_high_targets(n: u32, blocks: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for _ in 0..blocks {
        c.cx(0, n - 1).cx(0, n - 2).cx(0, n - 3);
    }
    c
}

fn assert_accounting(r: &RunReport, tag: &str) {
    let visits = r.telemetry.counter(Counter::ChunkVisits);
    let hits = r.telemetry.counter(Counter::CacheHits);
    let misses = r.telemetry.counter(Counter::CacheMisses);
    assert_eq!(hits + misses, visits, "hits+misses != visits: {tag}");
    assert_eq!(r.chunk_visits as u64, visits, "report vs telemetry: {tag}");
    if r.remap_passes > 0 {
        assert!(
            r.chunk_visits_saved_by_layout > 0,
            "remapped without saving anything: {tag}"
        );
    } else {
        assert_eq!(r.chunk_visits_saved_by_layout, 0, "{tag}");
    }
}

/// Every suite workload, both granularities, all three executors: the
/// greedy run lands on exactly the bits the fixed run produced, never
/// visits more chunks, and keeps the visit-accounting identity.
#[test]
fn greedy_is_bit_identical_to_fixed_everywhere() {
    for granularity in [Granularity::Staged, Granularity::PerGate] {
        for circuit in library::standard_suite(7) {
            for exec in EXECUTORS {
                let tag = format!("{} {exec:?} {granularity:?}", circuit.name());
                let (fixed_state, fixed) = run(&circuit, LayoutPolicy::Fixed, exec, granularity, 3);
                let (greedy_state, greedy) =
                    run(&circuit, LayoutPolicy::Greedy, exec, granularity, 3);
                assert_eq!(fixed_state, greedy_state, "state diverged: {tag}");
                assert!(
                    greedy.chunk_visits <= fixed.chunk_visits,
                    "greedy regressed visits ({} > {}): {tag}",
                    greedy.chunk_visits,
                    fixed.chunk_visits
                );
                assert_eq!(fixed.remap_passes, 0, "fixed plan remapped: {tag}");
                assert_eq!(fixed.chunk_visits_saved_by_layout, 0, "{tag}");
                assert_accounting(&fixed, &tag);
                assert_accounting(&greedy, &tag);
                // Per-gate plans never remap (no lookahead window).
                if granularity == Granularity::PerGate {
                    assert_eq!(greedy.remap_passes, 0, "{tag}");
                }
            }
        }
    }
}

/// The rotating-high-targets workload must actually trigger the greedy
/// machinery — the implication test above is not allowed to be vacuous —
/// and the savings the planner claimed must be the savings delivered.
#[test]
fn greedy_actually_remaps_and_wins_on_rotating_targets() {
    let circuit = rotating_high_targets(7, 10);
    for exec in EXECUTORS {
        let tag = format!("{exec:?}");
        let (fixed_state, fixed) = run(&circuit, LayoutPolicy::Fixed, exec, Granularity::Staged, 3);
        let (greedy_state, greedy) =
            run(&circuit, LayoutPolicy::Greedy, exec, Granularity::Staged, 3);
        assert_eq!(fixed_state, greedy_state, "state diverged: {tag}");
        assert!(greedy.remap_passes > 0, "no remap pass: {tag}");
        assert!(
            greedy.chunk_visits < fixed.chunk_visits,
            "no win ({} vs {}): {tag}",
            greedy.chunk_visits,
            fixed.chunk_visits
        );
        assert_eq!(
            fixed.chunk_visits - greedy.chunk_visits,
            greedy.chunk_visits_saved_by_layout,
            "planner promised different savings than delivered: {tag}"
        );
        assert_accounting(&greedy, &tag);
    }
}

/// Fleet aggregation stays exact under remapping: `modeled` is the
/// makespan, every other column is the sum of the per-device lanes, and
/// both devices hear about the chunk-identity changes.
#[test]
fn per_device_stats_sum_to_fleet_totals_under_greedy() {
    // QFT's tail swap network is absorbed as high-high transpositions, so
    // the epilogue exchanges whole chunks — the path that notifies lanes.
    let circuit = library::qft(9);
    let (fixed_state, _) = run(
        &circuit,
        LayoutPolicy::Fixed,
        Exec::Fleet2,
        Granularity::Staged,
        3,
    );
    let (state, r) = run(
        &circuit,
        LayoutPolicy::Greedy,
        Exec::Fleet2,
        Granularity::Staged,
        3,
    );
    assert_eq!(fixed_state, state, "state diverged");
    assert!(r.remap_passes > 0, "qft epilogue should remap");

    let lanes = &r.per_device;
    assert_eq!(lanes.len(), 2);
    let makespan = lanes.iter().map(|s| s.modeled).max().expect("lanes");
    assert_eq!(r.device.modeled, makespan);
    assert_eq!(
        r.device.modeled_scatter,
        lanes.iter().map(|s| s.modeled_scatter).sum()
    );
    assert_eq!(
        r.device.modeled_h2d,
        lanes.iter().map(|s| s.modeled_h2d).sum()
    );
    assert_eq!(
        r.device.modeled_d2h,
        lanes.iter().map(|s| s.modeled_d2h).sum()
    );
    assert_eq!(
        r.device.modeled_kernel,
        lanes.iter().map(|s| s.modeled_kernel).sum()
    );
    assert_eq!(
        r.device.bytes_h2d,
        lanes.iter().map(|s| s.bytes_h2d).sum::<usize>()
    );
    assert_eq!(
        r.device.bytes_d2h,
        lanes.iter().map(|s| s.bytes_d2h).sum::<usize>()
    );
    assert_eq!(
        r.device.commands,
        lanes.iter().map(|s| s.commands).sum::<usize>()
    );
    // Both lanes were told about the identity changes, and the notice is
    // the only thing that charges scatter time in an engine run.
    for (i, lane) in lanes.iter().enumerate() {
        assert!(
            lane.modeled_scatter > std::time::Duration::ZERO,
            "lane {i} never heard about the remap"
        );
    }
}

/// High-high remaps exchange whole chunks without touching the codec: the
/// greedy run's decode count stays at the fixed run's level even though it
/// executes extra remap passes.
#[test]
fn high_high_remaps_move_payloads_without_codec_work() {
    let circuit = library::qft(9);
    let (fixed_state, fixed) = run(
        &circuit,
        LayoutPolicy::Fixed,
        Exec::Cpu,
        Granularity::Staged,
        3,
    );
    let (state, greedy) = run(
        &circuit,
        LayoutPolicy::Greedy,
        Exec::Cpu,
        Granularity::Staged,
        3,
    );
    assert_eq!(fixed_state, state);
    assert!(greedy.remap_passes > 0, "qft tail should be absorbed");
    // The absorbed swap network removes whole stages; the epilogue that
    // undoes it rides the payload fast path, so visits strictly drop and
    // no decode is charged for the exchange.
    assert!(greedy.chunk_visits < fixed.chunk_visits);
    assert_accounting(&greedy, "cpu qft");
}
