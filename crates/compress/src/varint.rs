//! LEB128 varints and ZigZag signed mapping.

/// Encodes `v` as LEB128, appending to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from `buf[*pos..]`, advancing `pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(VarintError::Overflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag-maps a signed integer to unsigned (small magnitudes stay small).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a signed integer as zigzag LEB128.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Decodes a zigzag LEB128 signed integer.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, VarintError> {
    Ok(unzigzag(read_u64(buf, pos)?))
}

/// Varint decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// Buffer ended mid-varint.
    Truncated,
    /// Encoding exceeds 64 bits.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16384,
            u32::MAX as u64,
            u64::MAX,
            u64::MAX - 1,
            1 << 63,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-1000i64, -5, 0, 5, 1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn i64_round_trips() {
        let values = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(VarintError::Truncated));
        let empty: [u8; 0] = [];
        let mut pos = 0;
        assert_eq!(read_u64(&empty, &mut pos), Err(VarintError::Truncated));
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes exceed 64 bits.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(VarintError::Overflow));
    }
}
