//! Cheap per-chunk statistics driving adaptive codec selection.
//!
//! The adaptive codec ([`AutoCodec`](crate::AutoCodec)) must decide, per
//! chunk and at encode time, which backend codec to run and whether the
//! chunk tolerates an f32 demotion. Running every candidate and keeping the
//! smallest would answer both questions exactly but costs several full
//! codec passes; this module computes three O(n) statistics (plus a small
//! strided sample) that prune the candidate set down to the one or two
//! codecs that can actually win:
//!
//! * **zero fraction** — exact-zero sparsity, the signal for zero-RLE;
//! * **max magnitude** — bounds the absolute error of an f32 demotion
//!   (`max_abs * 2^-23`), deciding whether mixed precision fits the stage's
//!   error allowance;
//! * **high-byte diversity** — distinct sign/exponent/top-mantissa patterns
//!   in a strided sample; few distinct patterns means the byte-shuffled
//!   planes are repetitive and LZSS dictionary coding can win, many means
//!   an XOR predictor (FPC) is the better lossless fallback.

/// How many elements the diversity sample inspects at most.
const SAMPLE_CAP: usize = 64;

/// Relative rounding step of an f32 mantissa, used conservatively
/// (`2^-23`, one bit looser than the true half-ulp `2^-24`).
pub const F32_RELATIVE_STEP: f64 = 1.1920928955078125e-7;

/// Absolute floor for f32 demotion error: values below the f32 subnormal
/// range flush to zero, contributing up to one f32 subnormal ulp.
pub const F32_ABSOLUTE_FLOOR: f64 = 1e-40;

/// Summary statistics of one chunk's raw f64 plane data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkProbe {
    /// Elements probed.
    pub len: usize,
    /// Fraction of elements that are exactly `±0.0`.
    pub zero_frac: f64,
    /// Largest absolute value seen (0.0 for an empty chunk).
    pub max_abs: f64,
    /// Distinct high-16-bit (sign + exponent + top mantissa) patterns in
    /// the strided sample.
    pub high_byte_diversity: usize,
    /// Elements the diversity sample actually inspected.
    pub sampled: usize,
}

/// Probes `data` in a single pass plus a strided sample.
pub fn probe(data: &[f64]) -> ChunkProbe {
    let mut zeros = 0usize;
    let mut max_abs = 0.0f64;
    for &x in data {
        if x == 0.0 {
            zeros += 1;
        }
        let a = x.abs();
        if a > max_abs {
            max_abs = a;
        }
    }
    let stride = (data.len() / SAMPLE_CAP).max(1);
    let mut patterns: Vec<u16> = data
        .iter()
        .step_by(stride)
        .take(SAMPLE_CAP)
        .map(|x| (x.to_bits() >> 48) as u16)
        .collect();
    let sampled = patterns.len();
    patterns.sort_unstable();
    patterns.dedup();
    ChunkProbe {
        len: data.len(),
        zero_frac: if data.is_empty() {
            0.0
        } else {
            zeros as f64 / data.len() as f64
        },
        max_abs,
        high_byte_diversity: patterns.len(),
        sampled,
    }
}

impl ChunkProbe {
    /// True when the chunk is dominated by exact zeros — zero-RLE territory.
    pub fn is_sparse(&self) -> bool {
        self.zero_frac >= 0.9
    }

    /// True when the sampled sign/exponent patterns are repetitive enough
    /// that byte-shuffle + LZSS is worth trying over the FPC predictor.
    pub fn is_plane_repetitive(&self) -> bool {
        self.sampled > 0 && self.high_byte_diversity * 4 <= self.sampled.max(4)
    }

    /// True when demoting this chunk to f32 pairs stays within `allowance`:
    /// every magnitude fits the f32 range and the worst-case rounding error
    /// (`max_abs * 2^-23`, floored at the subnormal flush error) is covered.
    pub fn f32_fits(&self, allowance: Option<f64>) -> bool {
        let Some(eb) = allowance else {
            return false;
        };
        self.len.is_multiple_of(2)
            && self.max_abs.is_finite()
            && self.max_abs <= f32::MAX as f64
            && eb >= self.max_abs * F32_RELATIVE_STEP
            && eb >= F32_ABSOLUTE_FLOOR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_zeros_and_max() {
        let mut data = vec![0.0f64; 100];
        data[3] = -2.5;
        data[77] = 1.0;
        let p = probe(&data);
        assert_eq!(p.len, 100);
        assert!((p.zero_frac - 0.98).abs() < 1e-12);
        assert_eq!(p.max_abs, 2.5);
        assert!(p.is_sparse());
    }

    #[test]
    fn empty_chunk_probe_is_benign() {
        let p = probe(&[]);
        assert_eq!(p.len, 0);
        assert_eq!(p.zero_frac, 0.0);
        assert_eq!(p.max_abs, 0.0);
        assert_eq!(p.sampled, 0);
        assert!(!p.is_sparse());
        // Empty chunks trivially "fit" f32 by length, but there is nothing
        // to demote; the codec never takes the path. Fit still requires an
        // allowance.
        assert!(!p.f32_fits(None));
    }

    #[test]
    fn diversity_separates_repetitive_from_noisy() {
        let repetitive: Vec<f64> = (0..1024).map(|i| 0.5 + (i % 4) as f64 * 1e-12).collect();
        let noisy: Vec<f64> = (0..1024)
            .map(|i| ((i * 2654435761usize) % 9973) as f64 * 1e-4 - 0.5)
            .collect();
        assert!(probe(&repetitive).is_plane_repetitive());
        assert!(!probe(&noisy).is_plane_repetitive());
    }

    #[test]
    fn f32_fit_respects_magnitude_and_allowance() {
        let small = probe(&[0.25f64, -0.5, 0.125, 0.0]);
        assert!(small.f32_fits(Some(1e-6)));
        assert!(!small.f32_fits(Some(1e-9)), "0.5 * 2^-23 > 1e-9");
        assert!(!small.f32_fits(None));
        // Out of f32 range: never demote, no matter the allowance.
        let huge = probe(&[1e300f64, 0.0]);
        assert!(!huge.f32_fits(Some(1e280)));
        // Odd length cannot pair-pack.
        let odd = probe(&[0.1f64, 0.2, 0.3]);
        assert!(!odd.f32_fits(Some(1.0)));
    }
}
