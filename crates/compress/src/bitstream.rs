//! Bit-granular I/O over byte buffers.
//!
//! LSB-first bit order: the first bit written lands in the least-significant
//! bit of the first byte. All codecs in this crate share these two types, so
//! their on-wire formats stay mutually consistent.

/// Writes bit runs into a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the final byte (0..8; 0 means byte-aligned).
    bit: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (n <= 64).
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || value >> n == 0, "value has bits above n");
        let mut remaining = n;
        let mut v = value;
        while remaining > 0 {
            if self.bit == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.bit;
            let take = free.min(remaining);
            let last = self.buf.last_mut().expect("buffer non-empty");
            *last |= ((v & ((1u64 << take) - 1)) as u8) << self.bit;
            v >>= take;
            self.bit = (self.bit + take) % 8;
            remaining -= take;
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Pads to a byte boundary and appends a whole byte slice.
    pub fn write_bytes_aligned(&mut self, bytes: &[u8]) {
        self.align();
        self.buf.extend_from_slice(bytes);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.bit = 0;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit as usize
        }
    }

    /// Finishes and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bit runs from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

/// Error returned when a read runs past the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamOverrun;

impl std::fmt::Display for BitstreamOverrun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream overrun")
    }
}

impl std::error::Error for BitstreamOverrun {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads `n` bits (n <= 64) as the low bits of the result.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, BitstreamOverrun> {
        debug_assert!(n <= 64);
        if self.pos + n as usize > self.buf.len() * 8 {
            return Err(BitstreamOverrun);
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.buf[self.pos / 8];
            let bit_in_byte = (self.pos % 8) as u32;
            let avail = 8 - bit_in_byte;
            let take = avail.min(n - got);
            let bits = ((byte >> bit_in_byte) as u64) & ((1u64 << take) - 1);
            out |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, BitstreamOverrun> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Skips to the next byte boundary and reads `n` whole bytes.
    pub fn read_bytes_aligned(&mut self, n: usize) -> Result<&'a [u8], BitstreamOverrun> {
        self.align();
        let start = self.pos / 8;
        if start + n > self.buf.len() {
            return Err(BitstreamOverrun);
        }
        self.pos += n * 8;
        Ok(&self.buf[start..start + n])
    }

    /// Advances to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 0);
        w.write_bits(0x12345, 20);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(20).unwrap(), 0x12345);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn aligned_bytes_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bytes_aligned(&[0xAA, 0xBB]);
        w.write_bits(0b10, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bytes_aligned(2).unwrap(), &[0xAA, 0xBB]);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn overrun_is_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(BitstreamOverrun));
        let mut r2 = BitReader::new(&bytes);
        assert_eq!(r2.read_bits(9), Err(BitstreamOverrun));
        assert_eq!(r2.read_bytes_aligned(2), Err(BitstreamOverrun));
    }

    #[test]
    fn remaining_bits_counts_down() {
        let bytes = [0u8, 0];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 11);
        r.align();
        assert_eq!(r.remaining_bits(), 8);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1); // bit 0 of byte 0
        w.write_bits(0b11, 2); // bits 1-2
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b0000_0111);
    }
}
