//! Zero run-length coding for `f64` streams.
//!
//! State vectors early in a circuit are overwhelmingly exact zeros (a basis
//! state has one nonzero amplitude); this codec exploits that directly:
//! alternating varint-coded runs of zeros and literal runs of raw `f64`s.
//! Lossless.

use crate::varint::{self, VarintError};

/// Encodes `data` as alternating zero-run / literal-run tokens.
pub fn encode(data: &[f64], out: &mut Vec<u8>) {
    varint::write_u64(out, data.len() as u64);
    let mut i = 0usize;
    while i < data.len() {
        // Zero run (may be empty).
        let zstart = i;
        while i < data.len() && data[i] == 0.0 && data[i].is_sign_positive() {
            i += 1;
        }
        varint::write_u64(out, (i - zstart) as u64);
        // Literal run (may be empty, at end).
        let lstart = i;
        while i < data.len() && !(data[i] == 0.0 && data[i].is_sign_positive()) {
            i += 1;
        }
        varint::write_u64(out, (i - lstart) as u64);
        for &x in &data[lstart..i] {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RleError {
    /// Underlying varint failure.
    Varint(VarintError),
    /// Output length does not match the header.
    LengthMismatch {
        /// Length in the encoded header.
        expected: usize,
        /// Length of the output buffer supplied.
        got: usize,
    },
    /// Buffer ended early or runs overflow the output.
    Corrupt,
}

impl std::fmt::Display for RleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RleError::Varint(e) => write!(f, "rle varint error: {e}"),
            RleError::LengthMismatch { expected, got } => {
                write!(f, "rle length mismatch: encoded {expected}, buffer {got}")
            }
            RleError::Corrupt => write!(f, "corrupt rle stream"),
        }
    }
}

impl std::error::Error for RleError {}

impl From<VarintError> for RleError {
    fn from(e: VarintError) -> Self {
        RleError::Varint(e)
    }
}

/// Decodes into `out`, whose length must equal the encoded element count.
pub fn decode(buf: &[u8], out: &mut [f64]) -> Result<(), RleError> {
    let mut pos = 0usize;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    if n != out.len() {
        return Err(RleError::LengthMismatch {
            expected: n,
            got: out.len(),
        });
    }
    let mut i = 0usize;
    while i < n {
        let zrun = varint::read_u64(buf, &mut pos)? as usize;
        if i + zrun > n {
            return Err(RleError::Corrupt);
        }
        out[i..i + zrun].fill(0.0);
        i += zrun;
        let lrun = varint::read_u64(buf, &mut pos)? as usize;
        if i + lrun > n || pos + lrun * 8 > buf.len() {
            return Err(RleError::Corrupt);
        }
        for k in 0..lrun {
            let bytes: [u8; 8] = buf[pos..pos + 8].try_into().expect("bounds checked");
            out[i + k] = f64::from_le_bytes(bytes);
            pos += 8;
        }
        i += lrun;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let mut buf = Vec::new();
        encode(data, &mut buf);
        let mut out = vec![f64::NAN; data.len()];
        decode(&buf, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!(a.to_bits() == b.to_bits(), "bit-exact: {a} vs {b}");
        }
        buf.len()
    }

    #[test]
    fn all_zeros_compress_massively() {
        let data = vec![0.0f64; 100_000];
        let size = round_trip(&data);
        assert!(size < 16, "got {size} bytes");
    }

    #[test]
    fn basis_state_pattern() {
        let mut data = vec![0.0f64; 4096];
        data[137] = 1.0;
        let size = round_trip(&data);
        assert!(size < 32);
    }

    #[test]
    fn dense_data_small_overhead() {
        let data: Vec<f64> = (1..1000).map(|i| i as f64 * 0.001).collect();
        let size = round_trip(&data);
        // One literal run: header + 2 varints + 8n bytes.
        assert!(size < data.len() * 8 + 16);
    }

    #[test]
    fn preserves_negative_zero_and_nan_as_literals() {
        let data = [0.0, -0.0, f64::NAN, 0.0, 1.5];
        let mut buf = Vec::new();
        encode(&data, &mut buf);
        let mut out = vec![0.0f64; 5];
        decode(&buf, &mut out).unwrap();
        assert!(out[1].is_sign_negative() && out[1] == 0.0);
        assert!(out[2].is_nan());
        assert_eq!(out[4], 1.5);
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn alternating_pattern() {
        let data: Vec<f64> = (0..1000)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f64 })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut buf = Vec::new();
        encode(&[1.0, 2.0], &mut buf);
        let mut out = vec![0.0f64; 3];
        assert!(matches!(
            decode(&buf, &mut out),
            Err(RleError::LengthMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        encode(&[0.0, 1.0, 2.0, 3.0], &mut buf);
        buf.truncate(buf.len() - 4);
        let mut out = vec![0.0f64; 4];
        assert!(decode(&buf, &mut out).is_err());
    }

    #[test]
    fn corrupt_run_lengths_detected() {
        // Header says 2 elements but a zero-run of 100 follows.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        varint::write_u64(&mut buf, 100);
        let mut out = vec![0.0f64; 2];
        assert_eq!(decode(&buf, &mut out), Err(RleError::Corrupt));
    }
}
