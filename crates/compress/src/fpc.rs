//! FPC-style lossless floating-point compression.
//!
//! Each `f64` is XOR-ed against the better of two predictors (last value and
//! a stride predictor: last + (last - second_last)); the residual's leading
//! zero *bytes* are counted and only the tail bytes are stored. One nibble
//! per value selects the predictor (1 bit) and encodes min(lzb, 7) (3 bits).
//! Bit-exact round trip, including NaN and signed zeros.

use crate::bitstream::{BitReader, BitWriter, BitstreamOverrun};
use crate::varint::{self, VarintError};

/// Compresses `data` losslessly, appending to `out`.
pub fn encode(data: &[f64], out: &mut Vec<u8>) {
    varint::write_u64(out, data.len() as u64);
    let mut w = BitWriter::new();
    let mut last = 0u64;
    let mut last2 = 0u64;
    for &x in data {
        let bits = x.to_bits();
        let pred1 = last;
        let pred2 = last.wrapping_add(last.wrapping_sub(last2));
        let r1 = bits ^ pred1;
        let r2 = bits ^ pred2;
        let (sel, resid) = if leading_zero_bytes(r2) > leading_zero_bytes(r1) {
            (1u64, r2)
        } else {
            (0u64, r1)
        };
        // FPC's 3-bit code covers {0,1,2,3,4,5,6,8} leading zero bytes: code
        // 7 means a fully-zero residual; an actual lzb of 7 is demoted to 6
        // (one wasted byte in a rare case) so zero residuals cost no tail.
        let mut lzb = leading_zero_bytes(resid);
        if lzb == 7 {
            lzb = 6;
        }
        let code = if lzb == 8 { 7 } else { lzb };
        let tail_bytes = 8 - lzb.min(8);
        w.write_bits(sel, 1);
        w.write_bits(code as u64, 3);
        if tail_bytes > 0 {
            w.write_bits(resid, (tail_bytes * 8) as u32);
        }
        last2 = last;
        last = bits;
    }
    let payload = w.into_bytes();
    varint::write_u64(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

fn leading_zero_bytes(v: u64) -> usize {
    (v.leading_zeros() / 8) as usize
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpcError {
    /// Header failure.
    Varint(VarintError),
    /// Output buffer length differs from the encoded count.
    LengthMismatch {
        /// Encoded element count.
        expected: usize,
        /// Supplied buffer length.
        got: usize,
    },
    /// Payload truncated.
    Truncated,
}

impl std::fmt::Display for FpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpcError::Varint(e) => write!(f, "fpc varint error: {e}"),
            FpcError::LengthMismatch { expected, got } => {
                write!(f, "fpc length mismatch: encoded {expected}, buffer {got}")
            }
            FpcError::Truncated => write!(f, "truncated fpc payload"),
        }
    }
}

impl std::error::Error for FpcError {}

impl From<VarintError> for FpcError {
    fn from(e: VarintError) -> Self {
        FpcError::Varint(e)
    }
}

impl From<BitstreamOverrun> for FpcError {
    fn from(_: BitstreamOverrun) -> Self {
        FpcError::Truncated
    }
}

/// Decompresses into `out`, which must match the encoded count.
pub fn decode(buf: &[u8], out: &mut [f64]) -> Result<(), FpcError> {
    let mut pos = 0usize;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    if n != out.len() {
        return Err(FpcError::LengthMismatch {
            expected: n,
            got: out.len(),
        });
    }
    let payload_len = varint::read_u64(buf, &mut pos)? as usize;
    if pos + payload_len > buf.len() {
        return Err(FpcError::Truncated);
    }
    let mut r = BitReader::new(&buf[pos..pos + payload_len]);
    let mut last = 0u64;
    let mut last2 = 0u64;
    for slot in out.iter_mut() {
        let sel = r.read_bits(1)?;
        let code = r.read_bits(3)? as usize;
        let lzb = if code == 7 { 8 } else { code };
        let tail_bytes = 8 - lzb;
        let resid = if tail_bytes > 0 {
            r.read_bits((tail_bytes * 8) as u32)?
        } else {
            0
        };
        let pred = if sel == 1 {
            last.wrapping_add(last.wrapping_sub(last2))
        } else {
            last
        };
        let bits = resid ^ pred;
        *slot = f64::from_bits(bits);
        last2 = last;
        last = bits;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let mut buf = Vec::new();
        encode(data, &mut buf);
        let mut out = vec![0.0f64; data.len()];
        decode(&buf, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact: {a} vs {b}");
        }
        buf.len()
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[std::f64::consts::PI]);
    }

    #[test]
    fn constant_streams_compress_well() {
        let data = vec![0.714285714; 10_000];
        let size = round_trip(&data);
        // sel+code+0 tail bytes = 4 bits per repeated value.
        assert!(size < 6_000, "got {size}");
    }

    #[test]
    fn zeros_compress_to_half_byte_each() {
        let data = vec![0.0f64; 8192];
        let size = round_trip(&data);
        assert!(size < 5000, "got {size}");
    }

    #[test]
    fn linear_ramp_uses_stride_predictor() {
        // Integer-valued ramp: bits advance regularly; the stride predictor
        // captures much of it.
        let data: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let size = round_trip(&data);
        assert!(size < 4096 * 8 / 2, "got {size}");
    }

    #[test]
    fn special_values_bit_exact() {
        round_trip(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
            5e-324, // subnormal
        ]);
    }

    #[test]
    fn random_data_round_trips_with_bounded_expansion() {
        let data: Vec<f64> = (0..5000u64)
            .map(|i| f64::from_bits(i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let mut buf = Vec::new();
        encode(&data, &mut buf);
        // Worst case: 4 bits overhead per 8-byte value.
        assert!(buf.len() < data.len() * 9 + 32);
        let mut out = vec![0.0f64; data.len()];
        decode(&buf, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let mut buf = Vec::new();
        encode(&[1.0, 2.0], &mut buf);
        let mut out = vec![0.0f64; 4];
        assert!(matches!(
            decode(&buf, &mut out),
            Err(FpcError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut buf = Vec::new();
        encode(&data, &mut buf);
        buf.truncate(buf.len() / 2);
        let mut out = vec![0.0f64; 100];
        assert!(decode(&buf, &mut out).is_err());
    }
}
