//! Canonical Huffman coding.
#![allow(clippy::needless_range_loop)] // length-indexed tables read clearest
//!
//! Built for the SZ-style quantization-code stream: a dense alphabet of at
//! most a few tens of thousands of symbols, heavily skewed toward the center
//! code. Code lengths are depth-limited (frequency halving) so the decoder
//! can use fixed-width tables.

use crate::bitstream::{BitReader, BitWriter, BitstreamOverrun};
use crate::varint;

/// Maximum code length in bits.
pub const MAX_CODE_LEN: u8 = 32;

/// Builds Huffman code lengths for `(symbol, count)` pairs (counts > 0).
/// Returns `(symbol, length)` pairs. A single-symbol alphabet gets length 1.
pub fn build_code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    assert!(!freqs.is_empty(), "empty alphabet");
    debug_assert!(freqs.iter().all(|&(_, c)| c > 0), "zero-count symbol");
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }
    let mut counts: Vec<u64> = freqs.iter().map(|&(_, c)| c).collect();
    loop {
        let lengths = huffman_lengths(&counts);
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            return freqs
                .iter()
                .zip(&lengths)
                .map(|(&(s, _), &l)| (s, l))
                .collect();
        }
        // Flatten the distribution and retry.
        for c in &mut counts {
            *c = (*c / 2).max(1);
        }
    }
}

/// Plain Huffman code lengths from counts (parallel array), via the
/// two-queue method on sorted leaves.
fn huffman_lengths(counts: &[u64]) -> Vec<u8> {
    let n = counts.len();
    debug_assert!(n >= 2);
    // Node arena: leaves 0..n, internal nodes after.
    #[derive(Clone, Copy)]
    struct Node {
        weight: u64,
        left: usize,
        right: usize,
    }
    let mut nodes: Vec<Node> = counts
        .iter()
        .map(|&w| Node {
            weight: w,
            left: usize::MAX,
            right: usize::MAX,
        })
        .collect();
    // Sorted leaf queue + FIFO internal queue: O(n log n) for the sort,
    // O(n) for the merge.
    let mut leaves: Vec<usize> = (0..n).collect();
    leaves.sort_by_key(|&i| counts[i]);
    let mut li = 0usize;
    let mut internals: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    let pop_min = |nodes: &Vec<Node>,
                   li: &mut usize,
                   internals: &mut std::collections::VecDeque<usize>|
     -> usize {
        let leaf = leaves.get(*li).copied();
        let internal = internals.front().copied();
        match (leaf, internal) {
            (Some(l), Some(i)) => {
                if nodes[l].weight <= nodes[i].weight {
                    *li += 1;
                    l
                } else {
                    internals.pop_front();
                    i
                }
            }
            (Some(l), None) => {
                *li += 1;
                l
            }
            (None, Some(i)) => {
                internals.pop_front();
                i
            }
            (None, None) => unreachable!("ran out of nodes"),
        }
    };

    for _ in 0..n - 1 {
        let a = pop_min(&nodes, &mut li, &mut internals);
        let b = pop_min(&nodes, &mut li, &mut internals);
        let w = nodes[a].weight.saturating_add(nodes[b].weight);
        nodes.push(Node {
            weight: w,
            left: a,
            right: b,
        });
        internals.push_back(nodes.len() - 1);
    }
    // Depth-first traversal from the root to assign depths.
    let root = nodes.len() - 1;
    let mut lengths = vec![0u8; n];
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let node = nodes[idx];
        if node.left == usize::MAX {
            lengths[idx] = depth.max(1);
        } else {
            stack.push((node.left, depth.saturating_add(1)));
            stack.push((node.right, depth.saturating_add(1)));
        }
    }
    lengths
}

/// A canonical Huffman code: encode and decode tables built from
/// `(symbol, length)` pairs.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// Encode table: indexed by symbol, `(code, len)`; len 0 = absent.
    enc: Vec<(u32, u8)>,
    /// For each length 1..=MAX: the first canonical code of that length.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// For each length: offset into `sorted_syms` of its first symbol.
    offset: [u32; MAX_CODE_LEN as usize + 1],
    /// Count of codes per length.
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by (length, symbol).
    sorted_syms: Vec<u32>,
}

/// Errors from canonical-code construction or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// Lengths do not satisfy the Kraft inequality / overfull tree.
    InvalidLengths,
    /// A decoded bit pattern matches no symbol.
    BadCode,
    /// Bitstream ended mid-symbol.
    Truncated,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::InvalidLengths => write!(f, "invalid Huffman code lengths"),
            HuffmanError::BadCode => write!(f, "bit pattern matches no Huffman symbol"),
            HuffmanError::Truncated => write!(f, "bitstream ended mid-symbol"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<BitstreamOverrun> for HuffmanError {
    fn from(_: BitstreamOverrun) -> Self {
        HuffmanError::Truncated
    }
}

impl CanonicalCode {
    /// Builds encode/decode tables from `(symbol, length)` pairs.
    pub fn from_lengths(lengths: &[(u32, u8)]) -> Result<CanonicalCode, HuffmanError> {
        if lengths.is_empty() {
            return Err(HuffmanError::InvalidLengths);
        }
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &(_, l) in lengths {
            if l == 0 || l > MAX_CODE_LEN {
                return Err(HuffmanError::InvalidLengths);
            }
            count[l as usize] += 1;
        }
        // Kraft check (allow underfull trees — e.g. the 1-symbol code).
        let mut kraft: u64 = 0;
        for l in 1..=MAX_CODE_LEN as usize {
            kraft += (count[l] as u64) << (MAX_CODE_LEN as usize - l);
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(HuffmanError::InvalidLengths);
        }
        // Canonical first codes.
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        for l in 1..=MAX_CODE_LEN as usize {
            code = (code + count[l - 1]) << 1;
            first_code[l] = code;
        }
        // Symbols sorted by (length, symbol).
        let mut sorted: Vec<(u32, u8)> = lengths.to_vec();
        sorted.sort_by_key(|&(s, l)| (l, s));
        let sorted_syms: Vec<u32> = sorted.iter().map(|&(s, _)| s).collect();
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        {
            let mut acc = 0u32;
            for l in 1..=MAX_CODE_LEN as usize {
                offset[l] = acc;
                acc += count[l];
            }
        }
        // Encode table.
        let max_sym = lengths.iter().map(|&(s, _)| s).max().expect("non-empty") as usize;
        let mut enc = vec![(0u32, 0u8); max_sym + 1];
        {
            let mut next = first_code;
            for &(s, l) in &sorted {
                if enc[s as usize].1 != 0 {
                    return Err(HuffmanError::InvalidLengths); // duplicate symbol
                }
                enc[s as usize] = (next[l as usize], l);
                next[l as usize] += 1;
            }
        }
        Ok(CanonicalCode {
            enc,
            first_code,
            offset,
            count,
            sorted_syms,
        })
    }

    /// Encodes one symbol (must be in the alphabet).
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u32) {
        let (code, len) = self.enc[symbol as usize];
        debug_assert!(len > 0, "symbol {symbol} not in alphabet");
        // MSB-first within the code.
        for i in (0..len).rev() {
            w.write_bit((code >> i) & 1 == 1);
        }
    }

    /// Decodes one symbol.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bit()? as u32;
            let c = self.count[len];
            if c > 0 {
                let first = self.first_code[len];
                if code >= first && code - first < c {
                    let idx = self.offset[len] + (code - first);
                    return Ok(self.sorted_syms[idx as usize]);
                }
            }
        }
        Err(HuffmanError::BadCode)
    }

    /// Serializes the `(symbol, length)` table compactly.
    pub fn serialize_lengths(lengths: &[(u32, u8)], out: &mut Vec<u8>) {
        varint::write_u64(out, lengths.len() as u64);
        let mut prev_sym = 0u32;
        for &(s, l) in lengths {
            // Symbols are emitted sorted by the callers; delta-encode.
            varint::write_u64(out, (s - prev_sym) as u64);
            out.push(l);
            prev_sym = s;
        }
    }

    /// Inverse of [`CanonicalCode::serialize_lengths`].
    pub fn deserialize_lengths(
        buf: &[u8],
        pos: &mut usize,
    ) -> Result<Vec<(u32, u8)>, HuffmanError> {
        let n = varint::read_u64(buf, pos).map_err(|_| HuffmanError::InvalidLengths)? as usize;
        if n == 0 || n > 1 << 24 {
            return Err(HuffmanError::InvalidLengths);
        }
        let mut out = Vec::with_capacity(n);
        let mut sym = 0u32;
        for i in 0..n {
            let delta = varint::read_u64(buf, pos).map_err(|_| HuffmanError::InvalidLengths)?;
            sym = sym
                .checked_add(delta as u32)
                .ok_or(HuffmanError::InvalidLengths)?;
            let l = *buf.get(*pos).ok_or(HuffmanError::InvalidLengths)?;
            *pos += 1;
            out.push((sym, l));
            // Ensure strictly increasing symbols after the first.
            if i > 0 && delta == 0 {
                return Err(HuffmanError::InvalidLengths);
            }
        }
        Ok(out)
    }
}

/// Convenience: builds lengths from a symbol iterator's frequencies
/// (sorted by symbol) — the common path for codec implementations.
pub fn lengths_from_symbols(symbols: impl Iterator<Item = u32>) -> Vec<(u32, u8)> {
    use std::collections::BTreeMap;
    let mut freqs: BTreeMap<u32, u64> = BTreeMap::new();
    for s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    assert!(!freqs.is_empty(), "no symbols");
    let pairs: Vec<(u32, u64)> = freqs.into_iter().collect();
    build_code_lengths(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u32]) {
        let lengths = lengths_from_symbols(symbols.iter().copied());
        let code = CanonicalCode::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in symbols {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn two_symbol_round_trip() {
        round_trip(&[0, 1, 0, 0, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn single_symbol_alphabet() {
        round_trip(&[42, 42, 42, 42]);
        let lengths = lengths_from_symbols([7u32, 7, 7].into_iter());
        assert_eq!(lengths, vec![(7, 1)]);
    }

    #[test]
    fn skewed_distribution_gets_short_codes() {
        // Symbol 5 dominates; it must get the shortest code.
        let mut syms = vec![5u32; 1000];
        syms.extend([1, 2, 3, 4].repeat(3));
        let lengths = lengths_from_symbols(syms.iter().copied());
        let code5 = lengths.iter().find(|&&(s, _)| s == 5).unwrap().1;
        for &(s, l) in &lengths {
            if s != 5 {
                assert!(l >= code5, "symbol {s} shorter than dominant symbol");
            }
        }
        round_trip(&syms);
    }

    #[test]
    fn large_sparse_alphabet_round_trip() {
        let symbols: Vec<u32> = (0..2000u32).map(|i| (i * 37) % 50000).collect();
        round_trip(&symbols);
    }

    #[test]
    fn average_length_beats_fixed_width_on_skew() {
        let mut syms = vec![0u32; 10_000];
        for i in 0..100 {
            syms.push(i % 16 + 1);
        }
        let lengths = lengths_from_symbols(syms.iter().copied());
        let code = CanonicalCode::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in &syms {
            code.encode(&mut w, s);
        }
        // 17 symbols would need 5 fixed bits; entropy coding must do much
        // better on this skew.
        assert!(w.bit_len() < syms.len() * 2);
    }

    #[test]
    fn lengths_serialize_round_trip() {
        let lengths = lengths_from_symbols([1u32, 1, 2, 2, 2, 900, 900, 65535].into_iter());
        let mut buf = Vec::new();
        CanonicalCode::serialize_lengths(&lengths, &mut buf);
        let mut pos = 0;
        let back = CanonicalCode::deserialize_lengths(&buf, &mut pos).unwrap();
        assert_eq!(back, lengths);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Overfull: three codes of length 1.
        let bad = vec![(0u32, 1u8), (1, 1), (2, 1)];
        assert_eq!(
            CanonicalCode::from_lengths(&bad).unwrap_err(),
            HuffmanError::InvalidLengths
        );
        // Zero length.
        assert!(CanonicalCode::from_lengths(&[(0, 0)]).is_err());
        // Duplicate symbol.
        assert!(CanonicalCode::from_lengths(&[(3, 1), (3, 2)]).is_err());
        // Empty.
        assert!(CanonicalCode::from_lengths(&[]).is_err());
    }

    #[test]
    fn truncated_stream_is_detected() {
        let lengths =
            lengths_from_symbols((0..16u32).flat_map(|s| std::iter::repeat_n(s, s as usize + 1)));
        let code = CanonicalCode::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for s in 0..16u32 {
            code.encode(&mut w, s);
        }
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        let mut err = None;
        for _ in 0..16 {
            match code.decode(&mut r) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err,
            Some(HuffmanError::Truncated) | Some(HuffmanError::BadCode)
        ));
    }

    #[test]
    fn decode_error_on_garbage_table() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1 << 30); // absurd count
        let mut pos = 0;
        assert!(CanonicalCode::deserialize_lengths(&buf, &mut pos).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths =
            lengths_from_symbols([0u32, 0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10].into_iter());
        let code = CanonicalCode::from_lengths(&lengths).unwrap();
        // Encode each symbol alone and check that no encoding is a prefix
        // of another (by decoding a concatenation back).
        let all: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
        let mut w = BitWriter::new();
        for &s in &all {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &all {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }
}
