//! # mq-compress — compression substrate for the MEMQSIM reproduction
//!
//! The paper leverages "a state-of-the-art data compressor" (SZ) to shrink
//! state-vector chunks resident in CPU memory. This crate builds that
//! substrate from scratch:
//!
//! * primitives — [`bitstream`], [`varint`], [`huffman`], [`lzss`],
//!   [`rle`], [`shuffle`];
//! * codecs — [`szlike`] (error-bounded lossy, the headline compressor),
//!   [`fpc`] (lossless XOR-predictor), zero-RLE, byte-shuffle+LZSS, and a
//!   null codec, all behind the [`Codec`] trait;
//! * [`CodecSpec`] — a parseable registry so harness binaries can sweep
//!   codecs by name (`"sz:1e-8"`, `"fpc"`, ...); it also implements
//!   [`std::str::FromStr`], so `"auto:1e-9".parse()` works anywhere;
//! * [`AutoCodec`] — per-chunk adaptive selection: a cheap [`probe`] pass
//!   picks among zero-RLE / FPC / shuffle-LZSS / SZ (and an optional f32
//!   demotion) per chunk, recording the choice in a one-byte payload
//!   header so decode is self-describing;
//! * complex-amplitude helpers — [`compress_complex`] /
//!   [`decompress_complex`] split interleaved amplitudes into re/im planes
//!   (prediction works far better within a plane).

//!
//! ## Example
//!
//! ```
//! use mq_compress::{Codec, CodecSpec};
//!
//! let codec = CodecSpec::parse("sz:1e-8").unwrap().build();
//! let data: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
//! let compressed = codec.compress(&data);
//! assert!(compressed.len() < data.len() * 8);
//!
//! let mut out = vec![0.0; data.len()];
//! codec.decompress(&compressed, &mut out).unwrap();
//! for (a, b) in data.iter().zip(&out) {
//!     assert!((a - b).abs() <= 1e-8);
//! }
//! ```

pub mod bitstream;
pub mod fpc;
pub mod huffman;
pub mod lzss;
pub mod probe;
pub mod rle;
pub mod shuffle;
pub mod szlike;
pub mod varint;

use mq_num::complex::{as_f64_slice, as_f64_slice_mut};
use mq_num::Complex64;
use std::fmt;

/// Unified codec error.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
    /// Output buffer length disagrees with the stream header.
    LengthMismatch {
        /// Element count recorded in the stream.
        expected: usize,
        /// Length of the caller's output buffer.
        got: usize,
    },
    /// A caller-supplied chunk buffer has the wrong length for the store's
    /// chunk geometry (amplitude counts, not bytes).
    BufferMismatch {
        /// Amplitudes the store's chunks hold.
        expected: usize,
        /// Length of the caller's buffer.
        got: usize,
    },
    /// A storage-tier I/O operation failed (e.g. a spill file).
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt compressed stream: {m}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: stream has {expected}, buffer {got}")
            }
            CodecError::BufferMismatch { expected, got } => {
                write!(
                    f,
                    "chunk buffer mismatch: store chunks hold {expected} amplitudes, buffer has {got}"
                )
            }
            CodecError::Io(m) => write!(f, "storage i/o error: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A floating-point array codec.
///
/// Implementations are stateless and `Send + Sync`, so one boxed codec can
/// serve every pipeline thread concurrently.
pub trait Codec: Send + Sync {
    /// Short registry name (`"sz"`, `"fpc"`, ...).
    fn name(&self) -> &'static str;

    /// True if decompression is bit-exact.
    fn is_lossless(&self) -> bool;

    /// The pointwise absolute error bound, `None` for lossless codecs.
    fn error_bound(&self) -> Option<f64> {
        None
    }

    /// Compresses `data` into a fresh byte buffer.
    fn compress(&self, data: &[f64]) -> Vec<u8>;

    /// Decompresses into `out`; `out.len()` must equal the original length.
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError>;

    /// Describes a payload this codec produced, when the payload format is
    /// self-describing (see [`AutoCodec`]). `None` for codecs whose payloads
    /// carry no selection header — which is every static codec.
    fn payload_meta(&self, _payload: &[u8]) -> Option<PayloadMeta> {
        None
    }

    /// Updates the codec's error allowance at run time (e.g. per pipeline
    /// stage, from a fidelity budget). Returns `false` when the codec has no
    /// dynamic bound — static codecs ignore the call. `None` clears a
    /// previously set bound.
    fn set_dynamic_bound(&self, _eb: Option<f64>) -> bool {
        false
    }
}

/// What an adaptive, self-describing payload header declares: which backend
/// codec encoded the chunk and at what precision. Read back via
/// [`Codec::payload_meta`] by stores (pick histograms), the device model
/// (codec-aware kernel times) and audits (lossy-encode tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadMeta {
    /// Registry name of the backend codec that encoded this payload.
    pub codec: &'static str,
    /// True when the chunk was demoted to packed f32 pairs before encoding.
    pub f32_packed: bool,
    /// True when the payload decodes bit-exactly (no SZ, no f32 demotion).
    pub lossless: bool,
}

/// Storage precision policy for adaptive encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Always store full f64 amplitudes (the default).
    #[default]
    F64,
    /// Allow [`AutoCodec`] to demote a chunk to packed f32 pairs when the
    /// chunk's magnitude spread fits the f32 mantissa within the current
    /// error allowance — halving raw bytes before the codec runs.
    Adaptive,
}

// --- codec implementations --------------------------------------------------

/// Identity codec: raw little-endian bytes. The "no compression" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCodec;

impl Codec for NullCodec {
    fn name(&self) -> &'static str {
        "null"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + data.len() * 8);
        varint::write_u64(&mut out, data.len() as u64);
        for &x in data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let mut pos = 0;
        let n = varint::read_u64(bytes, &mut pos).map_err(|e| CodecError::Corrupt(e.to_string()))?
            as usize;
        if n != out.len() {
            return Err(CodecError::LengthMismatch {
                expected: n,
                got: out.len(),
            });
        }
        if pos + n * 8 > bytes.len() {
            return Err(CodecError::Corrupt("truncated raw payload".into()));
        }
        for (i, slot) in out.iter_mut().enumerate() {
            let s = pos + i * 8;
            *slot = f64::from_le_bytes(bytes[s..s + 8].try_into().expect("bounds checked"));
        }
        Ok(())
    }
}

/// Zero run-length codec (lossless): exploits exact-zero sparsity.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroRleCodec;

impl Codec for ZeroRleCodec {
    fn name(&self) -> &'static str {
        "zero-rle"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        rle::encode(data, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        rle::decode(bytes, out).map_err(|e| match e {
            rle::RleError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

/// FPC-style lossless XOR-predictive codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpcCodec;

impl Codec for FpcCodec {
    fn name(&self) -> &'static str {
        "fpc"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        fpc::encode(data, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        fpc::decode(bytes, out).map_err(|e| match e {
            fpc::FpcError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

/// Byte-shuffle + LZSS (lossless): dictionary coding over byte planes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShuffleLzssCodec;

impl Codec for ShuffleLzssCodec {
    fn name(&self) -> &'static str {
        "shuffle-lzss"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut planes = Vec::new();
        shuffle::shuffle(data, &mut planes);
        let mut out = Vec::new();
        varint::write_u64(&mut out, data.len() as u64);
        lzss::encode(&planes, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let mut pos = 0;
        let n = varint::read_u64(bytes, &mut pos).map_err(|e| CodecError::Corrupt(e.to_string()))?
            as usize;
        if n != out.len() {
            return Err(CodecError::LengthMismatch {
                expected: n,
                got: out.len(),
            });
        }
        let mut planes = vec![0u8; n * 8];
        lzss::decode(&bytes[pos..], &mut planes).map_err(|e| match e {
            lzss::LzssError::LengthMismatch { expected, got } => CodecError::LengthMismatch {
                expected: expected / 8,
                got: got / 8,
            },
            other => CodecError::Corrupt(other.to_string()),
        })?;
        shuffle::unshuffle(&planes, out);
        Ok(())
    }
}

/// SZ-style error-bounded lossy codec.
#[derive(Debug, Clone, Copy)]
pub struct SzCodec {
    /// Pointwise absolute error bound (> 0).
    pub eb: f64,
}

impl SzCodec {
    /// Creates a codec with the given absolute error bound.
    ///
    /// # Panics
    /// Panics unless `eb` is finite and positive.
    pub fn new(eb: f64) -> SzCodec {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
        SzCodec { eb }
    }
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }
    fn is_lossless(&self) -> bool {
        false
    }
    fn error_bound(&self) -> Option<f64> {
        Some(self.eb)
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        szlike::encode(data, self.eb, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        szlike::decode(bytes, out).map(|_| ()).map_err(|e| match e {
            szlike::SzError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

// --- registry ----------------------------------------------------------------

/// A parseable codec specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecSpec {
    /// Raw bytes.
    Null,
    /// Zero run-length.
    ZeroRle,
    /// FPC-style lossless.
    Fpc,
    /// Byte-shuffle + LZSS lossless.
    ShuffleLzss,
    /// SZ-style lossy with absolute bound.
    Sz {
        /// Pointwise absolute error bound.
        eb: f64,
    },
    /// Per-chunk adaptive selection ([`AutoCodec`]): a probe picks the
    /// backend codec per chunk; lossy picks are allowed only within the
    /// static `eb` here or a dynamic bound set at run time.
    Auto {
        /// Static error allowance; `None` restricts picks to lossless
        /// backends until a dynamic bound is installed.
        eb: Option<f64>,
    },
}

impl CodecSpec {
    /// Instantiates the codec (full-f64 precision; see
    /// [`build_with_precision`](CodecSpec::build_with_precision)).
    pub fn build(&self) -> Box<dyn Codec> {
        self.build_with_precision(Precision::F64)
    }

    /// Instantiates the codec with a storage [`Precision`] policy. Only
    /// [`CodecSpec::Auto`] honors `precision`; every static codec stores
    /// full f64 planes regardless.
    pub fn build_with_precision(&self, precision: Precision) -> Box<dyn Codec> {
        match *self {
            CodecSpec::Null => Box::new(NullCodec),
            CodecSpec::ZeroRle => Box::new(ZeroRleCodec),
            CodecSpec::Fpc => Box::new(FpcCodec),
            CodecSpec::ShuffleLzss => Box::new(ShuffleLzssCodec),
            CodecSpec::Sz { eb } => Box::new(SzCodec::new(eb)),
            CodecSpec::Auto { eb } => Box::new(AutoCodec::new(eb, precision)),
        }
    }

    /// Parses `"null" | "zero-rle" | "fpc" | "shuffle-lzss" | "sz:<eb>" |
    /// "auto" | "auto:<eb>"`. Also available as the [`std::str::FromStr`]
    /// impl, so `"sz:1e-6".parse::<CodecSpec>()` works too.
    pub fn parse(s: &str) -> Result<CodecSpec, String> {
        fn parse_eb(text: &str) -> Result<f64, String> {
            let eb: f64 = text
                .parse()
                .map_err(|_| format!("invalid error bound '{text}'"))?;
            if !(eb.is_finite() && eb > 0.0) {
                return Err(format!("error bound must be positive, got {eb}"));
            }
            Ok(eb)
        }
        match s {
            "null" => Ok(CodecSpec::Null),
            "zero-rle" => Ok(CodecSpec::ZeroRle),
            "fpc" => Ok(CodecSpec::Fpc),
            "shuffle-lzss" => Ok(CodecSpec::ShuffleLzss),
            "auto" => Ok(CodecSpec::Auto { eb: None }),
            _ => {
                if let Some(eb_text) = s.strip_prefix("sz:") {
                    Ok(CodecSpec::Sz {
                        eb: parse_eb(eb_text)?,
                    })
                } else if let Some(eb_text) = s.strip_prefix("auto:") {
                    Ok(CodecSpec::Auto {
                        eb: Some(parse_eb(eb_text)?),
                    })
                } else {
                    Err(format!("unknown codec '{s}'"))
                }
            }
        }
    }

    /// The default sweep set used by the codec-comparison experiment.
    pub fn sweep_set() -> Vec<CodecSpec> {
        vec![
            CodecSpec::Null,
            CodecSpec::ZeroRle,
            CodecSpec::Fpc,
            CodecSpec::ShuffleLzss,
            CodecSpec::Sz { eb: 1e-4 },
            CodecSpec::Sz { eb: 1e-6 },
            CodecSpec::Sz { eb: 1e-8 },
            CodecSpec::Sz { eb: 1e-10 },
        ]
    }
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecSpec::Null => write!(f, "null"),
            CodecSpec::ZeroRle => write!(f, "zero-rle"),
            CodecSpec::Fpc => write!(f, "fpc"),
            CodecSpec::ShuffleLzss => write!(f, "shuffle-lzss"),
            CodecSpec::Sz { eb } => write!(f, "sz:{eb:e}"),
            CodecSpec::Auto { eb: None } => write!(f, "auto"),
            CodecSpec::Auto { eb: Some(eb) } => write!(f, "auto:{eb:e}"),
        }
    }
}

impl std::str::FromStr for CodecSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<CodecSpec, String> {
        CodecSpec::parse(s)
    }
}

// --- stats --------------------------------------------------------------------

/// Aggregate compression accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed bytes processed.
    pub raw_bytes: usize,
    /// Compressed bytes produced.
    pub compressed_bytes: usize,
    /// Number of compress calls.
    pub blocks: usize,
}

impl CompressionStats {
    /// Records one compressed block.
    pub fn record(&mut self, raw: usize, compressed: usize) {
        self.raw_bytes += raw;
        self.compressed_bytes += compressed;
        self.blocks += 1;
    }

    /// Overall ratio `raw / compressed` (1.0 when nothing was recorded).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.blocks += other.blocks;
    }
}

// --- complex helpers ------------------------------------------------------------

/// Compresses interleaved complex amplitudes by first splitting them into a
/// real plane followed by an imaginary plane (predictors behave much better
/// within a plane than across the re/im interleave).
pub fn compress_complex(codec: &dyn Codec, amps: &[Complex64]) -> Vec<u8> {
    let n = amps.len();
    let interleaved = as_f64_slice(amps);
    let mut planes = vec![0.0f64; n * 2];
    for i in 0..n {
        planes[i] = interleaved[2 * i];
        planes[n + i] = interleaved[2 * i + 1];
    }
    codec.compress(&planes)
}

/// Inverse of [`compress_complex`].
pub fn decompress_complex(
    codec: &dyn Codec,
    bytes: &[u8],
    out: &mut [Complex64],
) -> Result<(), CodecError> {
    let n = out.len();
    let mut planes = vec![0.0f64; n * 2];
    codec.decompress(bytes, &mut planes)?;
    let interleaved = as_f64_slice_mut(out);
    for i in 0..n {
        interleaved[2 * i] = planes[i];
        interleaved[2 * i + 1] = planes[n + i];
    }
    Ok(())
}

// --- compression backends -------------------------------------------------------

/// Where codec work runs: the seam between the chunk pipeline and the
/// encode/decode hardware.
///
/// A backend turns amplitude chunks into compressed payloads and back. The
/// payload format is *owned by the codec*, not the backend — any two backends
/// built over the same [`Codec`] produce interchangeable, byte-identical
/// payloads, so a chunk encoded on the host can be decoded on a device and
/// vice versa. [`HostCodecBackend`] runs the codec on the calling thread
/// (today's CPU path); `mq-device` provides a `DeviceCodecBackend` that ships
/// payloads over the modeled PCIe link and charges staged decode/encode
/// kernels on a stream.
pub trait CompressionBackend: Send + Sync {
    /// Human-readable backend name for reports ("host", "device", ...).
    fn name(&self) -> &str;

    /// The codec this backend runs.
    fn codec(&self) -> &std::sync::Arc<dyn Codec>;

    /// Compresses a chunk of amplitudes into a payload.
    fn encode(&self, amps: &[Complex64]) -> Result<Vec<u8>, CodecError>;

    /// Decompresses a payload into exactly `out.len()` amplitudes.
    fn decode(&self, payload: &[u8], out: &mut [Complex64]) -> Result<(), CodecError>;
}

/// The host-side [`CompressionBackend`]: runs the codec registry on the
/// calling CPU thread via [`compress_complex`] / [`decompress_complex`].
#[derive(Clone)]
pub struct HostCodecBackend {
    codec: std::sync::Arc<dyn Codec>,
}

impl HostCodecBackend {
    /// Wraps a codec in the host backend.
    pub fn new(codec: std::sync::Arc<dyn Codec>) -> HostCodecBackend {
        HostCodecBackend { codec }
    }

    /// Builds the backend straight from a [`CodecSpec`].
    pub fn from_spec(spec: CodecSpec) -> HostCodecBackend {
        HostCodecBackend::new(std::sync::Arc::from(spec.build()))
    }
}

impl fmt::Debug for HostCodecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCodecBackend")
            .field("codec", &self.codec.name())
            .finish()
    }
}

impl CompressionBackend for HostCodecBackend {
    fn name(&self) -> &str {
        "host"
    }

    fn codec(&self) -> &std::sync::Arc<dyn Codec> {
        &self.codec
    }

    fn encode(&self, amps: &[Complex64]) -> Result<Vec<u8>, CodecError> {
        Ok(compress_complex(self.codec.as_ref(), amps))
    }

    fn decode(&self, payload: &[u8], out: &mut [Complex64]) -> Result<(), CodecError> {
        decompress_complex(self.codec.as_ref(), payload, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    fn sample_data() -> Vec<f64> {
        (0..4096)
            .map(|i| (i as f64 * 0.01).sin() * 0.1 + if i % 97 == 0 { 1.0 } else { 0.0 })
            .collect()
    }

    fn all_specs() -> Vec<CodecSpec> {
        CodecSpec::sweep_set()
    }

    #[test]
    fn every_codec_round_trips_within_bound() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len()];
            codec.decompress(&bytes, &mut out).unwrap();
            let bound = codec.error_bound().unwrap_or(0.0);
            for (a, b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= bound, "{spec}: |{a}-{b}| > {bound}");
            }
            if codec.is_lossless() {
                for (a, b) in data.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{spec} not bit-exact");
                }
            }
        }
    }

    #[test]
    fn every_codec_rejects_length_mismatch() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len() + 1];
            assert!(
                matches!(
                    codec.decompress(&bytes, &mut out),
                    Err(CodecError::LengthMismatch { .. })
                ),
                "{spec}"
            );
        }
    }

    #[test]
    fn every_codec_detects_truncation() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let mut bytes = codec.compress(&data);
            bytes.truncate(bytes.len() / 3);
            let mut out = vec![0.0f64; data.len()];
            assert!(codec.decompress(&bytes, &mut out).is_err(), "{spec}");
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        for spec in all_specs() {
            let s = spec.to_string();
            let back = CodecSpec::parse(&s).unwrap();
            match (spec, back) {
                (CodecSpec::Sz { eb: a }, CodecSpec::Sz { eb: b }) => assert_eq!(a, b),
                (x, y) => assert_eq!(x, y),
            }
        }
        assert!(CodecSpec::parse("bogus").is_err());
        assert!(CodecSpec::parse("sz:abc").is_err());
        assert!(CodecSpec::parse("sz:-1").is_err());
        assert!(CodecSpec::parse("sz:0").is_err());
    }

    #[test]
    fn sz_beats_lossless_on_smooth_data() {
        let data: Vec<f64> = (0..32768).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let sz = SzCodec::new(1e-8).compress(&data).len();
        let fpc = FpcCodec.compress(&data).len();
        let raw = data.len() * 8;
        assert!(sz < fpc, "sz {sz} vs fpc {fpc}");
        assert!(sz * 4 < raw, "sz ratio too low: {}", raw as f64 / sz as f64);
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = CompressionStats::default();
        a.record(1000, 100);
        a.record(1000, 300);
        assert_eq!(a.blocks, 2);
        assert!((a.ratio() - 5.0).abs() < 1e-12);
        let mut b = CompressionStats::default();
        b.record(500, 500);
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.raw_bytes, 2500);
        assert_eq!(CompressionStats::default().ratio(), 1.0);
    }

    #[test]
    fn complex_round_trip_planes() {
        let amps: Vec<Complex64> = (0..2048)
            .map(|i| c64((i as f64 * 0.01).cos() * 0.1, (i as f64 * 0.01).sin() * 0.1))
            .collect();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = compress_complex(codec.as_ref(), &amps);
            let mut out = vec![Complex64::ZERO; amps.len()];
            decompress_complex(codec.as_ref(), &bytes, &mut out).unwrap();
            let bound = codec.error_bound().unwrap_or(0.0);
            for (a, b) in amps.iter().zip(&out) {
                assert!((a.re - b.re).abs() <= bound, "{spec}");
                assert!((a.im - b.im).abs() <= bound, "{spec}");
            }
        }
    }

    #[test]
    fn plane_split_helps_sz_on_complex_data() {
        // Interleaved re/im breaks the Lorenzo predictor; planes restore it.
        let amps: Vec<Complex64> = (0..8192)
            .map(|i| {
                let t = i as f64 * 1e-3;
                c64(t.cos() * 0.01, (t * 0.5).sin() * 0.02)
            })
            .collect();
        let codec = SzCodec::new(1e-9);
        let planes = compress_complex(&codec, &amps).len();
        let interleaved = codec.compress(as_f64_slice(&amps)).len();
        assert!(
            planes < interleaved,
            "planes {planes} vs interleaved {interleaved}"
        );
    }

    #[test]
    fn codecs_are_object_safe_and_shareable() {
        fn takes_dyn(c: &dyn Codec) -> usize {
            c.compress(&[1.0, 2.0]).len()
        }
        let boxed: Vec<Box<dyn Codec>> = all_specs().iter().map(|s| s.build()).collect();
        for c in &boxed {
            assert!(takes_dyn(c.as_ref()) > 0);
        }
        // Send + Sync: share across scoped threads.
        let codec = SzCodec::new(1e-6);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let bytes = codec.compress(&[0.5; 64]);
                    let mut out = [0.0f64; 64];
                    codec.decompress(&bytes, &mut out).unwrap();
                });
            }
        });
    }
}

// --- adaptive codec -------------------------------------------------------------

/// Picks the best backend codec *per block*: tries zero-RLE (wins on sparse
/// chunks), FPC (wins on lossless-compressible data) and — when an error
/// bound is configured — the SZ-style lossy codec, and keeps whichever
/// output is smallest. A one-byte tag selects the decoder.
///
/// This is the paper's "adaptable to accommodate various compression
/// algorithms" point made concrete: the store takes any [`Codec`], including
/// this meta-codec.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCodec {
    /// Error bound for the lossy candidate; `None` restricts the choice to
    /// lossless backends.
    pub eb: Option<f64>,
}

impl AdaptiveCodec {
    /// Adaptive lossless-only codec.
    pub fn lossless() -> AdaptiveCodec {
        AdaptiveCodec { eb: None }
    }

    /// Adaptive codec allowed to go lossy within `eb`.
    pub fn lossy(eb: f64) -> AdaptiveCodec {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
        AdaptiveCodec { eb: Some(eb) }
    }
}

const TAG_ZERO_RLE: u8 = 1;
const TAG_FPC: u8 = 2;
const TAG_SZ: u8 = 3;

impl Codec for AdaptiveCodec {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn is_lossless(&self) -> bool {
        self.eb.is_none()
    }
    fn error_bound(&self) -> Option<f64> {
        self.eb
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut best = {
            let mut out = vec![TAG_ZERO_RLE];
            rle::encode(data, &mut out);
            out
        };
        let fpc = {
            let mut out = vec![TAG_FPC];
            fpc::encode(data, &mut out);
            out
        };
        if fpc.len() < best.len() {
            best = fpc;
        }
        if let Some(eb) = self.eb {
            let mut out = vec![TAG_SZ];
            szlike::encode(data, eb, &mut out);
            if out.len() < best.len() {
                best = out;
            }
        }
        best
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let (tag, body) = bytes
            .split_first()
            .ok_or_else(|| CodecError::Corrupt("empty adaptive block".into()))?;
        match *tag {
            TAG_ZERO_RLE => rle::decode(body, out).map_err(|e| match e {
                rle::RleError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            TAG_FPC => fpc::decode(body, out).map_err(|e| match e {
                fpc::FpcError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            TAG_SZ => szlike::decode(body, out).map(|_| ()).map_err(|e| match e {
                szlike::SzError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            t => Err(CodecError::Corrupt(format!("unknown adaptive tag {t}"))),
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn picks_rle_on_sparse_data() {
        let mut data = vec![0.0f64; 4096];
        data[7] = 1.0;
        let adaptive = AdaptiveCodec::lossless();
        let bytes = adaptive.compress(&data);
        assert_eq!(bytes[0], TAG_ZERO_RLE);
        // And it beats plain FPC on this input.
        assert!(bytes.len() < FpcCodec.compress(&data).len());
        let mut out = vec![1.0f64; 4096];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn picks_sz_on_smooth_data_when_lossy_allowed() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let adaptive = AdaptiveCodec::lossy(1e-8);
        let bytes = adaptive.compress(&data);
        assert_eq!(bytes[0], TAG_SZ);
        let mut out = vec![0.0f64; data.len()];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-8);
        }
    }

    #[test]
    fn lossless_mode_never_uses_sz() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 1e-3).sin()).collect();
        let adaptive = AdaptiveCodec::lossless();
        let bytes = adaptive.compress(&data);
        assert_ne!(bytes[0], TAG_SZ);
        let mut out = vec![0.0f64; data.len()];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_never_loses_to_its_backends_by_more_than_a_tag() {
        for data in [
            vec![0.0f64; 1000],
            (0..1000).map(|i| i as f64).collect::<Vec<_>>(),
            (0..1000)
                .map(|i| ((i * 2654435761usize) % 997) as f64 / 997.0)
                .collect(),
        ] {
            let adaptive = AdaptiveCodec::lossy(1e-9).compress(&data).len();
            let rle = ZeroRleCodec.compress(&data).len();
            let fpc = FpcCodec.compress(&data).len();
            let sz = SzCodec::new(1e-9).compress(&data).len();
            let best = rle.min(fpc).min(sz);
            assert!(adaptive <= best + 1, "adaptive {adaptive} vs best {best}");
        }
    }

    #[test]
    fn rejects_unknown_tag_and_empty() {
        let adaptive = AdaptiveCodec::lossless();
        let mut out = vec![0.0f64; 4];
        assert!(adaptive.decompress(&[], &mut out).is_err());
        assert!(adaptive.decompress(&[99, 0, 0], &mut out).is_err());
    }
}

// --- auto codec (probe-guided, self-describing) ---------------------------------

const TAG_SHUFFLE_LZSS: u8 = 4;
const TAG_NULL: u8 = 5;
/// Low bits of the header byte carry the backend tag...
const TAG_MASK: u8 = 0x07;
/// ...and this bit marks a chunk demoted to packed f32 pairs.
const FLAG_F32: u8 = 0x08;

/// Packs adjacent f64 pairs as two f32s in one f64's bit pattern, halving
/// the element count. `data.len()` must be even.
fn pack_f32_pairs(data: &[f64]) -> Vec<f64> {
    debug_assert!(data.len().is_multiple_of(2));
    data.chunks_exact(2)
        .map(|pair| {
            let lo = (pair[0] as f32).to_bits() as u64;
            let hi = (pair[1] as f32).to_bits() as u64;
            f64::from_bits(lo | (hi << 32))
        })
        .collect()
}

/// Inverse of [`pack_f32_pairs`]: `out.len() == packed.len() * 2`.
fn unpack_f32_pairs(packed: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), packed.len() * 2);
    for (i, word) in packed.iter().enumerate() {
        let bits = word.to_bits();
        out[2 * i] = f32::from_bits(bits as u32) as f64;
        out[2 * i + 1] = f32::from_bits((bits >> 32) as u32) as f64;
    }
}

/// The adaptive per-chunk codec behind [`CodecSpec::Auto`].
///
/// Per `compress` call, a cheap [`probe`] pass classifies the chunk (zero
/// sparsity, magnitude spread, sign/exponent diversity) and prunes the
/// candidate set down to the backends that can win on that shape: zero-RLE
/// for sparse chunks, FPC / shuffle-LZSS for the lossless dense cases, SZ
/// when an error allowance is available, and — under
/// [`Precision::Adaptive`] — the same candidates over an f32 pair-packed
/// demotion of the chunk whenever `max_abs * 2^-23` fits the allowance.
/// The surviving candidates are encoded and the smallest payload wins; a
/// one-byte header (backend tag + f32 flag) makes every payload
/// self-describing, so decode needs no out-of-band state and payloads
/// travel unchanged through payload passthrough, device codec kernels and
/// residency-cache encode-through.
///
/// The error allowance has a static part (the spec's `eb`) and a dynamic
/// part installed via [`Codec::set_dynamic_bound`] — the engine points the
/// dynamic bound at each stage's slice of a run-level fidelity budget. The
/// dynamic bound, when set, overrides the static one.
#[derive(Debug)]
pub struct AutoCodec {
    eb: Option<f64>,
    precision: Precision,
    /// Bits of the dynamic bound; `u64::MAX` (a NaN pattern no valid bound
    /// produces) means "not set".
    dynamic_eb: std::sync::atomic::AtomicU64,
}

const DYNAMIC_UNSET: u64 = u64::MAX;

impl AutoCodec {
    /// Creates an adaptive codec with an optional static error allowance.
    ///
    /// # Panics
    /// Panics if `eb` is `Some` but not finite and positive.
    pub fn new(eb: Option<f64>, precision: Precision) -> AutoCodec {
        if let Some(eb) = eb {
            assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
        }
        AutoCodec {
            eb,
            precision,
            dynamic_eb: std::sync::atomic::AtomicU64::new(DYNAMIC_UNSET),
        }
    }

    /// Lossless-only adaptive codec (until a dynamic bound is installed).
    pub fn lossless() -> AutoCodec {
        AutoCodec::new(None, Precision::F64)
    }

    /// The allowance currently in effect: the dynamic bound if set, the
    /// static `eb` otherwise.
    pub fn allowance(&self) -> Option<f64> {
        let bits = self.dynamic_eb.load(std::sync::atomic::Ordering::Relaxed);
        if bits == DYNAMIC_UNSET {
            self.eb
        } else {
            Some(f64::from_bits(bits))
        }
    }

    fn encode_backend(tag: u8, f32_packed: bool, data: &[f64], eb: Option<f64>) -> Vec<u8> {
        let mut out = vec![tag | if f32_packed { FLAG_F32 } else { 0 }];
        match tag {
            TAG_ZERO_RLE => rle::encode(data, &mut out),
            TAG_FPC => fpc::encode(data, &mut out),
            TAG_SHUFFLE_LZSS => {
                let mut planes = Vec::new();
                shuffle::shuffle(data, &mut planes);
                varint::write_u64(&mut out, data.len() as u64);
                lzss::encode(&planes, &mut out);
            }
            TAG_SZ => szlike::encode(data, eb.expect("sz candidate requires a bound"), &mut out),
            _ => unreachable!("unknown encode tag {tag}"),
        }
        out
    }

    fn decode_backend(tag: u8, body: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        match tag {
            TAG_ZERO_RLE => ZeroRleCodec.decompress(body, out),
            TAG_FPC => FpcCodec.decompress(body, out),
            TAG_SHUFFLE_LZSS => ShuffleLzssCodec.decompress(body, out),
            TAG_SZ => SzCodec::new(1.0).decompress(body, out),
            TAG_NULL => NullCodec.decompress(body, out),
            t => Err(CodecError::Corrupt(format!("unknown auto tag {t}"))),
        }
    }
}

impl Codec for AutoCodec {
    fn name(&self) -> &'static str {
        "auto"
    }

    /// Conservative: `true` only when no lossy pick is currently possible
    /// (no allowance in effect and full-f64 precision).
    fn is_lossless(&self) -> bool {
        self.allowance().is_none() && self.precision == Precision::F64
    }

    fn error_bound(&self) -> Option<f64> {
        self.allowance()
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let eb = self.allowance();
        let p = probe::probe(data);
        let packed = (self.precision == Precision::Adaptive && !data.is_empty() && p.f32_fits(eb))
            .then(|| pack_f32_pairs(data));

        let mut best: Option<Vec<u8>> = None;
        let mut consider = |candidate: Vec<u8>| {
            if best.as_ref().is_none_or(|b| candidate.len() < b.len()) {
                best = Some(candidate);
            }
        };

        if p.is_sparse() || data.is_empty() {
            // Zero-dominated chunks: zero-RLE wins by orders of magnitude;
            // the only question is whether the literals shrink further as
            // f32 pairs (exact zeros pack to exact zero words).
            consider(Self::encode_backend(TAG_ZERO_RLE, false, data, None));
            if let Some(pk) = &packed {
                consider(Self::encode_backend(TAG_ZERO_RLE, true, pk, None));
            }
        } else {
            consider(Self::encode_backend(TAG_FPC, false, data, None));
            if p.is_plane_repetitive() {
                consider(Self::encode_backend(TAG_SHUFFLE_LZSS, false, data, None));
            }
            if let Some(pk) = &packed {
                consider(Self::encode_backend(TAG_FPC, true, pk, None));
                if p.is_plane_repetitive() {
                    consider(Self::encode_backend(TAG_SHUFFLE_LZSS, true, pk, None));
                }
            }
            if eb.is_some() {
                consider(Self::encode_backend(TAG_SZ, false, data, eb));
            }
        }
        best.expect("at least one candidate was encoded")
    }

    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let (&header, body) = bytes
            .split_first()
            .ok_or_else(|| CodecError::Corrupt("empty auto payload".into()))?;
        let tag = header & TAG_MASK;
        if header & FLAG_F32 != 0 {
            if !out.len().is_multiple_of(2) {
                return Err(CodecError::Corrupt(format!(
                    "f32-packed payload cannot fill an odd-length buffer ({})",
                    out.len()
                )));
            }
            let mut half = vec![0.0f64; out.len() / 2];
            Self::decode_backend(tag, body, &mut half).map_err(|e| match e {
                // The inner stream counts packed words; report amplitudes.
                CodecError::LengthMismatch { expected, got } => CodecError::LengthMismatch {
                    expected: expected * 2,
                    got: got * 2,
                },
                other => other,
            })?;
            unpack_f32_pairs(&half, out);
            Ok(())
        } else {
            Self::decode_backend(tag, body, out)
        }
    }

    fn payload_meta(&self, payload: &[u8]) -> Option<PayloadMeta> {
        let header = *payload.first()?;
        let f32_packed = header & FLAG_F32 != 0;
        let codec = match header & TAG_MASK {
            TAG_ZERO_RLE => "zero-rle",
            TAG_FPC => "fpc",
            TAG_SZ => "sz",
            TAG_SHUFFLE_LZSS => "shuffle-lzss",
            TAG_NULL => "null",
            _ => return None,
        };
        Some(PayloadMeta {
            codec,
            f32_packed,
            lossless: (header & TAG_MASK) != TAG_SZ && !f32_packed,
        })
    }

    /// Installs (or clears, with `None`) the dynamic error allowance. A
    /// non-finite or non-positive bound is treated as `None`.
    fn set_dynamic_bound(&self, eb: Option<f64>) -> bool {
        let bits = match eb {
            Some(e) if e.is_finite() && e > 0.0 => e.to_bits(),
            _ => DYNAMIC_UNSET,
        };
        self.dynamic_eb
            .store(bits, std::sync::atomic::Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod auto_tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_f32_values() {
        let data: Vec<f64> = (0..64).map(|i| (i as f32 as f64) * 0.25 - 4.0).collect();
        let packed = pack_f32_pairs(&data);
        assert_eq!(packed.len(), 32);
        let mut out = vec![0.0f64; 64];
        unpack_f32_pairs(&packed, &mut out);
        assert_eq!(data, out, "f32-representable values survive exactly");
    }

    #[test]
    fn picks_zero_rle_on_sparse_chunks() {
        let mut data = vec![0.0f64; 2048];
        data[17] = 0.5;
        let auto = AutoCodec::lossless();
        let bytes = auto.compress(&data);
        let meta = auto.payload_meta(&bytes).unwrap();
        assert_eq!(meta.codec, "zero-rle");
        assert!(meta.lossless);
        let mut out = vec![1.0f64; 2048];
        auto.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn all_zero_chunk_round_trips() {
        let data = vec![0.0f64; 512];
        let auto = AutoCodec::new(Some(1e-8), Precision::Adaptive);
        let bytes = auto.compress(&data);
        assert!(bytes.len() < 32, "all-zero chunk must stay tiny");
        let mut out = vec![1.0f64; 512];
        auto.decompress(&bytes, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn picks_sz_on_smooth_data_within_allowance() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let auto = AutoCodec::new(Some(1e-8), Precision::F64);
        let bytes = auto.compress(&data);
        let meta = auto.payload_meta(&bytes).unwrap();
        assert_eq!(meta.codec, "sz");
        assert!(!meta.lossless);
        let mut out = vec![0.0f64; data.len()];
        auto.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-8);
        }
    }

    #[test]
    fn lossless_mode_never_picks_a_lossy_backend() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 1e-3).sin()).collect();
        let auto = AutoCodec::lossless();
        assert!(auto.is_lossless());
        let bytes = auto.compress(&data);
        let meta = auto.payload_meta(&bytes).unwrap();
        assert!(meta.lossless, "picked {}", meta.codec);
        let mut out = vec![0.0f64; data.len()];
        auto.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_precision_demotes_within_allowance() {
        // Magnitudes around 0.7; f32 rounding error ~ 0.7 * 2^-23 ≈ 8e-8
        // fits a 1e-6 allowance, so the f32 variants compete and win on
        // this incompressible-mantissa data.
        let data: Vec<f64> = (0..4096)
            .map(|i| 0.5 + ((i * 2654435761usize) % 1000) as f64 * 2e-4)
            .collect();
        let auto = AutoCodec::new(Some(1e-6), Precision::Adaptive);
        let bytes = auto.compress(&data);
        let meta = auto.payload_meta(&bytes).unwrap();
        assert!(meta.f32_packed, "picked {meta:?}");
        assert!(!meta.lossless);
        assert!(
            bytes.len() < data.len() * 8 * 6 / 10,
            "f32 demotion should cut well below raw: {} of {}",
            bytes.len(),
            data.len() * 8
        );
        let mut out = vec![0.0f64; data.len()];
        auto.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-6);
        }
    }

    #[test]
    fn adaptive_precision_refuses_when_allowance_too_tight() {
        let data: Vec<f64> = (0..1024)
            .map(|i| 0.5 + ((i * 37) % 100) as f64 * 1e-3)
            .collect();
        // 0.6 * 2^-23 ≈ 7e-8 > 1e-12: demotion would exceed the allowance.
        let auto = AutoCodec::new(Some(1e-12), Precision::Adaptive);
        let meta = auto.payload_meta(&auto.compress(&data)).unwrap();
        assert!(!meta.f32_packed);
    }

    #[test]
    fn dynamic_bound_overrides_and_clears() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let auto = AutoCodec::lossless();
        assert!(auto.payload_meta(&auto.compress(&data)).unwrap().lossless);
        assert!(auto.set_dynamic_bound(Some(1e-6)));
        assert_eq!(auto.error_bound(), Some(1e-6));
        assert!(!auto.is_lossless());
        let lossy = auto.compress(&data);
        assert_eq!(auto.payload_meta(&lossy).unwrap().codec, "sz");
        let mut out = vec![0.0f64; data.len()];
        auto.decompress(&lossy, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-6);
        }
        assert!(auto.set_dynamic_bound(None));
        assert!(auto.is_lossless());
        assert!(auto.payload_meta(&auto.compress(&data)).unwrap().lossless);
    }

    #[test]
    fn static_codecs_have_no_dynamic_bound_or_meta() {
        let data = [1.0f64, 2.0, 3.0, 4.0];
        for spec in CodecSpec::sweep_set() {
            let codec = spec.build();
            assert!(!codec.set_dynamic_bound(Some(1e-6)), "{spec}");
            let payload = codec.compress(&data);
            assert_eq!(codec.payload_meta(&payload), None, "{spec}");
        }
    }

    #[test]
    fn auto_specs_parse_display_and_build() {
        for (text, spec) in [
            ("auto", CodecSpec::Auto { eb: None }),
            ("auto:1e-9", CodecSpec::Auto { eb: Some(1e-9) }),
        ] {
            assert_eq!(CodecSpec::parse(text).unwrap(), spec);
            assert_eq!(text.parse::<CodecSpec>().unwrap(), spec);
            assert_eq!(CodecSpec::parse(&spec.to_string()).unwrap(), spec);
            assert_eq!(spec.build().name(), "auto");
        }
        assert!(CodecSpec::parse("auto:0").is_err());
        assert!(CodecSpec::parse("auto:nan").is_err());
        assert!("auto:-2".parse::<CodecSpec>().is_err());
        let adaptive = CodecSpec::Auto { eb: Some(1e-6) }.build_with_precision(Precision::Adaptive);
        assert_eq!(adaptive.name(), "auto");
        assert_eq!(adaptive.error_bound(), Some(1e-6));
    }

    #[test]
    fn rejects_malformed_payloads() {
        let auto = AutoCodec::lossless();
        let mut out = vec![0.0f64; 4];
        assert!(auto.decompress(&[], &mut out).is_err());
        assert!(auto.decompress(&[0x07, 0, 0], &mut out).is_err());
        // Length mismatch surfaces typed, with amplitude counts doubled
        // back out of the f32-packed stream. A sparse chunk with paired
        // literals makes the f32-packed zero-RLE candidate the clear win.
        let mut data = vec![0.0f64; 640];
        for pair in data.chunks_exact_mut(2).take(10) {
            pair[0] = 0.5;
            pair[1] = -0.25;
        }
        let adaptive = AutoCodec::new(Some(1e-6), Precision::Adaptive);
        let packed_payload = adaptive.compress(&data);
        assert!(adaptive.payload_meta(&packed_payload).unwrap().f32_packed);
        let mut wrong = vec![0.0f64; 1280];
        assert_eq!(
            adaptive.decompress(&packed_payload, &mut wrong),
            Err(CodecError::LengthMismatch {
                expected: 640,
                got: 1280
            })
        );
        let mut odd = vec![0.0f64; 639];
        assert!(matches!(
            adaptive.decompress(&packed_payload, &mut odd),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn auto_beats_or_matches_every_static_codec_per_shape() {
        // The probe must land within a header byte of the best static
        // candidate on each of the three canonical shapes.
        let sparse = {
            let mut v = vec![0.0f64; 4096];
            v[7] = std::f64::consts::FRAC_1_SQRT_2;
            v
        };
        let smooth: Vec<f64> = (0..4096).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let repetitive: Vec<f64> = (0..4096).map(|i| 0.25 + (i % 8) as f64 * 1e-13).collect();
        let auto = AutoCodec::new(Some(1e-9), Precision::F64);
        for data in [&sparse, &smooth, &repetitive] {
            let auto_len = auto.compress(data).len();
            let best = [
                ZeroRleCodec.compress(data).len(),
                FpcCodec.compress(data).len(),
                ShuffleLzssCodec.compress(data).len(),
                SzCodec::new(1e-9).compress(data).len(),
            ]
            .into_iter()
            .min()
            .unwrap();
            assert!(auto_len <= best + 1, "auto {auto_len} vs best {best}");
        }
    }
}
