//! # mq-compress — compression substrate for the MEMQSIM reproduction
//!
//! The paper leverages "a state-of-the-art data compressor" (SZ) to shrink
//! state-vector chunks resident in CPU memory. This crate builds that
//! substrate from scratch:
//!
//! * primitives — [`bitstream`], [`varint`], [`huffman`], [`lzss`],
//!   [`rle`], [`shuffle`];
//! * codecs — [`szlike`] (error-bounded lossy, the headline compressor),
//!   [`fpc`] (lossless XOR-predictor), zero-RLE, byte-shuffle+LZSS, and a
//!   null codec, all behind the [`Codec`] trait;
//! * [`CodecSpec`] — a parseable registry so harness binaries can sweep
//!   codecs by name (`"sz:1e-8"`, `"fpc"`, ...);
//! * complex-amplitude helpers — [`compress_complex`] /
//!   [`decompress_complex`] split interleaved amplitudes into re/im planes
//!   (prediction works far better within a plane).

//!
//! ## Example
//!
//! ```
//! use mq_compress::{Codec, CodecSpec};
//!
//! let codec = CodecSpec::parse("sz:1e-8").unwrap().build();
//! let data: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
//! let compressed = codec.compress(&data);
//! assert!(compressed.len() < data.len() * 8);
//!
//! let mut out = vec![0.0; data.len()];
//! codec.decompress(&compressed, &mut out).unwrap();
//! for (a, b) in data.iter().zip(&out) {
//!     assert!((a - b).abs() <= 1e-8);
//! }
//! ```

pub mod bitstream;
pub mod fpc;
pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod shuffle;
pub mod szlike;
pub mod varint;

use mq_num::complex::{as_f64_slice, as_f64_slice_mut};
use mq_num::Complex64;
use std::fmt;

/// Unified codec error.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
    /// Output buffer length disagrees with the stream header.
    LengthMismatch {
        /// Element count recorded in the stream.
        expected: usize,
        /// Length of the caller's output buffer.
        got: usize,
    },
    /// A caller-supplied chunk buffer has the wrong length for the store's
    /// chunk geometry (amplitude counts, not bytes).
    BufferMismatch {
        /// Amplitudes the store's chunks hold.
        expected: usize,
        /// Length of the caller's buffer.
        got: usize,
    },
    /// A storage-tier I/O operation failed (e.g. a spill file).
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt compressed stream: {m}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: stream has {expected}, buffer {got}")
            }
            CodecError::BufferMismatch { expected, got } => {
                write!(
                    f,
                    "chunk buffer mismatch: store chunks hold {expected} amplitudes, buffer has {got}"
                )
            }
            CodecError::Io(m) => write!(f, "storage i/o error: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A floating-point array codec.
///
/// Implementations are stateless and `Send + Sync`, so one boxed codec can
/// serve every pipeline thread concurrently.
pub trait Codec: Send + Sync {
    /// Short registry name (`"sz"`, `"fpc"`, ...).
    fn name(&self) -> &'static str;

    /// True if decompression is bit-exact.
    fn is_lossless(&self) -> bool;

    /// The pointwise absolute error bound, `None` for lossless codecs.
    fn error_bound(&self) -> Option<f64> {
        None
    }

    /// Compresses `data` into a fresh byte buffer.
    fn compress(&self, data: &[f64]) -> Vec<u8>;

    /// Decompresses into `out`; `out.len()` must equal the original length.
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError>;
}

// --- codec implementations --------------------------------------------------

/// Identity codec: raw little-endian bytes. The "no compression" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCodec;

impl Codec for NullCodec {
    fn name(&self) -> &'static str {
        "null"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + data.len() * 8);
        varint::write_u64(&mut out, data.len() as u64);
        for &x in data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let mut pos = 0;
        let n = varint::read_u64(bytes, &mut pos).map_err(|e| CodecError::Corrupt(e.to_string()))?
            as usize;
        if n != out.len() {
            return Err(CodecError::LengthMismatch {
                expected: n,
                got: out.len(),
            });
        }
        if pos + n * 8 > bytes.len() {
            return Err(CodecError::Corrupt("truncated raw payload".into()));
        }
        for (i, slot) in out.iter_mut().enumerate() {
            let s = pos + i * 8;
            *slot = f64::from_le_bytes(bytes[s..s + 8].try_into().expect("bounds checked"));
        }
        Ok(())
    }
}

/// Zero run-length codec (lossless): exploits exact-zero sparsity.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroRleCodec;

impl Codec for ZeroRleCodec {
    fn name(&self) -> &'static str {
        "zero-rle"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        rle::encode(data, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        rle::decode(bytes, out).map_err(|e| match e {
            rle::RleError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

/// FPC-style lossless XOR-predictive codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpcCodec;

impl Codec for FpcCodec {
    fn name(&self) -> &'static str {
        "fpc"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        fpc::encode(data, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        fpc::decode(bytes, out).map_err(|e| match e {
            fpc::FpcError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

/// Byte-shuffle + LZSS (lossless): dictionary coding over byte planes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShuffleLzssCodec;

impl Codec for ShuffleLzssCodec {
    fn name(&self) -> &'static str {
        "shuffle-lzss"
    }
    fn is_lossless(&self) -> bool {
        true
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut planes = Vec::new();
        shuffle::shuffle(data, &mut planes);
        let mut out = Vec::new();
        varint::write_u64(&mut out, data.len() as u64);
        lzss::encode(&planes, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let mut pos = 0;
        let n = varint::read_u64(bytes, &mut pos).map_err(|e| CodecError::Corrupt(e.to_string()))?
            as usize;
        if n != out.len() {
            return Err(CodecError::LengthMismatch {
                expected: n,
                got: out.len(),
            });
        }
        let mut planes = vec![0u8; n * 8];
        lzss::decode(&bytes[pos..], &mut planes).map_err(|e| match e {
            lzss::LzssError::LengthMismatch { expected, got } => CodecError::LengthMismatch {
                expected: expected / 8,
                got: got / 8,
            },
            other => CodecError::Corrupt(other.to_string()),
        })?;
        shuffle::unshuffle(&planes, out);
        Ok(())
    }
}

/// SZ-style error-bounded lossy codec.
#[derive(Debug, Clone, Copy)]
pub struct SzCodec {
    /// Pointwise absolute error bound (> 0).
    pub eb: f64,
}

impl SzCodec {
    /// Creates a codec with the given absolute error bound.
    ///
    /// # Panics
    /// Panics unless `eb` is finite and positive.
    pub fn new(eb: f64) -> SzCodec {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
        SzCodec { eb }
    }
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }
    fn is_lossless(&self) -> bool {
        false
    }
    fn error_bound(&self) -> Option<f64> {
        Some(self.eb)
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        szlike::encode(data, self.eb, &mut out);
        out
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        szlike::decode(bytes, out).map(|_| ()).map_err(|e| match e {
            szlike::SzError::LengthMismatch { expected, got } => {
                CodecError::LengthMismatch { expected, got }
            }
            other => CodecError::Corrupt(other.to_string()),
        })
    }
}

// --- registry ----------------------------------------------------------------

/// A parseable codec specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecSpec {
    /// Raw bytes.
    Null,
    /// Zero run-length.
    ZeroRle,
    /// FPC-style lossless.
    Fpc,
    /// Byte-shuffle + LZSS lossless.
    ShuffleLzss,
    /// SZ-style lossy with absolute bound.
    Sz {
        /// Pointwise absolute error bound.
        eb: f64,
    },
}

impl CodecSpec {
    /// Instantiates the codec.
    pub fn build(&self) -> Box<dyn Codec> {
        match *self {
            CodecSpec::Null => Box::new(NullCodec),
            CodecSpec::ZeroRle => Box::new(ZeroRleCodec),
            CodecSpec::Fpc => Box::new(FpcCodec),
            CodecSpec::ShuffleLzss => Box::new(ShuffleLzssCodec),
            CodecSpec::Sz { eb } => Box::new(SzCodec::new(eb)),
        }
    }

    /// Parses `"null" | "zero-rle" | "fpc" | "shuffle-lzss" | "sz:<eb>"`.
    pub fn parse(s: &str) -> Result<CodecSpec, String> {
        match s {
            "null" => Ok(CodecSpec::Null),
            "zero-rle" => Ok(CodecSpec::ZeroRle),
            "fpc" => Ok(CodecSpec::Fpc),
            "shuffle-lzss" => Ok(CodecSpec::ShuffleLzss),
            _ => {
                if let Some(eb_text) = s.strip_prefix("sz:") {
                    let eb: f64 = eb_text
                        .parse()
                        .map_err(|_| format!("invalid error bound '{eb_text}'"))?;
                    if !(eb.is_finite() && eb > 0.0) {
                        return Err(format!("error bound must be positive, got {eb}"));
                    }
                    Ok(CodecSpec::Sz { eb })
                } else {
                    Err(format!("unknown codec '{s}'"))
                }
            }
        }
    }

    /// The default sweep set used by the codec-comparison experiment.
    pub fn sweep_set() -> Vec<CodecSpec> {
        vec![
            CodecSpec::Null,
            CodecSpec::ZeroRle,
            CodecSpec::Fpc,
            CodecSpec::ShuffleLzss,
            CodecSpec::Sz { eb: 1e-4 },
            CodecSpec::Sz { eb: 1e-6 },
            CodecSpec::Sz { eb: 1e-8 },
            CodecSpec::Sz { eb: 1e-10 },
        ]
    }
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecSpec::Null => write!(f, "null"),
            CodecSpec::ZeroRle => write!(f, "zero-rle"),
            CodecSpec::Fpc => write!(f, "fpc"),
            CodecSpec::ShuffleLzss => write!(f, "shuffle-lzss"),
            CodecSpec::Sz { eb } => write!(f, "sz:{eb:e}"),
        }
    }
}

// --- stats --------------------------------------------------------------------

/// Aggregate compression accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed bytes processed.
    pub raw_bytes: usize,
    /// Compressed bytes produced.
    pub compressed_bytes: usize,
    /// Number of compress calls.
    pub blocks: usize,
}

impl CompressionStats {
    /// Records one compressed block.
    pub fn record(&mut self, raw: usize, compressed: usize) {
        self.raw_bytes += raw;
        self.compressed_bytes += compressed;
        self.blocks += 1;
    }

    /// Overall ratio `raw / compressed` (1.0 when nothing was recorded).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.blocks += other.blocks;
    }
}

// --- complex helpers ------------------------------------------------------------

/// Compresses interleaved complex amplitudes by first splitting them into a
/// real plane followed by an imaginary plane (predictors behave much better
/// within a plane than across the re/im interleave).
pub fn compress_complex(codec: &dyn Codec, amps: &[Complex64]) -> Vec<u8> {
    let n = amps.len();
    let interleaved = as_f64_slice(amps);
    let mut planes = vec![0.0f64; n * 2];
    for i in 0..n {
        planes[i] = interleaved[2 * i];
        planes[n + i] = interleaved[2 * i + 1];
    }
    codec.compress(&planes)
}

/// Inverse of [`compress_complex`].
pub fn decompress_complex(
    codec: &dyn Codec,
    bytes: &[u8],
    out: &mut [Complex64],
) -> Result<(), CodecError> {
    let n = out.len();
    let mut planes = vec![0.0f64; n * 2];
    codec.decompress(bytes, &mut planes)?;
    let interleaved = as_f64_slice_mut(out);
    for i in 0..n {
        interleaved[2 * i] = planes[i];
        interleaved[2 * i + 1] = planes[n + i];
    }
    Ok(())
}

// --- compression backends -------------------------------------------------------

/// Where codec work runs: the seam between the chunk pipeline and the
/// encode/decode hardware.
///
/// A backend turns amplitude chunks into compressed payloads and back. The
/// payload format is *owned by the codec*, not the backend — any two backends
/// built over the same [`Codec`] produce interchangeable, byte-identical
/// payloads, so a chunk encoded on the host can be decoded on a device and
/// vice versa. [`HostCodecBackend`] runs the codec on the calling thread
/// (today's CPU path); `mq-device` provides a `DeviceCodecBackend` that ships
/// payloads over the modeled PCIe link and charges staged decode/encode
/// kernels on a stream.
pub trait CompressionBackend: Send + Sync {
    /// Human-readable backend name for reports ("host", "device", ...).
    fn name(&self) -> &str;

    /// The codec this backend runs.
    fn codec(&self) -> &std::sync::Arc<dyn Codec>;

    /// Compresses a chunk of amplitudes into a payload.
    fn encode(&self, amps: &[Complex64]) -> Result<Vec<u8>, CodecError>;

    /// Decompresses a payload into exactly `out.len()` amplitudes.
    fn decode(&self, payload: &[u8], out: &mut [Complex64]) -> Result<(), CodecError>;
}

/// The host-side [`CompressionBackend`]: runs the codec registry on the
/// calling CPU thread via [`compress_complex`] / [`decompress_complex`].
#[derive(Clone)]
pub struct HostCodecBackend {
    codec: std::sync::Arc<dyn Codec>,
}

impl HostCodecBackend {
    /// Wraps a codec in the host backend.
    pub fn new(codec: std::sync::Arc<dyn Codec>) -> HostCodecBackend {
        HostCodecBackend { codec }
    }

    /// Builds the backend straight from a [`CodecSpec`].
    pub fn from_spec(spec: CodecSpec) -> HostCodecBackend {
        HostCodecBackend::new(std::sync::Arc::from(spec.build()))
    }
}

impl fmt::Debug for HostCodecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCodecBackend")
            .field("codec", &self.codec.name())
            .finish()
    }
}

impl CompressionBackend for HostCodecBackend {
    fn name(&self) -> &str {
        "host"
    }

    fn codec(&self) -> &std::sync::Arc<dyn Codec> {
        &self.codec
    }

    fn encode(&self, amps: &[Complex64]) -> Result<Vec<u8>, CodecError> {
        Ok(compress_complex(self.codec.as_ref(), amps))
    }

    fn decode(&self, payload: &[u8], out: &mut [Complex64]) -> Result<(), CodecError> {
        decompress_complex(self.codec.as_ref(), payload, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    fn sample_data() -> Vec<f64> {
        (0..4096)
            .map(|i| (i as f64 * 0.01).sin() * 0.1 + if i % 97 == 0 { 1.0 } else { 0.0 })
            .collect()
    }

    fn all_specs() -> Vec<CodecSpec> {
        CodecSpec::sweep_set()
    }

    #[test]
    fn every_codec_round_trips_within_bound() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len()];
            codec.decompress(&bytes, &mut out).unwrap();
            let bound = codec.error_bound().unwrap_or(0.0);
            for (a, b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= bound, "{spec}: |{a}-{b}| > {bound}");
            }
            if codec.is_lossless() {
                for (a, b) in data.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{spec} not bit-exact");
                }
            }
        }
    }

    #[test]
    fn every_codec_rejects_length_mismatch() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len() + 1];
            assert!(
                matches!(
                    codec.decompress(&bytes, &mut out),
                    Err(CodecError::LengthMismatch { .. })
                ),
                "{spec}"
            );
        }
    }

    #[test]
    fn every_codec_detects_truncation() {
        let data = sample_data();
        for spec in all_specs() {
            let codec = spec.build();
            let mut bytes = codec.compress(&data);
            bytes.truncate(bytes.len() / 3);
            let mut out = vec![0.0f64; data.len()];
            assert!(codec.decompress(&bytes, &mut out).is_err(), "{spec}");
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        for spec in all_specs() {
            let s = spec.to_string();
            let back = CodecSpec::parse(&s).unwrap();
            match (spec, back) {
                (CodecSpec::Sz { eb: a }, CodecSpec::Sz { eb: b }) => assert_eq!(a, b),
                (x, y) => assert_eq!(x, y),
            }
        }
        assert!(CodecSpec::parse("bogus").is_err());
        assert!(CodecSpec::parse("sz:abc").is_err());
        assert!(CodecSpec::parse("sz:-1").is_err());
        assert!(CodecSpec::parse("sz:0").is_err());
    }

    #[test]
    fn sz_beats_lossless_on_smooth_data() {
        let data: Vec<f64> = (0..32768).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let sz = SzCodec::new(1e-8).compress(&data).len();
        let fpc = FpcCodec.compress(&data).len();
        let raw = data.len() * 8;
        assert!(sz < fpc, "sz {sz} vs fpc {fpc}");
        assert!(sz * 4 < raw, "sz ratio too low: {}", raw as f64 / sz as f64);
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = CompressionStats::default();
        a.record(1000, 100);
        a.record(1000, 300);
        assert_eq!(a.blocks, 2);
        assert!((a.ratio() - 5.0).abs() < 1e-12);
        let mut b = CompressionStats::default();
        b.record(500, 500);
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.raw_bytes, 2500);
        assert_eq!(CompressionStats::default().ratio(), 1.0);
    }

    #[test]
    fn complex_round_trip_planes() {
        let amps: Vec<Complex64> = (0..2048)
            .map(|i| c64((i as f64 * 0.01).cos() * 0.1, (i as f64 * 0.01).sin() * 0.1))
            .collect();
        for spec in all_specs() {
            let codec = spec.build();
            let bytes = compress_complex(codec.as_ref(), &amps);
            let mut out = vec![Complex64::ZERO; amps.len()];
            decompress_complex(codec.as_ref(), &bytes, &mut out).unwrap();
            let bound = codec.error_bound().unwrap_or(0.0);
            for (a, b) in amps.iter().zip(&out) {
                assert!((a.re - b.re).abs() <= bound, "{spec}");
                assert!((a.im - b.im).abs() <= bound, "{spec}");
            }
        }
    }

    #[test]
    fn plane_split_helps_sz_on_complex_data() {
        // Interleaved re/im breaks the Lorenzo predictor; planes restore it.
        let amps: Vec<Complex64> = (0..8192)
            .map(|i| {
                let t = i as f64 * 1e-3;
                c64(t.cos() * 0.01, (t * 0.5).sin() * 0.02)
            })
            .collect();
        let codec = SzCodec::new(1e-9);
        let planes = compress_complex(&codec, &amps).len();
        let interleaved = codec.compress(as_f64_slice(&amps)).len();
        assert!(
            planes < interleaved,
            "planes {planes} vs interleaved {interleaved}"
        );
    }

    #[test]
    fn codecs_are_object_safe_and_shareable() {
        fn takes_dyn(c: &dyn Codec) -> usize {
            c.compress(&[1.0, 2.0]).len()
        }
        let boxed: Vec<Box<dyn Codec>> = all_specs().iter().map(|s| s.build()).collect();
        for c in &boxed {
            assert!(takes_dyn(c.as_ref()) > 0);
        }
        // Send + Sync: share across scoped threads.
        let codec = SzCodec::new(1e-6);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let bytes = codec.compress(&[0.5; 64]);
                    let mut out = [0.0f64; 64];
                    codec.decompress(&bytes, &mut out).unwrap();
                });
            }
        });
    }
}

// --- adaptive codec -------------------------------------------------------------

/// Picks the best backend codec *per block*: tries zero-RLE (wins on sparse
/// chunks), FPC (wins on lossless-compressible data) and — when an error
/// bound is configured — the SZ-style lossy codec, and keeps whichever
/// output is smallest. A one-byte tag selects the decoder.
///
/// This is the paper's "adaptable to accommodate various compression
/// algorithms" point made concrete: the store takes any [`Codec`], including
/// this meta-codec.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCodec {
    /// Error bound for the lossy candidate; `None` restricts the choice to
    /// lossless backends.
    pub eb: Option<f64>,
}

impl AdaptiveCodec {
    /// Adaptive lossless-only codec.
    pub fn lossless() -> AdaptiveCodec {
        AdaptiveCodec { eb: None }
    }

    /// Adaptive codec allowed to go lossy within `eb`.
    pub fn lossy(eb: f64) -> AdaptiveCodec {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
        AdaptiveCodec { eb: Some(eb) }
    }
}

const TAG_ZERO_RLE: u8 = 1;
const TAG_FPC: u8 = 2;
const TAG_SZ: u8 = 3;

impl Codec for AdaptiveCodec {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn is_lossless(&self) -> bool {
        self.eb.is_none()
    }
    fn error_bound(&self) -> Option<f64> {
        self.eb
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut best = {
            let mut out = vec![TAG_ZERO_RLE];
            rle::encode(data, &mut out);
            out
        };
        let fpc = {
            let mut out = vec![TAG_FPC];
            fpc::encode(data, &mut out);
            out
        };
        if fpc.len() < best.len() {
            best = fpc;
        }
        if let Some(eb) = self.eb {
            let mut out = vec![TAG_SZ];
            szlike::encode(data, eb, &mut out);
            if out.len() < best.len() {
                best = out;
            }
        }
        best
    }
    fn decompress(&self, bytes: &[u8], out: &mut [f64]) -> Result<(), CodecError> {
        let (tag, body) = bytes
            .split_first()
            .ok_or_else(|| CodecError::Corrupt("empty adaptive block".into()))?;
        match *tag {
            TAG_ZERO_RLE => rle::decode(body, out).map_err(|e| match e {
                rle::RleError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            TAG_FPC => fpc::decode(body, out).map_err(|e| match e {
                fpc::FpcError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            TAG_SZ => szlike::decode(body, out).map(|_| ()).map_err(|e| match e {
                szlike::SzError::LengthMismatch { expected, got } => {
                    CodecError::LengthMismatch { expected, got }
                }
                other => CodecError::Corrupt(other.to_string()),
            }),
            t => Err(CodecError::Corrupt(format!("unknown adaptive tag {t}"))),
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn picks_rle_on_sparse_data() {
        let mut data = vec![0.0f64; 4096];
        data[7] = 1.0;
        let adaptive = AdaptiveCodec::lossless();
        let bytes = adaptive.compress(&data);
        assert_eq!(bytes[0], TAG_ZERO_RLE);
        // And it beats plain FPC on this input.
        assert!(bytes.len() < FpcCodec.compress(&data).len());
        let mut out = vec![1.0f64; 4096];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn picks_sz_on_smooth_data_when_lossy_allowed() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 1e-3).sin() * 0.01).collect();
        let adaptive = AdaptiveCodec::lossy(1e-8);
        let bytes = adaptive.compress(&data);
        assert_eq!(bytes[0], TAG_SZ);
        let mut out = vec![0.0f64; data.len()];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-8);
        }
    }

    #[test]
    fn lossless_mode_never_uses_sz() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 1e-3).sin()).collect();
        let adaptive = AdaptiveCodec::lossless();
        let bytes = adaptive.compress(&data);
        assert_ne!(bytes[0], TAG_SZ);
        let mut out = vec![0.0f64; data.len()];
        adaptive.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_never_loses_to_its_backends_by_more_than_a_tag() {
        for data in [
            vec![0.0f64; 1000],
            (0..1000).map(|i| i as f64).collect::<Vec<_>>(),
            (0..1000)
                .map(|i| ((i * 2654435761usize) % 997) as f64 / 997.0)
                .collect(),
        ] {
            let adaptive = AdaptiveCodec::lossy(1e-9).compress(&data).len();
            let rle = ZeroRleCodec.compress(&data).len();
            let fpc = FpcCodec.compress(&data).len();
            let sz = SzCodec::new(1e-9).compress(&data).len();
            let best = rle.min(fpc).min(sz);
            assert!(adaptive <= best + 1, "adaptive {adaptive} vs best {best}");
        }
    }

    #[test]
    fn rejects_unknown_tag_and_empty() {
        let adaptive = AdaptiveCodec::lossless();
        let mut out = vec![0.0f64; 4];
        assert!(adaptive.decompress(&[], &mut out).is_err());
        assert!(adaptive.decompress(&[99, 0, 0], &mut out).is_err());
    }
}
