//! Byte-shuffle transform.
//!
//! Transposes an `f64` array's bytes into 8 planes (all byte-0s, then all
//! byte-1s, ...). Exponent/sign bytes of nearby amplitudes correlate
//! strongly, so planes compress far better under a dictionary coder than
//! interleaved bytes do. Pure permutation — lossless by construction.

/// Transposes `data` into byte planes, appending `8 * data.len()` bytes.
pub fn shuffle(data: &[f64], out: &mut Vec<u8>) {
    let n = data.len();
    let start = out.len();
    out.resize(start + n * 8, 0);
    let planes = &mut out[start..];
    for (i, &x) in data.iter().enumerate() {
        let bytes = x.to_le_bytes();
        for (b, &byte) in bytes.iter().enumerate() {
            planes[b * n + i] = byte;
        }
    }
}

/// Inverse of [`shuffle`]: reconstructs `out.len()` doubles from
/// `8 * out.len()` plane bytes.
///
/// # Panics
/// Panics if `planes.len() != 8 * out.len()`.
pub fn unshuffle(planes: &[u8], out: &mut [f64]) {
    let n = out.len();
    assert_eq!(planes.len(), n * 8, "plane buffer size mismatch");
    for i in 0..n {
        let mut bytes = [0u8; 8];
        for (b, byte) in bytes.iter_mut().enumerate() {
            *byte = planes[b * n + i];
        }
        out[i] = f64::from_le_bytes(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bit_exact() {
        let data = [1.5, -2.25, 0.0, -0.0, f64::NAN, f64::INFINITY, 1e-300];
        let mut planes = Vec::new();
        shuffle(&data, &mut planes);
        assert_eq!(planes.len(), data.len() * 8);
        let mut out = vec![0.0f64; data.len()];
        unshuffle(&planes, &mut out);
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_input() {
        let mut planes = Vec::new();
        shuffle(&[], &mut planes);
        assert!(planes.is_empty());
        let mut out: Vec<f64> = vec![];
        unshuffle(&planes, &mut out);
    }

    #[test]
    fn plane_layout_groups_same_byte_index() {
        let data = [
            f64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]),
            f64::from_le_bytes([11, 12, 13, 14, 15, 16, 17, 18]),
        ];
        let mut planes = Vec::new();
        shuffle(&data, &mut planes);
        assert_eq!(&planes[0..2], &[1, 11]); // byte-0 plane
        assert_eq!(&planes[2..4], &[2, 12]); // byte-1 plane
        assert_eq!(&planes[14..16], &[8, 18]); // byte-7 plane
    }

    #[test]
    fn appends_after_existing_content() {
        let mut buf = vec![0xEE, 0xFF];
        shuffle(&[1.0], &mut buf);
        assert_eq!(buf.len(), 2 + 8);
        assert_eq!(&buf[..2], &[0xEE, 0xFF]);
    }

    #[test]
    #[should_panic]
    fn unshuffle_size_mismatch_panics() {
        let mut out = vec![0.0f64; 3];
        unshuffle(&[0u8; 16], &mut out);
    }

    #[test]
    fn similar_exponents_make_constant_planes() {
        // Values in [1, 2): identical sign/exponent bytes.
        let data: Vec<f64> = (0..64).map(|i| 1.0 + i as f64 / 64.0).collect();
        let mut planes = Vec::new();
        shuffle(&data, &mut planes);
        let n = data.len();
        // The top byte plane (sign + exponent high bits) is constant.
        let top = &planes[7 * n..8 * n];
        assert!(top.iter().all(|&b| b == top[0]));
    }
}
