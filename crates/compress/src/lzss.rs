//! LZSS byte compression.
//!
//! A small dictionary compressor used behind the byte-shuffle transform:
//! hash-chain match finding over a 64 KiB window, classic flag-byte token
//! format (8 flags per control byte; literals are raw bytes, matches are
//! little-endian `(offset: u16, len-MIN: u8)` pairs).

use crate::varint::{self, VarintError};

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Hash-chain search depth; higher = better ratio, slower.
const MAX_CHAIN: usize = 32;

/// Compresses `data`, appending to `out`.
pub fn encode(data: &[u8], out: &mut Vec<u8>) {
    varint::write_u64(out, data.len() as u64);
    if data.is_empty() {
        return;
    }

    const HASH_BITS: u32 = 15;
    let hash = |b: &[u8]| -> usize {
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    };
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];

    let mut i = 0usize;
    // Token accumulation: control byte position then up to 8 tokens.
    let mut flags = 0u8;
    let mut nflags = 0u32;
    let mut ctrl_pos = out.len();
    out.push(0);

    macro_rules! flush_flags_if_full {
        () => {
            if nflags == 8 {
                out[ctrl_pos] = flags;
                flags = 0;
                nflags = 0;
                ctrl_pos = out.len();
                out.push(0);
            }
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut chain = 0usize;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Match token: flag bit 1.
            flags |= 1 << nflags;
            nflags += 1;
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Register hash entries for every covered position so later
            // matches can reach into this region.
            let end = i + best_len;
            for j in i..end.min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash(&data[j..]);
                prev[j] = head[h];
                head[h] = j;
            }
            i = end;
        } else {
            // Literal token: flag bit 0.
            nflags += 1;
            out.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flush_flags_if_full!();
    }
    out[ctrl_pos] = flags;
    // If the final control byte ended up unused (flags flushed exactly at
    // the end), it still decodes fine: the decoder stops at `n` outputs.
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzssError {
    /// Varint header failure.
    Varint(VarintError),
    /// Output buffer length differs from the encoded length.
    LengthMismatch {
        /// Encoded element count.
        expected: usize,
        /// Supplied buffer length.
        got: usize,
    },
    /// Stream truncated or a match points before the start.
    Corrupt,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Varint(e) => write!(f, "lzss varint error: {e}"),
            LzssError::LengthMismatch { expected, got } => {
                write!(f, "lzss length mismatch: encoded {expected}, buffer {got}")
            }
            LzssError::Corrupt => write!(f, "corrupt lzss stream"),
        }
    }
}

impl std::error::Error for LzssError {}

impl From<VarintError> for LzssError {
    fn from(e: VarintError) -> Self {
        LzssError::Varint(e)
    }
}

/// Decompresses into `out`, which must match the encoded length.
pub fn decode(buf: &[u8], out: &mut [u8]) -> Result<(), LzssError> {
    let mut pos = 0usize;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    if n != out.len() {
        return Err(LzssError::LengthMismatch {
            expected: n,
            got: out.len(),
        });
    }
    let mut oi = 0usize;
    let mut flags = 0u8;
    let mut nflags = 0u32;
    while oi < n {
        if nflags == 0 {
            flags = *buf.get(pos).ok_or(LzssError::Corrupt)?;
            pos += 1;
            nflags = 8;
        }
        let is_match = flags & 1 == 1;
        flags >>= 1;
        nflags -= 1;
        if is_match {
            if pos + 3 > buf.len() {
                return Err(LzssError::Corrupt);
            }
            let off = u16::from_le_bytes([buf[pos], buf[pos + 1]]) as usize;
            let len = buf[pos + 2] as usize + MIN_MATCH;
            pos += 3;
            if off == 0 || off > oi || oi + len > n {
                return Err(LzssError::Corrupt);
            }
            // Overlapping copy must go byte-by-byte.
            for k in 0..len {
                out[oi + k] = out[oi - off + k];
            }
            oi += len;
        } else {
            out[oi] = *buf.get(pos).ok_or(LzssError::Corrupt)?;
            pos += 1;
            oi += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let mut buf = Vec::new();
        encode(data, &mut buf);
        let mut out = vec![0u8; data.len()];
        decode(&buf, &mut out).unwrap();
        assert_eq!(&out, data);
        buf.len()
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(&[]);
        round_trip(&[1]);
        round_trip(&[1, 2, 3]);
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        let size = round_trip(&data);
        assert!(size < data.len());
    }

    #[test]
    fn long_runs_compress_hard() {
        let data = vec![7u8; 100_000];
        let size = round_trip(&data);
        assert!(size < 2000, "got {size}");
    }

    #[test]
    fn overlapping_match_semantics() {
        // "aaaa..." forces matches with offset 1 < length.
        let data = vec![b'a'; 1000];
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_bounded_expansion() {
        // Pseudo-random bytes: expansion must stay under 1/8 + header.
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut buf = Vec::new();
        encode(&data, &mut buf);
        assert!(buf.len() < data.len() + data.len() / 8 + 32);
        let mut out = vec![0u8; data.len()];
        decode(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn structured_f64_planes_compress() {
        // Byte-plane-like input: smooth low bytes.
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.push((i / 64) as u8);
        }
        let size = round_trip(&data);
        assert!(size < data.len() / 4);
    }

    #[test]
    fn length_mismatch_detected() {
        let mut buf = Vec::new();
        encode(&[1, 2, 3], &mut buf);
        let mut out = vec![0u8; 5];
        assert!(matches!(
            decode(&buf, &mut out),
            Err(LzssError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_offset_detected() {
        // Handcraft: length 4, one control byte with a match flag, match
        // offset 9 (before start).
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 4);
        buf.push(0b0000_0001);
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.push(0);
        let mut out = vec![0u8; 4];
        assert_eq!(decode(&buf, &mut out), Err(LzssError::Corrupt));
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![3u8; 100];
        let mut buf = Vec::new();
        encode(&data, &mut buf);
        buf.truncate(buf.len() - 2);
        let mut out = vec![0u8; 100];
        assert!(decode(&buf, &mut out).is_err());
    }
}
