//! SZ-style error-bounded lossy compression (the paper's "state-of-the-art
//! data compressor" stand-in).
//!
//! Algorithm (the SZ-1.4 core, 1-D):
//!
//! 1. **Predict** each value with the order-1 Lorenzo predictor — the
//!    previous *decompressed* value, so encoder and decoder stay in lockstep.
//! 2. **Quantize** the prediction residual to `q = round(diff / (2*eb))`;
//!    reconstructing `pred + q*2*eb` is then within `eb` of the input.
//! 3. Values whose quantization code falls outside the code range (or whose
//!    reconstruction fails the bound due to floating-point rounding — a
//!    checked guard) are stored verbatim as **outliers**.
//! 4. Quantization codes are **entropy-coded** with canonical Huffman.
//!
//! The decompressed output satisfies `|x - x'| <= eb` pointwise, always —
//! property-tested over arbitrary inputs including NaN/infinity (which take
//! the outlier path and round-trip bit-exactly).

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::{CanonicalCode, HuffmanError};
use crate::varint::{self, VarintError};

/// Half of the quantization-code alphabet (codes span `-RADIUS+1..RADIUS`).
const RADIUS: i64 = 1 << 15;
/// Symbol 0 marks an outlier; quantized code `q` maps to `q + RADIUS`.
const ESCAPE: u32 = 0;

/// Encodes `data` with absolute error bound `eb`, appending to `out`.
///
/// # Panics
/// Panics if `eb` is not finite and positive.
pub fn encode(data: &[f64], eb: f64, out: &mut Vec<u8>) {
    assert!(eb.is_finite() && eb > 0.0, "error bound must be positive");
    varint::write_u64(out, data.len() as u64);
    out.extend_from_slice(&eb.to_le_bytes());
    if data.is_empty() {
        return;
    }

    let step = 2.0 * eb;
    let mut symbols: Vec<u32> = Vec::with_capacity(data.len());
    let mut outliers: Vec<u8> = Vec::new();
    let mut prev = 0.0f64;
    for &x in data {
        let pred = prev;
        let diff = x - pred;
        let qf = (diff / step).round();
        let mut escaped = true;
        if qf.is_finite() && qf.abs() < (RADIUS - 1) as f64 {
            let q = qf as i64;
            let recon = pred + q as f64 * step;
            if (x - recon).abs() <= eb {
                symbols.push((q + RADIUS) as u32);
                prev = recon;
                escaped = false;
            }
        }
        if escaped {
            symbols.push(ESCAPE);
            outliers.extend_from_slice(&x.to_le_bytes());
            prev = if x.is_finite() { x } else { 0.0 };
        }
    }

    // Entropy-code the symbol stream. A single-symbol alphabet (e.g. an
    // all-zero chunk) needs no payload at all — the count is in the header.
    let lengths = crate::huffman::lengths_from_symbols(symbols.iter().copied());
    CanonicalCode::serialize_lengths(&lengths, out);
    if lengths.len() == 1 {
        varint::write_u64(out, 0);
    } else {
        let code = CanonicalCode::from_lengths(&lengths).expect("lengths from builder are valid");
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(&mut w, s);
        }
        let payload = w.into_bytes();
        varint::write_u64(out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
    varint::write_u64(out, (outliers.len() / 8) as u64);
    out.extend_from_slice(&outliers);
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SzError {
    /// Varint failure in the container.
    Varint(VarintError),
    /// Output buffer length differs from the encoded count.
    LengthMismatch {
        /// Encoded element count.
        expected: usize,
        /// Supplied buffer length.
        got: usize,
    },
    /// Huffman table or stream failure.
    Huffman(HuffmanError),
    /// Structural corruption (truncated sections, bad bound, ...).
    Corrupt(&'static str),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::Varint(e) => write!(f, "sz varint error: {e}"),
            SzError::LengthMismatch { expected, got } => {
                write!(f, "sz length mismatch: encoded {expected}, buffer {got}")
            }
            SzError::Huffman(e) => write!(f, "sz huffman error: {e}"),
            SzError::Corrupt(m) => write!(f, "corrupt sz stream: {m}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<VarintError> for SzError {
    fn from(e: VarintError) -> Self {
        SzError::Varint(e)
    }
}

impl From<HuffmanError> for SzError {
    fn from(e: HuffmanError) -> Self {
        SzError::Huffman(e)
    }
}

/// Decompresses into `out` (length must match). Returns the error bound the
/// stream was encoded with.
pub fn decode(buf: &[u8], out: &mut [f64]) -> Result<f64, SzError> {
    let mut pos = 0usize;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    if n != out.len() {
        return Err(SzError::LengthMismatch {
            expected: n,
            got: out.len(),
        });
    }
    if pos + 8 > buf.len() {
        return Err(SzError::Corrupt("missing error bound"));
    }
    let eb = f64::from_le_bytes(buf[pos..pos + 8].try_into().expect("bounds checked"));
    pos += 8;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Corrupt("invalid error bound"));
    }
    if n == 0 {
        return Ok(eb);
    }
    let step = 2.0 * eb;

    let lengths = CanonicalCode::deserialize_lengths(buf, &mut pos)?;
    let code = CanonicalCode::from_lengths(&lengths)?;
    let payload_len = varint::read_u64(buf, &mut pos)? as usize;
    if pos + payload_len > buf.len() {
        return Err(SzError::Corrupt("truncated symbol payload"));
    }
    let payload = &buf[pos..pos + payload_len];
    pos += payload_len;
    let outlier_count = varint::read_u64(buf, &mut pos)? as usize;
    if pos + outlier_count * 8 > buf.len() {
        return Err(SzError::Corrupt("truncated outliers"));
    }
    let outlier_bytes = &buf[pos..pos + outlier_count * 8];

    let mut r = BitReader::new(payload);
    let single = if lengths.len() == 1 {
        Some(lengths[0].0)
    } else {
        None
    };
    let mut oi = 0usize;
    let mut prev = 0.0f64;
    for slot in out.iter_mut() {
        let s = match single {
            Some(sym) => sym,
            None => code.decode(&mut r)?,
        };
        if s == ESCAPE {
            if oi >= outlier_count {
                return Err(SzError::Corrupt("outlier underrun"));
            }
            let x = f64::from_le_bytes(
                outlier_bytes[oi * 8..oi * 8 + 8]
                    .try_into()
                    .expect("bounds checked"),
            );
            oi += 1;
            *slot = x;
            prev = if x.is_finite() { x } else { 0.0 };
        } else {
            let q = s as i64 - RADIUS;
            let recon = prev + q as f64 * step;
            *slot = recon;
            prev = recon;
        }
    }
    if oi != outlier_count {
        return Err(SzError::Corrupt("outlier overrun"));
    }
    Ok(eb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bounded(data: &[f64], eb: f64) -> usize {
        let mut buf = Vec::new();
        encode(data, eb, &mut buf);
        let mut out = vec![0.0f64; data.len()];
        let got_eb = decode(&buf, &mut out).unwrap();
        assert_eq!(got_eb, eb);
        for (i, (a, b)) in data.iter().zip(&out).enumerate() {
            if a.is_finite() {
                assert!(
                    (a - b).abs() <= eb,
                    "idx {i}: |{a} - {b}| = {} > {eb}",
                    (a - b).abs()
                );
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "non-finite must be exact");
            }
        }
        buf.len()
    }

    #[test]
    fn empty_input() {
        assert_bounded(&[], 1e-6);
    }

    #[test]
    fn constant_data_compresses_hard() {
        // One outlier (the jump from 0) + 65535 center codes at ~1 bit each:
        // a ratio around 60x from pure Huffman over the quant codes.
        let data = vec![0.125f64; 65536];
        let size = assert_bounded(&data, 1e-10);
        assert!(size < 10_000, "got {size}");
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data: Vec<f64> = (0..65536).map(|i| (i as f64 * 1e-4).sin() * 0.01).collect();
        let size = assert_bounded(&data, 1e-8);
        let raw = data.len() * 8;
        assert!(size * 4 < raw, "ratio {}", raw as f64 / size as f64);
    }

    #[test]
    fn zeros_compress_like_rle() {
        let mut data = vec![0.0f64; 32768];
        data[5] = 0.73;
        data[17000] = -0.73;
        let size = assert_bounded(&data, 1e-9);
        assert!(size < 8192, "got {size}");
    }

    #[test]
    fn error_bound_is_respected_on_rough_data() {
        let data: Vec<f64> = (0..10_000u64)
            .map(|i| {
                let r = i.wrapping_mul(0x9E3779B97F4A7C15) >> 11;
                (r as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        for eb in [1e-3, 1e-6, 1e-12] {
            assert_bounded(&data, eb);
        }
    }

    #[test]
    fn tighter_bounds_cost_more_bytes() {
        let data: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut loose = Vec::new();
        encode(&data, 1e-3, &mut loose);
        let mut tight = Vec::new();
        encode(&data, 1e-9, &mut tight);
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn huge_values_take_outlier_path() {
        let data = [1e300, -1e300, 1e-300, 0.0, 42.0];
        assert_bounded(&data, 1e-6);
    }

    #[test]
    fn non_finite_values_round_trip_exactly() {
        let data = [
            f64::NAN,
            1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            2.0,
            2.0 + 1e-7,
        ];
        assert_bounded(&data, 1e-6);
    }

    #[test]
    fn statevector_like_amplitudes() {
        // Amplitudes of a uniform superposition with phase noise.
        let n = 1 << 14;
        let amp = 1.0 / (n as f64).sqrt();
        let data: Vec<f64> = (0..n).map(|i| amp * ((i as f64 * 0.001).cos())).collect();
        let size = assert_bounded(&data, amp * 1e-4);
        let ratio = (n * 8) as f64 / size as f64;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn length_mismatch_detected() {
        let mut buf = Vec::new();
        encode(&[1.0, 2.0], 1e-6, &mut buf);
        let mut out = vec![0.0f64; 3];
        assert!(matches!(
            decode(&buf, &mut out),
            Err(SzError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let mut buf = Vec::new();
        encode(&data, 1e-6, &mut buf);
        for cut in [buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            let mut out = vec![0.0f64; 1000];
            assert!(decode(&buf[..cut], &mut out).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_header_detected() {
        let mut out = vec![0.0f64; 4];
        assert!(decode(&[0xFF, 0xFF, 0xFF], &mut out).is_err());
        // Valid count but bogus (negative) error bound.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 4);
        buf.extend_from_slice(&(-1.0f64).to_le_bytes());
        assert!(matches!(decode(&buf, &mut out), Err(SzError::Corrupt(_))));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_bound() {
        let mut buf = Vec::new();
        encode(&[1.0], 0.0, &mut buf);
    }
}
