//! Property tests: codec round-trips on adversarial floating-point inputs —
//! signed zeros, subnormals, magnitude extremes, and values engineered to
//! straddle the SZ quantization-bin edges. Lossless codecs must be bit-exact
//! (including the sign of -0.0); the lossy codec must honour its bound on
//! every component, no matter how hostile the input.

use mq_compress::{
    compress_complex, decompress_complex, AdaptiveCodec, AutoCodec, Codec, CodecSpec, Precision,
    SzCodec,
};
use mq_num::Complex64;
use proptest::prelude::*;

/// Floats weighted toward the representations codecs get wrong: both zeros,
/// the subnormal range, the smallest/largest normals, and plain values.
fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => -1.0f64..1.0,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::MIN_POSITIVE),
        1 => Just(-f64::MIN_POSITIVE),
        1 => Just(f64::MIN_POSITIVE / 2.0),
        1 => Just(-f64::MIN_POSITIVE / 1024.0),
        1 => Just(f64::from_bits(1)), // smallest positive subnormal
        1 => Just(-f64::from_bits(1)),
        1 => -1e300f64..1e300,
        1 => -1e-300f64..1e-300,
    ]
}

/// Chunks the probe-guided codec sees in practice: adversarial mixtures,
/// plus the all-zero chunks a fresh state vector is mostly made of.
fn adversarial_chunk() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        4 => prop::collection::vec(adversarial_f64(), 0..256),
        1 => (0usize..256).prop_map(|n| vec![0.0f64; n]),
    ]
}

fn lossless_specs() -> [CodecSpec; 4] {
    [
        CodecSpec::Null,
        CodecSpec::ZeroRle,
        CodecSpec::Fpc,
        CodecSpec::ShuffleLzss,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_are_bit_exact_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 0..256),
    ) {
        for spec in lossless_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len()];
            codec.decompress(&bytes, &mut out).unwrap();
            for (a, b) in data.iter().zip(&out) {
                // to_bits distinguishes 0.0 from -0.0 and every subnormal.
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", spec);
            }
        }
    }

    #[test]
    fn adaptive_lossless_is_bit_exact_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 0..256),
    ) {
        let codec = AdaptiveCodec::lossless();
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_codec_is_bit_exact_without_an_allowance(
        data in adversarial_chunk(),
    ) {
        // No allowance, f64 precision: every candidate the probe admits is
        // lossless, so the self-describing payload must round-trip exactly.
        let codec = AutoCodec::lossless();
        let bytes = codec.compress(&data);
        let meta = codec.payload_meta(&bytes).expect("auto payloads self-describe");
        prop_assert!(meta.lossless, "lossless-only codec produced {meta:?}");
        let mut out = vec![1.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_codec_honours_the_stage_allowance_it_was_given(
        data in adversarial_chunk(),
        eb_exp in -14i32..-2,
        adaptive in any::<bool>(),
    ) {
        // The probe may hand the chunk to SZ or demote it to f32 pairs, but
        // only when the backend's declared worst case fits the allowance —
        // so the round-trip error never exceeds it, and any payload whose
        // header claims lossless must still be bit-exact.
        let eb = 10f64.powi(eb_exp);
        let precision = if adaptive { Precision::Adaptive } else { Precision::F64 };
        let codec = AutoCodec::new(Some(eb), precision);
        let bytes = codec.compress(&data);
        let meta = codec.payload_meta(&bytes).expect("auto payloads self-describe");
        let mut out = vec![1.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        if meta.lossless {
            for (a, b) in data.iter().zip(&out) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", meta);
            }
        } else {
            for (a, b) in data.iter().zip(&out) {
                prop_assert!((a - b).abs() <= eb, "{:?}: |{} - {}| > {}", meta, a, b, eb);
            }
        }
        if meta.f32_packed {
            prop_assert!(adaptive, "f32 demotion without Precision::Adaptive");
        }
    }

    #[test]
    fn auto_dynamic_bound_overrides_and_clears(
        data in prop::collection::vec(adversarial_f64(), 1..256),
        eb_exp in -12i32..-2,
    ) {
        // The engine retargets one codec instance per stage through
        // set_dynamic_bound; clearing it must restore lossless behaviour.
        let eb = 10f64.powi(eb_exp);
        let codec = AutoCodec::lossless();
        prop_assert!(codec.set_dynamic_bound(Some(eb)));
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
        prop_assert!(codec.set_dynamic_bound(None));
        let bytes = codec.compress(&data);
        let meta = codec.payload_meta(&bytes).unwrap();
        prop_assert!(meta.lossless);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_complex_round_trip_respects_the_bound(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 0..128),
        eb_exp in -14i32..-2,
    ) {
        let eb = 10f64.powi(eb_exp);
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let codec = AutoCodec::new(Some(eb), Precision::Adaptive);
        let bytes = compress_complex(&codec, &amps);
        let mut out = vec![Complex64::ZERO; amps.len()];
        decompress_complex(&codec, &bytes, &mut out).unwrap();
        for (a, b) in amps.iter().zip(&out) {
            prop_assert!((a.re - b.re).abs() <= eb, "re |{} - {}| > {}", a.re, b.re, eb);
            prop_assert!((a.im - b.im).abs() <= eb, "im |{} - {}| > {}", a.im, b.im, eb);
        }
    }

    #[test]
    fn sz_respects_its_bound_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 1..256),
        eb_exp in -14i32..-2,
    ) {
        let eb = 10f64.powi(eb_exp);
        let codec = SzCodec::new(eb);
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
    }

    #[test]
    fn sz_respects_its_bound_on_bin_edge_straddlers(
        // Values placed a hair on either side of quantization-bin centres
        // k * 2eb: the rounding direction must never cost more than eb.
        bins in prop::collection::vec((-200i32..200, -0.55f64..0.55), 1..256),
        eb_exp in -12i32..-4,
    ) {
        let eb = 10f64.powi(eb_exp);
        let data: Vec<f64> = bins
            .iter()
            .map(|&(k, frac)| (k as f64 + frac) * 2.0 * eb)
            .collect();
        let codec = SzCodec::new(eb);
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
    }

    #[test]
    fn complex_round_trip_interleaves_components_faithfully(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 0..128),
    ) {
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        for spec in lossless_specs() {
            let codec = spec.build();
            let bytes = compress_complex(codec.as_ref(), &amps);
            let mut out = vec![Complex64::ZERO; amps.len()];
            decompress_complex(codec.as_ref(), &bytes, &mut out).unwrap();
            for (a, b) in amps.iter().zip(&out) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "{:?}", spec);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "{:?}", spec);
            }
        }
    }

    #[test]
    fn complex_sz_bounds_both_components(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 1..128),
        eb_exp in -12i32..-4,
    ) {
        let eb = 10f64.powi(eb_exp);
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let codec = SzCodec::new(eb);
        let bytes = compress_complex(&codec, &amps);
        let mut out = vec![Complex64::ZERO; amps.len()];
        decompress_complex(&codec, &bytes, &mut out).unwrap();
        for (a, b) in amps.iter().zip(&out) {
            prop_assert!((a.re - b.re).abs() <= eb, "re |{} - {}| > {}", a.re, b.re, eb);
            prop_assert!((a.im - b.im).abs() <= eb, "im |{} - {}| > {}", a.im, b.im, eb);
        }
    }
}
