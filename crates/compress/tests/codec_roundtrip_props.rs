//! Property tests: codec round-trips on adversarial floating-point inputs —
//! signed zeros, subnormals, magnitude extremes, and values engineered to
//! straddle the SZ quantization-bin edges. Lossless codecs must be bit-exact
//! (including the sign of -0.0); the lossy codec must honour its bound on
//! every component, no matter how hostile the input.

use mq_compress::{compress_complex, decompress_complex, AdaptiveCodec, Codec, CodecSpec, SzCodec};
use mq_num::Complex64;
use proptest::prelude::*;

/// Floats weighted toward the representations codecs get wrong: both zeros,
/// the subnormal range, the smallest/largest normals, and plain values.
fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => -1.0f64..1.0,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::MIN_POSITIVE),
        1 => Just(-f64::MIN_POSITIVE),
        1 => Just(f64::MIN_POSITIVE / 2.0),
        1 => Just(-f64::MIN_POSITIVE / 1024.0),
        1 => Just(f64::from_bits(1)), // smallest positive subnormal
        1 => Just(-f64::from_bits(1)),
        1 => -1e300f64..1e300,
        1 => -1e-300f64..1e-300,
    ]
}

fn lossless_specs() -> [CodecSpec; 4] {
    [
        CodecSpec::Null,
        CodecSpec::ZeroRle,
        CodecSpec::Fpc,
        CodecSpec::ShuffleLzss,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_are_bit_exact_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 0..256),
    ) {
        for spec in lossless_specs() {
            let codec = spec.build();
            let bytes = codec.compress(&data);
            let mut out = vec![0.0f64; data.len()];
            codec.decompress(&bytes, &mut out).unwrap();
            for (a, b) in data.iter().zip(&out) {
                // to_bits distinguishes 0.0 from -0.0 and every subnormal.
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", spec);
            }
        }
    }

    #[test]
    fn adaptive_lossless_is_bit_exact_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 0..256),
    ) {
        let codec = AdaptiveCodec::lossless();
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sz_respects_its_bound_on_adversarial_values(
        data in prop::collection::vec(adversarial_f64(), 1..256),
        eb_exp in -14i32..-2,
    ) {
        let eb = 10f64.powi(eb_exp);
        let codec = SzCodec::new(eb);
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
    }

    #[test]
    fn sz_respects_its_bound_on_bin_edge_straddlers(
        // Values placed a hair on either side of quantization-bin centres
        // k * 2eb: the rounding direction must never cost more than eb.
        bins in prop::collection::vec((-200i32..200, -0.55f64..0.55), 1..256),
        eb_exp in -12i32..-4,
    ) {
        let eb = 10f64.powi(eb_exp);
        let data: Vec<f64> = bins
            .iter()
            .map(|&(k, frac)| (k as f64 + frac) * 2.0 * eb)
            .collect();
        let codec = SzCodec::new(eb);
        let bytes = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        codec.decompress(&bytes, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb, "|{} - {}| > {}", a, b, eb);
        }
    }

    #[test]
    fn complex_round_trip_interleaves_components_faithfully(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 0..128),
    ) {
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        for spec in lossless_specs() {
            let codec = spec.build();
            let bytes = compress_complex(codec.as_ref(), &amps);
            let mut out = vec![Complex64::ZERO; amps.len()];
            decompress_complex(codec.as_ref(), &bytes, &mut out).unwrap();
            for (a, b) in amps.iter().zip(&out) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "{:?}", spec);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "{:?}", spec);
            }
        }
    }

    #[test]
    fn complex_sz_bounds_both_components(
        reim in prop::collection::vec((adversarial_f64(), adversarial_f64()), 1..128),
        eb_exp in -12i32..-4,
    ) {
        let eb = 10f64.powi(eb_exp);
        let amps: Vec<Complex64> = reim.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let codec = SzCodec::new(eb);
        let bytes = compress_complex(&codec, &amps);
        let mut out = vec![Complex64::ZERO; amps.len()];
        decompress_complex(&codec, &bytes, &mut out).unwrap();
        for (a, b) in amps.iter().zip(&out) {
            prop_assert!((a.re - b.re).abs() <= eb, "re |{} - {}| > {}", a.re, b.re, eb);
            prop_assert!((a.im - b.im).abs() <= eb, "im |{} - {}| > {}", a.im, b.im, eb);
        }
    }
}
