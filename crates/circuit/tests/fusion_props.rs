//! Property tests: gate fusion is unitary-preserving. The chunked engines
//! rewrite every stage through these passes before touching any amplitudes,
//! so the bar is strict: on random circuits the fused and unfused unitaries
//! must agree to ~1e-12 (matrix products only reassociate the arithmetic),
//! fusion never increases the gate count, and the `_below(limit)` variants
//! must pass every gate touching a qubit `>= limit` through untouched —
//! that invariant is what keeps a stage's `high_qubits` valid after fusion.

use mq_circuit::fusion::{fuse_1q_runs, fuse_1q_runs_below, fuse_to_2q, fuse_to_2q_below};
use mq_circuit::library;
use mq_circuit::unitary::circuit_unitary;
use mq_circuit::Circuit;
use proptest::prelude::*;

/// Largest elementwise |a - b| between the unitaries of two circuits.
fn max_unitary_err(a: &Circuit, b: &Circuit) -> f64 {
    let ua = circuit_unitary(a);
    let ub = circuit_unitary(b);
    ua.data()
        .iter()
        .zip(ub.data())
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

/// Gates touching any qubit `>= limit` — the ones fusion must not absorb.
fn high_gate_count(c: &Circuit, limit: u32) -> usize {
    c.gates()
        .iter()
        .filter(|g| g.qubits().iter().any(|&q| q >= limit))
        .count()
}

fn random_case() -> impl Strategy<Value = Circuit> {
    (2u32..=5, 0u32..24, any::<u64>())
        .prop_map(|(n, depth, seed)| library::random_circuit(n, depth, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_preserves_the_circuit_unitary(c in random_case()) {
        for fused in [fuse_1q_runs(&c), fuse_to_2q(&c)] {
            let err = max_unitary_err(&c, &fused);
            prop_assert!(err < 1e-12, "err {err} on {}", c.name());
            prop_assert!(fused.len() <= c.len());
        }
    }

    #[test]
    fn limited_fusion_preserves_unitary_and_high_gates(
        c in random_case(),
        limit in 0u32..=5,
    ) {
        for fused in [fuse_1q_runs_below(&c, limit), fuse_to_2q_below(&c, limit)] {
            let err = max_unitary_err(&c, &fused);
            prop_assert!(err < 1e-12, "err {err} on {} limit {limit}", c.name());
            // High gates are barriers: they pass through one-for-one, and
            // nothing the pass *creates* may reach a qubit >= limit.
            prop_assert_eq!(high_gate_count(&fused, limit), high_gate_count(&c, limit));
            prop_assert!(fused.len() <= c.len());
        }
    }

    #[test]
    fn full_limit_matches_unlimited_fusion(c in random_case()) {
        let n = c.n_qubits();
        prop_assert_eq!(fuse_1q_runs_below(&c, n).len(), fuse_1q_runs(&c).len());
        prop_assert_eq!(fuse_to_2q_below(&c, n).len(), fuse_to_2q(&c).len());
    }
}

/// The library suite, through the limited passes at every chunk-width-like
/// cut point — deterministic companion to the random sweep above.
#[test]
fn limited_fusion_preserves_library_suite() {
    for c in library::standard_suite(4) {
        for limit in 0..=4u32 {
            for fused in [fuse_1q_runs_below(&c, limit), fuse_to_2q_below(&c, limit)] {
                let err = max_unitary_err(&c, &fused);
                assert!(err < 1e-12, "err {err} on {} limit {limit}", c.name());
                assert_eq!(high_gate_count(&fused, limit), high_gate_count(&c, limit));
            }
        }
    }
}
