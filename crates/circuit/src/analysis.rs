//! Access-pattern analysis (paper design challenge 3).
//!
//! "Different quantum algorithms' behaviors affect the access pattern on the
//! state vector" — this module quantifies that: how chunk-local a circuit is
//! for a given chunk size, how often qubits are touched, and how much
//! staging the offline partitioner can save versus the per-gate baseline.

use crate::partition::{partition, partition_per_gate, PartitionConfig};
use crate::Circuit;

/// Locality profile of a circuit for a given chunk size.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityProfile {
    /// Circuit name.
    pub name: String,
    /// Register width.
    pub n_qubits: u32,
    /// Chunk size exponent the profile was computed for.
    pub chunk_bits: u32,
    /// Total gate count.
    pub gates: usize,
    /// Gates whose pairing qubits are all below `chunk_bits`.
    pub local_gates: usize,
    /// Gates with no pairing qubits at all (diagonal / control-only).
    pub diagonal_gates: usize,
    /// Number of stages produced by the greedy planner (`max_high = 1`,
    /// falling back to 2 if a gate demands it).
    pub stages: usize,
    /// Chunk visits under the staged plan.
    pub staged_chunk_visits: usize,
    /// Chunk visits under the staged plan with a greedy qubit layout
    /// (remap sweeps included; equals `staged_chunk_visits` when the
    /// planner keeps the fixed layout).
    pub greedy_chunk_visits: usize,
    /// Chunk visits under the per-gate baseline.
    pub per_gate_chunk_visits: usize,
    /// Per-qubit gate-touch counts (index = qubit).
    pub qubit_touches: Vec<usize>,
}

impl LocalityProfile {
    /// Fraction of gates that are chunk-local, in `[0, 1]`.
    pub fn local_fraction(&self) -> f64 {
        if self.gates == 0 {
            return 1.0;
        }
        self.local_gates as f64 / self.gates as f64
    }

    /// Ratio of per-gate to staged chunk visits — the factor by which stage
    /// fusion reduces compression traffic (>= 1).
    pub fn staging_gain(&self) -> f64 {
        if self.staged_chunk_visits == 0 {
            return 1.0;
        }
        self.per_gate_chunk_visits as f64 / self.staged_chunk_visits as f64
    }

    /// Ratio of fixed-layout to greedy-layout chunk visits — the further
    /// factor the remap machinery buys on top of staging (>= 1; exactly 1
    /// when the planner keeps the fixed layout).
    pub fn layout_gain(&self) -> f64 {
        if self.greedy_chunk_visits == 0 {
            return 1.0;
        }
        self.staged_chunk_visits as f64 / self.greedy_chunk_visits as f64
    }
}

/// Computes the locality profile of `circuit` at `chunk_bits`.
pub fn locality_profile(circuit: &Circuit, chunk_bits: u32) -> LocalityProfile {
    let n = circuit.n_qubits();
    let mut local_gates = 0usize;
    let mut diagonal_gates = 0usize;
    let mut qubit_touches = vec![0usize; n as usize];
    let mut needs_two_high = false;

    for g in circuit.gates() {
        for q in g.qubits() {
            qubit_touches[q as usize] += 1;
        }
        let high: Vec<u32> = g
            .pairing_qubits()
            .into_iter()
            .filter(|&q| q >= chunk_bits)
            .collect();
        if high.is_empty() {
            local_gates += 1;
        }
        if high.len() >= 2 {
            needs_two_high = true;
        }
        if g.pairing_qubits().is_empty() {
            diagonal_gates += 1;
        }
    }

    let cfg = PartitionConfig {
        chunk_bits,
        max_high_qubits: if needs_two_high { 2 } else { 1 },
    };
    let plan = partition(circuit, &cfg);
    let greedy = crate::layout::plan_greedy(circuit, &cfg);
    let per_gate = partition_per_gate(circuit, chunk_bits);

    LocalityProfile {
        name: circuit.name().to_string(),
        n_qubits: n,
        chunk_bits,
        gates: circuit.len(),
        local_gates,
        diagonal_gates,
        stages: plan.stages.len(),
        staged_chunk_visits: plan.chunk_visits(),
        greedy_chunk_visits: greedy.chunk_visits(),
        per_gate_chunk_visits: per_gate.chunk_visits(),
        qubit_touches,
    }
}

/// Sweeps chunk sizes, returning one profile per `chunk_bits` value.
pub fn locality_sweep(
    circuit: &Circuit,
    chunk_bits_range: impl Iterator<Item = u32>,
) -> Vec<LocalityProfile> {
    chunk_bits_range
        .map(|cb| locality_profile(circuit, cb))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn ghz_is_mostly_local_with_large_chunks() {
        let c = library::ghz(10);
        let p = locality_profile(&c, 8);
        // Only CX(7,8) and CX(8,9) pair high qubits.
        assert_eq!(p.gates - p.local_gates, 2);
        assert!(p.local_fraction() > 0.7);
    }

    #[test]
    fn everything_local_when_one_chunk() {
        for c in library::standard_suite(6) {
            let p = locality_profile(&c, 6);
            assert_eq!(p.local_gates, p.gates, "{}", c.name());
            assert_eq!(p.stages, 1.min(p.gates), "{}", c.name());
        }
    }

    #[test]
    fn greedy_layout_never_profiles_worse_than_fixed() {
        for c in library::standard_suite(8) {
            let p = locality_profile(&c, 4);
            assert!(
                p.greedy_chunk_visits <= p.staged_chunk_visits,
                "{}: greedy {} > fixed {}",
                c.name(),
                p.greedy_chunk_visits,
                p.staged_chunk_visits
            );
            assert!(p.layout_gain() >= 1.0, "{}", c.name());
        }
        // QFT's absorbed tail swap network makes the gain strict.
        let p = locality_profile(&library::qft(10), 4);
        assert!(p.layout_gain() > 1.0, "qft gain {}", p.layout_gain());
    }

    #[test]
    fn qaoa_cost_layers_are_diagonal() {
        let c = library::qaoa_maxcut(8, &library::ring_graph(8), &[0.3], &[0.5]);
        let p = locality_profile(&c, 2);
        // 8 rzz gates are diagonal.
        assert!(p.diagonal_gates >= 8);
    }

    #[test]
    fn staging_gain_is_at_least_one() {
        for c in library::standard_suite(8) {
            for cb in [2u32, 4, 6] {
                let p = locality_profile(&c, cb);
                assert!(p.staging_gain() >= 1.0, "{} cb={cb}", c.name());
            }
        }
    }

    #[test]
    fn qft_touches_every_qubit() {
        let p = locality_profile(&library::qft(6), 3);
        assert!(p.qubit_touches.iter().all(|&t| t > 0));
    }

    #[test]
    fn local_fraction_monotone_in_chunk_bits() {
        let c = library::qft(8);
        let profiles = locality_sweep(&c, 1..=8);
        for w in profiles.windows(2) {
            assert!(w[1].local_fraction() >= w[0].local_fraction());
        }
    }

    #[test]
    fn empty_circuit_profile() {
        let c = Circuit::new(4);
        let p = locality_profile(&c, 2);
        assert_eq!(p.local_fraction(), 1.0);
        assert_eq!(p.staging_gain(), 1.0);
        assert_eq!(p.stages, 0);
    }
}
