//! Circuit IR and builder.
//!
//! A [`Circuit`] is an ordered gate list over a fixed-width qubit register —
//! deliberately flat (no classical control, no mid-circuit measurement) since
//! that is the model every state-vector backend in the paper's ecosystem
//! (SV-Sim, UniQ, HyQuas) consumes. Builder methods are chainable; every
//! append validates qubit indices eagerly so errors carry the offending gate.

use crate::gate::{Gate, GateError};
use std::fmt;

/// An ordered list of gates over `n_qubits` qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: u32,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: u32) -> Circuit {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named circuit (names show up in experiment reports).
    pub fn named(n_qubits: u32, name: impl Into<String>) -> Circuit {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The circuit's display name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the display name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate after validating it.
    ///
    /// # Panics
    /// Panics on an invalid gate — construction-time bugs should fail fast.
    /// Use [`Circuit::try_push`] for fallible appends (e.g. from parsers).
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.try_push(gate).expect("invalid gate");
        self
    }

    /// Appends a gate, returning the validation error if it is malformed.
    pub fn try_push(&mut self, gate: Gate) -> Result<&mut Self, GateError> {
        gate.validate(self.n_qubits)?;
        self.gates.push(gate);
        Ok(self)
    }

    /// Appends every gate of `other` (which must have the same width).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot extend with a circuit of different width"
        );
        self.gates.extend(other.gates.iter().cloned());
        self
    }

    /// The inverse circuit: gates reversed, each replaced by its adjoint.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::adjoint).collect(),
            name: if self.name.is_empty() {
                String::new()
            } else {
                format!("{}^-1", self.name)
            },
        }
    }

    /// Circuit depth under greedy ASAP layering (each layer holds gates on
    /// disjoint qubits).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits as usize];
        let mut depth = 0usize;
        for g in &self.gates {
            let layer = g
                .qubits()
                .iter()
                .map(|&q| frontier[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for q in g.qubits() {
                frontier[q as usize] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Gate-count histogram by mnemonic.
    pub fn gate_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for g in &self.gates {
            let name = g.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        counts
    }

    /// Count of gates touching two or more qubits.
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.qubits().len() > 1).count()
    }

    // --- chainable builder methods ------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// S gate on `q`.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// S-dagger on `q`.
    pub fn sdg(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Sdg(q))
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.push(Gate::T(q))
    }
    /// T-dagger on `q`.
    pub fn tdg(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Tdg(q))
    }
    /// sqrt(X) on `q`.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Sx(q))
    }
    /// Rx rotation.
    pub fn rx(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }
    /// Ry rotation.
    pub fn ry(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }
    /// Rz rotation.
    pub fn rz(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }
    /// Phase gate.
    pub fn p(&mut self, q: u32, lambda: f64) -> &mut Self {
        self.push(Gate::P(q, lambda))
    }
    /// General 1q rotation U3.
    pub fn u3(&mut self, q: u32, theta: f64, phi: f64, lambda: f64) -> &mut Self {
        self.push(Gate::U3(q, theta, phi, lambda))
    }
    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Cx(control, target))
    }
    /// Controlled-Y.
    pub fn cy(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Cy(control, target))
    }
    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Controlled phase.
    pub fn cp(&mut self, a: u32, b: u32, lambda: f64) -> &mut Self {
        self.push(Gate::Cp(a, b, lambda))
    }
    /// SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
    /// ZZ interaction.
    pub fn rzz(&mut self, a: u32, b: u32, theta: f64) -> &mut Self {
        self.push(Gate::Rzz(a, b, theta))
    }
    /// Toffoli.
    pub fn ccx(&mut self, c0: u32, c1: u32, target: u32) -> &mut Self {
        self.push(Gate::ccx(c0, c1, target))
    }
    /// Multi-controlled X.
    pub fn mcx(&mut self, controls: &[u32], target: u32) -> &mut Self {
        self.push(Gate::mcx(controls, target))
    }
    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: &[u32], target: u32) -> &mut Self {
        self.push(Gate::mcz(controls, target))
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit{}{} [{} qubits, {} gates, depth {}]",
            if self.name.is_empty() { "" } else { " " },
            self.name,
            self.n_qubits,
            self.gates.len(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.5).h(0);
        assert_eq!(c.len(), 5);
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.multi_qubit_gate_count(), 2);
        let counts = c.gate_counts();
        assert_eq!(counts[0], ("cx", 2));
        assert_eq!(counts[1], ("h", 2));
    }

    #[test]
    fn push_panics_on_out_of_range() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::H(5)).is_err());
        assert!(std::panic::catch_unwind(move || {
            let mut c = Circuit::new(2);
            c.h(5);
        })
        .is_err());
    }

    #[test]
    fn depth_of_parallel_vs_serial() {
        let mut parallel = Circuit::new(4);
        parallel.h(0).h(1).h(2).h(3);
        assert_eq!(parallel.depth(), 1);

        let mut serial = Circuit::new(2);
        serial.h(0).h(0).h(0);
        assert_eq!(serial.depth(), 3);

        let mut mixed = Circuit::new(3);
        mixed.h(0).h(1).cx(0, 1).h(2);
        assert_eq!(mixed.depth(), 2);

        assert_eq!(Circuit::new(5).depth(), 0);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.gates()[0], Gate::Cx(0, 1));
        assert_eq!(inv.gates()[1], Gate::Sdg(1));
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn inverse_of_inverse_is_identity_on_gates() {
        let mut c = Circuit::named(3, "test");
        c.h(0).t(1).cp(0, 2, 0.3).swap(1, 2).rx(0, 0.7);
        let back = c.inverse().inverse();
        assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.gates()[1], Gate::Cx(0, 1));
    }

    #[test]
    #[should_panic]
    fn extend_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend(&b);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::named(2, "bell");
        c.h(0).cx(0, 1);
        let s = format!("{c}");
        assert!(s.contains("bell"));
        assert!(s.contains("h q[0]"));
        assert!(s.contains("cx q[0],q[1]"));
        assert!(s.contains("2 gates"));
    }
}
