//! Gate fusion.
//!
//! Fusion trades gate count for matrix generality: a run of single-qubit
//! gates on one qubit collapses into one `U1q`; single-qubit gates adjacent
//! to a two-qubit gate (and consecutive two-qubit gates on the same pair)
//! collapse into one `U2q`. For MEMQSIM this matters doubly — fewer gates
//! means fewer passes over the compressed chunks, which is the paper's
//! answer to its design challenge (2).

use crate::gate::Gate;
use crate::matrix::{Mat2, Mat4};
use crate::Circuit;

/// Fuses maximal runs of single-qubit gates per qubit into `U1q` gates.
/// Multi-qubit gates act as barriers on the qubits they touch. Relative
/// order of the surviving gates is preserved.
pub fn fuse_1q_runs(circuit: &Circuit) -> Circuit {
    fuse_1q_runs_below(circuit, u32::MAX)
}

/// [`fuse_1q_runs`] restricted to qubits below `limit`: any gate touching a
/// qubit `>= limit` passes through unfused, acting as a barrier on the
/// qubits it touches. The chunked engines fuse each stage with
/// `limit = chunk_bits`, so fused gates never absorb a cross-chunk pairing
/// qubit and the stage's `high_qubits` stay valid.
pub fn fuse_1q_runs_below(circuit: &Circuit, limit: u32) -> Circuit {
    let n = circuit.n_qubits();
    let mut out = Circuit::named(n, format!("{}_fused1q", circuit.name()));
    // Pending accumulated 1q matrix per qubit.
    let mut pending: Vec<Option<Mat2>> = vec![None; n as usize];

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Mat2>>, q: u32| {
        if let Some(m) = pending[q as usize].take() {
            out.push(Gate::U1q(q, m));
        }
    };

    for g in circuit.gates() {
        if g.qubits().iter().any(|&q| q >= limit) {
            for q in g.qubits() {
                flush(&mut out, &mut pending, q);
            }
            out.push(g.clone());
        } else if let Some(m) = g.mat2() {
            let q = g.qubits()[0];
            let acc = match pending[q as usize] {
                // Later gate multiplies from the left.
                Some(prev) => m.mul(&prev),
                None => m,
            };
            pending[q as usize] = Some(acc);
        } else {
            for q in g.qubits() {
                flush(&mut out, &mut pending, q);
            }
            out.push(g.clone());
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Fuses toward two-qubit blocks: pending single-qubit gates are absorbed
/// into the next two-qubit gate touching their qubit, and consecutive
/// two-qubit gates on the same (unordered) pair merge. `Mcu` gates pass
/// through as barriers. The result contains only `U2q`, `U1q` (for
/// leftovers) and `Mcu` gates.
pub fn fuse_to_2q(circuit: &Circuit) -> Circuit {
    fuse_to_2q_below(circuit, u32::MAX)
}

/// [`fuse_to_2q`] restricted to qubits below `limit`: any gate touching a
/// qubit `>= limit` passes through unfused, acting as a barrier on the
/// qubits it touches (like `Mcu`). See [`fuse_1q_runs_below`] for why the
/// chunked engines need the restriction.
pub fn fuse_to_2q_below(circuit: &Circuit, limit: u32) -> Circuit {
    let n = circuit.n_qubits();
    let mut out = Circuit::named(n, format!("{}_fused2q", circuit.name()));
    let mut pending_1q: Vec<Option<Mat2>> = vec![None; n as usize];
    // An open 2q block: (qubit_a, qubit_b, accumulated matrix in (a,b) basis).
    let mut open: Option<(u32, u32, Mat4)> = None;

    let flush_1q = |out: &mut Circuit, pending: &mut Vec<Option<Mat2>>, q: u32| {
        if let Some(m) = pending[q as usize].take() {
            out.push(Gate::U1q(q, m));
        }
    };

    fn close_open(out: &mut Circuit, open: &mut Option<(u32, u32, Mat4)>) {
        if let Some((a, b, m)) = open.take() {
            out.push(Gate::U2q(a, b, m));
        }
    }

    for g in circuit.gates() {
        if g.qubits().iter().any(|&q| q >= limit) {
            // Same barrier handling as `Mcu` below: close an overlapping
            // open block, flush pending 1q on the touched qubits, pass
            // the gate through unfused.
            if let Some((a, b, _)) = open {
                let qs = g.qubits();
                if qs.contains(&a) || qs.contains(&b) {
                    close_open(&mut out, &mut open);
                }
            }
            for q in g.qubits() {
                flush_1q(&mut out, &mut pending_1q, q);
            }
            out.push(g.clone());
            continue;
        }
        if let Some(m) = g.mat2() {
            let q = g.qubits()[0];
            // Absorb into the open block if it covers q.
            if let Some((a, b, acc)) = open.as_mut() {
                if *a == q || *b == q {
                    let lifted = if *a == q {
                        Mat4::kron(&Mat2::IDENTITY, &m)
                    } else {
                        Mat4::kron(&m, &Mat2::IDENTITY)
                    };
                    *acc = lifted.mul(acc);
                    continue;
                }
            }
            let acc = match pending_1q[q as usize] {
                Some(prev) => m.mul(&prev),
                None => m,
            };
            pending_1q[q as usize] = Some(acc);
        } else if let Some(m4) = g.mat4() {
            let qs = g.qubits();
            let (qa, qb) = (qs[0], qs[1]);
            // Same unordered pair as the open block? Merge.
            if let Some((a, b, acc)) = open.as_mut() {
                if (*a == qa && *b == qb) || (*a == qb && *b == qa) {
                    let aligned = if *a == qa { m4 } else { m4.swap_qubits() };
                    *acc = aligned.mul(acc);
                    continue;
                }
            }
            // Different pair: close the previous block, open a new one
            // seeded with any pending 1q gates on its qubits.
            close_open(&mut out, &mut open);
            let mut acc = m4;
            if let Some(p) = pending_1q[qa as usize].take() {
                acc = acc.mul(&Mat4::kron(&Mat2::IDENTITY, &p));
            }
            if let Some(p) = pending_1q[qb as usize].take() {
                acc = acc.mul(&Mat4::kron(&p, &Mat2::IDENTITY));
            }
            open = Some((qa, qb, acc));
        } else {
            // Mcu: barrier on everything it touches.
            if let Some((a, b, _)) = open {
                let qs = g.qubits();
                if qs.contains(&a) || qs.contains(&b) {
                    close_open(&mut out, &mut open);
                }
            }
            for q in g.qubits() {
                flush_1q(&mut out, &mut pending_1q, q);
            }
            out.push(g.clone());
        }
    }
    close_open(&mut out, &mut open);
    for q in 0..n {
        flush_1q(&mut out, &mut pending_1q, q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::unitary::circuit_unitary;

    fn assert_equivalent(a: &Circuit, b: &Circuit, tol: f64) {
        let ua = circuit_unitary(a);
        let ub = circuit_unitary(b);
        // Compare up to nothing — fusion preserves the exact unitary
        // (matrix products, no global-phase games).
        for (x, y) in ua.data().iter().zip(ub.data()) {
            assert!(x.approx_eq(*y, tol), "unitaries differ: {x} vs {y}");
        }
    }

    #[test]
    fn fuse_1q_collapses_runs() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).s(0).x(1).h(1);
        let f = fuse_1q_runs(&c);
        assert_eq!(f.len(), 2); // one U1q per qubit
        assert_equivalent(&c, &f, 1e-10);
    }

    #[test]
    fn fuse_1q_respects_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let f = fuse_1q_runs(&c);
        // H cannot cross the CX: U1q, CX, U1q.
        assert_eq!(f.len(), 3);
        assert_equivalent(&c, &f, 1e-10);
    }

    #[test]
    fn fuse_1q_preserves_library_circuits() {
        for c in library::standard_suite(4) {
            let f = fuse_1q_runs(&c);
            assert!(f.len() <= c.len(), "{}", c.name());
            assert_equivalent(&c, &f, 1e-9);
        }
    }

    #[test]
    fn fuse_2q_merges_same_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cz(1, 0).h(1).cx(0, 1);
        let f = fuse_to_2q(&c);
        assert_eq!(f.len(), 1, "whole circuit is one 2q block: {f}");
        assert_equivalent(&c, &f, 1e-10);
    }

    #[test]
    fn fuse_2q_reversed_pair_alignment() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1); // SWAP built from CXs
        let f = fuse_to_2q(&c);
        assert_eq!(f.len(), 1);
        assert_equivalent(&c, &f, 1e-10);
    }

    #[test]
    fn fuse_2q_mcu_is_barrier() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2).cx(0, 1);
        let f = fuse_to_2q(&c);
        assert_eq!(f.len(), 3);
        assert_equivalent(&c, &f, 1e-10);
    }

    #[test]
    fn fuse_2q_preserves_library_circuits() {
        for c in library::standard_suite(4) {
            let f = fuse_to_2q(&c);
            assert!(f.len() <= c.len(), "{}", c.name());
            assert_equivalent(&c, &f, 1e-9);
        }
        // And a deeper random one.
        let c = library::random_circuit(5, 10, 3);
        let f = fuse_to_2q(&c);
        assert!(f.len() < c.len());
        assert_equivalent(&c, &f, 1e-9);
    }

    #[test]
    fn fusion_of_empty_circuit() {
        let c = Circuit::new(3);
        assert!(fuse_1q_runs(&c).is_empty());
        assert!(fuse_to_2q(&c).is_empty());
    }

    #[test]
    fn fuse_1q_below_limit_leaves_high_gates_alone() {
        let mut c = Circuit::new(3);
        c.h(2).t(2).h(0).t(0);
        let f = fuse_1q_runs_below(&c, 2);
        // The qubit-2 run passes through unfused; the qubit-0 run collapses.
        assert_eq!(f.len(), 3);
        assert_equivalent(&c, &f, 1e-12);
    }

    #[test]
    fn fuse_1q_below_high_gate_is_barrier_on_low_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2).h(0);
        let f = fuse_1q_runs_below(&c, 2);
        // CX(0,2) touches qubit 2 >= limit: passes through and splits the
        // H(0) run, so nothing fuses.
        assert_eq!(f.len(), 3);
        assert_equivalent(&c, &f, 1e-12);
    }

    #[test]
    fn fuse_2q_below_closes_block_overlapped_by_high_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(2, 0).cx(0, 1);
        let f = fuse_to_2q_below(&c, 2);
        // CX(2,0) is a pass-through barrier overlapping the open (0,1)
        // block, so the two CX(0,1) cannot merge across it.
        assert_eq!(f.len(), 3);
        assert_equivalent(&c, &f, 1e-12);
    }

    #[test]
    fn fuse_2q_below_zero_limit_is_identity_rewrite() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cz(1, 0);
        let f = fuse_to_2q_below(&c, 0);
        assert_eq!(f.len(), c.len());
        assert_equivalent(&c, &f, 1e-12);
    }

    #[test]
    fn fuse_2q_absorbs_dangling_1q_before_block() {
        let mut c = Circuit::new(3);
        c.h(0).h(2).cx(0, 1);
        let f = fuse_to_2q(&c);
        // H(0) absorbed into the block; H(2) survives as U1q.
        assert_eq!(f.len(), 2);
        assert_equivalent(&c, &f, 1e-10);
    }
}
