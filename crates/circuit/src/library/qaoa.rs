//! QAOA for MaxCut.
//!
//! Cost layers are pure `Rzz` gates — *diagonal*, hence chunk-local
//! regardless of which qubits they touch. QAOA is therefore the paper's
//! "friendly" non-trivial access pattern: only the mixer layer pairs
//! amplitudes.

use crate::Circuit;

/// An undirected edge list over qubits `0..n`.
pub type Graph = Vec<(u32, u32)>;

/// The n-cycle graph (ring).
pub fn ring_graph(n: u32) -> Graph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// A seeded random graph with `m` distinct edges over `n` vertices.
pub fn random_graph(n: u32, m: usize, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n >= 2);
    let max_edges = (n as usize * (n as usize - 1)) / 2;
    assert!(m <= max_edges, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Graph = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let e = (a.min(b), a.max(b));
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    edges.sort_unstable();
    edges
}

/// A p-layer QAOA MaxCut circuit: `H^n` then alternating cost
/// (`Rzz(2*gamma)` per edge) and mixer (`Rx(2*beta)` per qubit) layers.
///
/// `gammas` and `betas` must have equal length (the layer count `p`).
pub fn qaoa_maxcut(n: u32, edges: &Graph, gammas: &[f64], betas: &[f64]) -> Circuit {
    assert_eq!(gammas.len(), betas.len(), "layer count mismatch");
    let mut c = Circuit::named(n, format!("qaoa{n}_p{}", gammas.len()));
    for q in 0..n {
        c.h(q);
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        for &(a, b) in edges {
            c.rzz(a, b, 2.0 * gamma);
        }
        for q in 0..n {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// Classical MaxCut value of a bitstring assignment against `edges`.
pub fn cut_value(assignment: u64, edges: &Graph) -> usize {
    edges
        .iter()
        .filter(|(a, b)| ((assignment >> a) ^ (assignment >> b)) & 1 == 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn ring_graph_shape() {
        let g = ring_graph(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], (0, 1));
        assert_eq!(g[4], (4, 0));
    }

    #[test]
    fn random_graph_is_deterministic_and_simple() {
        let a = random_graph(8, 12, 3);
        let b = random_graph(8, 12, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for &(x, y) in &a {
            assert!(x < y, "normalized edge order");
        }
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "no duplicate edges");
    }

    #[test]
    fn qaoa_gate_counts() {
        let edges = ring_graph(6);
        let c = qaoa_maxcut(6, &edges, &[0.1, 0.2], &[0.3, 0.4]);
        // 6 H + 2 layers * (6 rzz + 6 rx)
        assert_eq!(c.len(), 6 + 2 * (6 + 6));
        let rzz = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rzz(..)))
            .count();
        assert_eq!(rzz, 12);
    }

    #[test]
    fn cost_layer_is_fully_diagonal() {
        let edges = ring_graph(4);
        let c = qaoa_maxcut(4, &edges, &[0.5], &[0.5]);
        for g in c.gates() {
            if matches!(g, Gate::Rzz(..)) {
                assert!(g.is_diagonal());
                assert!(g.pairing_qubits().is_empty());
            }
        }
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let edges = ring_graph(4); // 0-1-2-3-0
        assert_eq!(cut_value(0b0101, &edges), 4); // perfect alternating cut
        assert_eq!(cut_value(0b0000, &edges), 0);
        assert_eq!(cut_value(0b0001, &edges), 2);
    }
}
