//! Hardware-efficient VQE ansatz.
//!
//! Layers of parameterized Ry/Rz rotations with a linear CX entangling
//! ladder — the standard NISQ variational circuit shape. Parameters are
//! drawn from a seeded PRNG so experiments are reproducible.

use crate::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// An `n`-qubit, `layers`-layer hardware-efficient ansatz with random
/// parameters drawn from `seed`.
pub fn hardware_efficient_ansatz(n: u32, layers: u32, seed: u64) -> Circuit {
    assert!(n >= 2, "ansatz needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("vqe{n}_l{layers}"));
    for _ in 0..layers {
        for q in 0..n {
            c.ry(q, rng.gen_range(-PI..PI));
            c.rz(q, rng.gen_range(-PI..PI));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    // Final rotation layer.
    for q in 0..n {
        c.ry(q, rng.gen_range(-PI..PI));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn gate_count_formula() {
        let n = 5u32;
        let layers = 3u32;
        let c = hardware_efficient_ansatz(n, layers, 1);
        let expect = layers as usize * (2 * n as usize + (n as usize - 1)) + n as usize;
        assert_eq!(c.len(), expect);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = hardware_efficient_ansatz(4, 2, 99);
        let b = hardware_efficient_ansatz(4, 2, 99);
        assert_eq!(a.gates(), b.gates());
        let c = hardware_efficient_ansatz(4, 2, 100);
        assert_ne!(a.gates(), c.gates());
    }

    #[test]
    fn entangler_is_linear_ladder() {
        let c = hardware_efficient_ansatz(4, 1, 0);
        let cxs: Vec<_> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cx(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect();
        assert_eq!(cxs, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn zero_layers_is_single_rotation_layer() {
        let c = hardware_efficient_ansatz(3, 0, 5);
        assert_eq!(c.len(), 3);
    }
}
