//! Reversible arithmetic: the Cuccaro ripple-carry adder.
//!
//! Pure Toffoli/CNOT circuitry on computational-basis states — the classic
//! "classical logic embedded in a quantum register" workload whose state
//! vector stays maximally sparse (a single nonzero amplitude), i.e. the
//! best-possible case for the compressed store.

use crate::Circuit;

/// Width of the adder register for `n`-bit operands: `2n + 2` qubits laid
/// out as `[cin, b0, a0, b1, a1, ..., b_{n-1}, a_{n-1}, cout]`.
pub fn adder_width(n: u32) -> u32 {
    2 * n + 2
}

/// Qubit index of operand bit `a_i`.
pub fn a_bit(i: u32) -> u32 {
    2 + 2 * i
}

/// Qubit index of operand bit `b_i`.
pub fn b_bit(i: u32) -> u32 {
    1 + 2 * i
}

/// The Cuccaro ripple-carry adder on `n`-bit operands: computes
/// `b <- a + b (mod 2^n)` with the carry-out in the last qubit. The register
/// layout is given by [`a_bit`]/[`b_bit`]; qubit 0 is the carry-in.
pub fn ripple_carry_adder(n: u32) -> Circuit {
    assert!(n >= 1, "adder needs at least 1-bit operands");
    let width = adder_width(n);
    let cout = width - 1;
    let mut c = Circuit::named(width, format!("adder{n}"));

    let maj = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    // Forward MAJ ladder.
    maj(&mut c, 0, b_bit(0), a_bit(0));
    for i in 1..n {
        maj(&mut c, a_bit(i - 1), b_bit(i), a_bit(i));
    }
    // Carry out.
    c.cx(a_bit(n - 1), cout);
    // Backward UMA ladder.
    for i in (1..n).rev() {
        uma(&mut c, a_bit(i - 1), b_bit(i), a_bit(i));
    }
    uma(&mut c, 0, b_bit(0), a_bit(0));
    c
}

/// Builds a basis-state preparation prefix that loads operands `a` and `b`
/// into a fresh adder register (X gates on the appropriate qubits).
pub fn load_operands(n: u32, a: u64, b: u64) -> Circuit {
    assert!(
        n >= 64 || (a < (1u64 << n) && b < (1u64 << n)),
        "operand overflow"
    );
    let mut c = Circuit::named(adder_width(n), format!("load_a{a}_b{b}"));
    for i in 0..n {
        if (a >> i) & 1 == 1 {
            c.x(a_bit(i));
        }
        if (b >> i) & 1 == 1 {
            c.x(b_bit(i));
        }
    }
    c
}

/// Decodes the sum (including carry) from a measured basis state of the
/// adder register.
pub fn decode_sum(n: u32, basis_state: u64) -> u64 {
    let mut sum = 0u64;
    for i in 0..n {
        sum |= ((basis_state >> b_bit(i)) & 1) << i;
    }
    let cout = (basis_state >> (adder_width(n) - 1)) & 1;
    sum | (cout << n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn widths_and_layout() {
        assert_eq!(adder_width(4), 10);
        assert_eq!(a_bit(0), 2);
        assert_eq!(b_bit(0), 1);
        assert_eq!(a_bit(3), 8);
        assert_eq!(b_bit(3), 7);
    }

    #[test]
    fn gate_count_is_linear() {
        // n MAJ + n UMA (3 gates each) + 1 carry CX.
        for n in 1..=6u32 {
            let c = ripple_carry_adder(n);
            assert_eq!(c.len(), 6 * n as usize + 1, "n={n}");
        }
    }

    #[test]
    fn adder_uses_only_cx_and_ccx() {
        let c = ripple_carry_adder(4);
        for g in c.gates() {
            assert!(
                matches!(g, Gate::Cx(..) | Gate::Mcu { .. }),
                "unexpected gate {g}"
            );
        }
    }

    #[test]
    fn load_operands_sets_bits() {
        let c = load_operands(3, 0b101, 0b011);
        let xs: Vec<u32> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::X(q) => Some(*q),
                _ => None,
            })
            .collect();
        // a bits 0 and 2 -> qubits 2, 6; b bits 0 and 1 -> qubits 1, 3.
        assert_eq!(xs.len(), 4);
        assert!(xs.contains(&2) && xs.contains(&6) && xs.contains(&1) && xs.contains(&3));
    }

    #[test]
    fn decode_reads_b_register_and_carry() {
        let n = 3;
        // basis state with b = 0b110 (qubits 1,3,5 = 0,1,1) and cout set.
        let mut state = 0u64;
        state |= 1 << b_bit(1);
        state |= 1 << b_bit(2);
        state |= 1 << (adder_width(n) - 1);
        assert_eq!(decode_sum(n, state), 0b110 | (1 << 3));
    }
}
