//! Random circuit families.
//!
//! * [`random_circuit`] — unstructured U3 + CX soup; the adversarial case
//!   for compression (amplitudes converge to Porter–Thomas noise).
//! * [`supremacy_like`] — Google-style layered circuits: random
//!   single-qubit gates from {sqrt(X), T, H} plus a shifting pattern of CZ
//!   pairs on a line.
//! * [`quantum_volume`] — IBM QV model circuits: layers of Haar-random
//!   SU(4) blocks on a random qubit pairing.

use crate::gate::Gate;
use crate::matrix::{Mat4, MatN};
use crate::Circuit;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A fully random circuit: `depth` layers, each a random U3 on every qubit
/// followed by `n/2` random disjoint CX pairs.
pub fn random_circuit(n: u32, depth: u32, seed: u64) -> Circuit {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("random{n}_d{depth}"));
    let mut qubits: Vec<u32> = (0..n).collect();
    for _ in 0..depth {
        for q in 0..n {
            c.u3(
                q,
                rng.gen_range(0.0..PI),
                rng.gen_range(-PI..PI),
                rng.gen_range(-PI..PI),
            );
        }
        qubits.shuffle(&mut rng);
        for pair in qubits.chunks_exact(2) {
            c.cx(pair[0], pair[1]);
        }
    }
    c
}

/// A supremacy-style layered circuit on a 1-D line: per layer, a random
/// single-qubit gate from {sqrt(X), T, H} on each qubit, then CZ on pairs
/// `(i, i+1)` with the starting offset alternating by layer.
pub fn supremacy_like(n: u32, layers: u32, seed: u64) -> Circuit {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("supremacy{n}_l{layers}"));
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..layers {
        for q in 0..n {
            match rng.gen_range(0..3u8) {
                0 => c.sx(q),
                1 => c.t(q),
                _ => c.h(q),
            };
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            c.cz(q, q + 1);
            q += 2;
        }
    }
    c
}

/// An IBM-style quantum-volume model circuit: `depth` layers, each applying
/// a Haar-random SU(4) (as a fused `U2q`) to a random disjoint pairing of
/// the qubits.
pub fn quantum_volume(n: u32, depth: u32, seed: u64) -> Circuit {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("qv{n}_d{depth}"));
    let mut qubits: Vec<u32> = (0..n).collect();
    for _ in 0..depth {
        qubits.shuffle(&mut rng);
        for pair in qubits.chunks_exact(2) {
            let u = MatN::random_unitary(2, &mut rng);
            let m = Mat4(
                u.data()
                    .to_vec()
                    .try_into()
                    .expect("2-qubit unitary has 16 entries"),
            );
            c.push(Gate::U2q(pair[0], pair[1], m));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circuit_is_seed_deterministic() {
        assert_eq!(
            random_circuit(5, 4, 1).gates(),
            random_circuit(5, 4, 1).gates()
        );
        assert_ne!(
            random_circuit(5, 4, 1).gates(),
            random_circuit(5, 4, 2).gates()
        );
    }

    #[test]
    fn random_circuit_layer_structure() {
        let c = random_circuit(4, 3, 0);
        // per layer: 4 u3 + 2 cx
        assert_eq!(c.len(), 3 * (4 + 2));
    }

    #[test]
    fn supremacy_cz_pattern_alternates() {
        let c = supremacy_like(5, 2, 0);
        let czs: Vec<(u32, u32)> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cz(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect();
        // layer 0: (0,1),(2,3); layer 1: (1,2),(3,4)
        assert_eq!(czs, vec![(0, 1), (2, 3), (1, 2), (3, 4)]);
    }

    #[test]
    fn quantum_volume_blocks_are_unitary() {
        let c = quantum_volume(4, 2, 5);
        assert_eq!(c.len(), 4); // 2 pairs * 2 layers
        for g in c.gates() {
            match g {
                Gate::U2q(_, _, m) => assert!(m.is_unitary(1e-9)),
                _ => panic!("expected U2q"),
            }
        }
    }

    #[test]
    fn odd_qubit_counts_leave_one_idle() {
        let c = quantum_volume(5, 1, 3);
        assert_eq!(c.len(), 2);
    }
}
