//! Bernstein–Vazirani.
//!
//! Recovers a hidden bitstring with one oracle query. The oracle is a fan of
//! CX gates from each set bit of the secret into the ancilla — an access
//! pattern with a single "hot" qubit, interesting for chunk planning.

use crate::Circuit;

/// Bernstein–Vazirani over `n` data qubits (total width `n + 1`; qubit `n`
/// is the ancilla). After the circuit, measuring qubits `0..n` yields
/// `secret` with certainty.
///
/// # Panics
/// Panics if `secret` has bits at or above position `n`.
pub fn bernstein_vazirani(n: u32, secret: u64) -> Circuit {
    assert!(n >= 1);
    assert!(
        n >= 64 || secret < (1u64 << n),
        "secret has bits outside the data register"
    );
    let mut c = Circuit::named(n + 1, format!("bv{n}_s{secret}"));
    // Ancilla in |->.
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = secret . x (mod 2).
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn oracle_has_one_cx_per_set_bit() {
        let c = bernstein_vazirani(6, 0b101101);
        let cx = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cx(..)))
            .count();
        assert_eq!(cx, 4);
    }

    #[test]
    fn zero_secret_has_no_oracle() {
        let c = bernstein_vazirani(4, 0);
        assert!(c.gates().iter().all(|g| !matches!(g, Gate::Cx(..))));
        // 1 X + (n+1) H + n H = 1 + 5 + 4
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn width_is_n_plus_one() {
        assert_eq!(bernstein_vazirani(7, 1).n_qubits(), 8);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_secret() {
        let _ = bernstein_vazirani(3, 0b1000);
    }
}
