//! Entangled-state preparation: Bell pairs, GHZ and W states.
//!
//! GHZ is the paper-friendly "best case" for compression: its state vector
//! has exactly two nonzero amplitudes, so an error-bounded compressor
//! achieves enormous ratios.

use crate::gate::{mat2_ry, Gate};
use crate::Circuit;

/// A Bell pair (|00> + |11>)/sqrt(2) on qubits `(a, b)` of an `n`-qubit
/// register.
pub fn bell_pair(n: u32, a: u32, b: u32) -> Circuit {
    let mut c = Circuit::named(n, format!("bell_{a}_{b}"));
    c.h(a).cx(a, b);
    c
}

/// The n-qubit GHZ state (|0...0> + |1...1>)/sqrt(2).
pub fn ghz(n: u32) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::named(n, format!("ghz{n}"));
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// The n-qubit W state: equal superposition of all single-excitation basis
/// states, `sum_i |0..1_i..0> / sqrt(n)`.
///
/// Uses the standard cascade of controlled-Ry "fan-out" blocks: after
/// placing the excitation on qubit 0, each block moves amplitude
/// `sqrt((n-i-1)/(n-i))` one qubit down the line.
pub fn w_state(n: u32) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::named(n, format!("w{n}"));
    c.x(0);
    for i in 0..n.saturating_sub(1) {
        let k = (n - i) as f64;
        // cos(theta/2) = sqrt(1/k): the amplitude that *stays* on qubit i.
        let theta = 2.0 * (1.0 / k.sqrt()).acos();
        // Controlled-Ry(theta), control i, target i+1.
        c.push(Gate::Mcu {
            controls: vec![i],
            target: i + 1,
            u: mat2_ry(theta),
        });
        c.cx(i + 1, i);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_structure() {
        let c = ghz(5);
        assert_eq!(c.len(), 5); // 1 H + 4 CX
        assert_eq!(c.gates()[0], Gate::H(0));
        assert_eq!(c.gates()[4], Gate::Cx(3, 4));
        assert_eq!(c.depth(), 5);
    }

    #[test]
    fn ghz_single_qubit() {
        let c = ghz(1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn w_state_gate_count() {
        // 1 X + (n-1) * (cry + cx)
        for n in 1..=6u32 {
            let c = w_state(n);
            assert_eq!(c.len(), 1 + 2 * (n as usize - 1), "n={n}");
        }
    }

    #[test]
    fn w_state_angles_are_finite() {
        let c = w_state(8);
        for g in c.gates() {
            if let Gate::Mcu { u, .. } = g {
                assert!(u.0.iter().all(|z| z.is_finite()));
            }
        }
    }

    #[test]
    fn bell_pair_on_arbitrary_qubits() {
        let c = bell_pair(4, 1, 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[1], Gate::Cx(1, 3));
    }
}
