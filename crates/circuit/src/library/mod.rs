//! Workload generators.
//!
//! Every circuit the paper's ecosystem evaluates on, constructed
//! programmatically and deterministically (seeded where randomized). These
//! are the workloads behind experiments C3 (qubit extension), A2 (access
//! patterns), A3/A4 (codec and fidelity sweeps).

pub mod arithmetic;
pub mod bv;
pub mod entangle;
pub mod grover;
pub mod qaoa;
pub mod qft;
pub mod qpe;
pub mod random;
pub mod vqe;

pub use arithmetic::ripple_carry_adder;
pub use bv::bernstein_vazirani;
pub use entangle::{bell_pair, ghz, w_state};
pub use grover::{grover, optimal_grover_iterations};
pub use qaoa::{qaoa_maxcut, ring_graph};
pub use qft::{iqft, qft, qft_no_swap};
pub use qpe::phase_estimation;
pub use random::{quantum_volume, random_circuit, supremacy_like};
pub use vqe::hardware_efficient_ansatz;

use crate::Circuit;

/// The standard benchmark suite used by the experiment harness: a named
/// selection spanning the locality spectrum (GHZ = mostly local, QFT =
/// all-to-all, QAOA = graph-structured, random = adversarial).
pub fn standard_suite(n_qubits: u32) -> Vec<Circuit> {
    assert!(n_qubits >= 3, "suite needs at least 3 qubits");
    vec![
        ghz(n_qubits),
        qft(n_qubits),
        grover(n_qubits, 1, optimal_grover_iterations(n_qubits).min(4)),
        qaoa_maxcut(n_qubits, &ring_graph(n_qubits), &[0.4, 0.7], &[0.3, 0.6]),
        hardware_efficient_ansatz(n_qubits, 2, 7),
        random_circuit(n_qubits, 20, 11),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_well_formed() {
        let suite = standard_suite(6);
        assert_eq!(suite.len(), 6);
        for c in &suite {
            assert_eq!(c.n_qubits(), 6);
            assert!(!c.is_empty(), "{} is empty", c.name());
            assert!(!c.name().is_empty());
        }
    }
}
