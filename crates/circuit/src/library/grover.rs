//! Grover search.
//!
//! Oracle and diffusion are built from natively multi-controlled Z gates
//! (`Gate::mcz`), the same primitive SV-Sim exposes — no ancilla qubits.

use crate::gate::Gate;
use crate::Circuit;
use std::f64::consts::PI;

/// Grover search over `n` qubits for the computational-basis state `marked`,
/// running `iterations` Grover iterations.
///
/// # Panics
/// Panics if `n < 2` or `marked >= 2^n`.
pub fn grover(n: u32, marked: u64, iterations: usize) -> Circuit {
    assert!(n >= 2, "grover needs at least 2 qubits");
    assert!(marked < (1u64 << n), "marked state out of range");
    let mut c = Circuit::named(n, format!("grover{n}_m{marked}_i{iterations}"));
    for q in 0..n {
        c.h(q);
    }
    let controls: Vec<u32> = (0..n - 1).collect();
    for _ in 0..iterations {
        // Oracle: phase-flip |marked>.
        flip_zeros(&mut c, n, marked);
        c.push(Gate::mcz(&controls, n - 1));
        flip_zeros(&mut c, n, marked);
        // Diffusion: reflect about the uniform superposition.
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.x(q);
        }
        c.push(Gate::mcz(&controls, n - 1));
        for q in 0..n {
            c.x(q);
        }
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// X-conjugation bringing |marked> to |1...1>.
fn flip_zeros(c: &mut Circuit, n: u32, marked: u64) {
    for q in 0..n {
        if (marked >> q) & 1 == 0 {
            c.x(q);
        }
    }
}

/// The iteration count maximizing success probability:
/// `floor(pi/4 * sqrt(2^n))`.
pub fn optimal_grover_iterations(n: u32) -> usize {
    ((PI / 4.0) * ((1u64 << n) as f64).sqrt()).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_and_counts() {
        let n = 4;
        let c = grover(n, 0b1010, 2);
        assert_eq!(c.n_qubits(), n);
        // Initial H layer.
        assert_eq!(c.gates()[0], Gate::H(0));
        // Two MCZ per iteration (oracle + diffusion).
        let mcz_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Mcu { .. }))
            .count();
        assert_eq!(mcz_count, 4);
    }

    #[test]
    fn marked_all_ones_needs_no_oracle_flips() {
        let c = grover(3, 0b111, 1);
        // X gates appear only in the diffusion (6 = two layers of 3).
        let x_count = c.gates().iter().filter(|g| matches!(g, Gate::X(_))).count();
        assert_eq!(x_count, 6);
    }

    #[test]
    fn marked_zero_flips_all_qubits_twice() {
        let c = grover(3, 0, 1);
        let x_count = c.gates().iter().filter(|g| matches!(g, Gate::X(_))).count();
        assert_eq!(x_count, 6 + 6); // oracle conjugation + diffusion
    }

    #[test]
    fn optimal_iterations_grows_like_sqrt() {
        assert_eq!(optimal_grover_iterations(2), 1);
        assert_eq!(optimal_grover_iterations(4), 3);
        assert_eq!(optimal_grover_iterations(8), 12);
        let a = optimal_grover_iterations(10);
        let b = optimal_grover_iterations(12);
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_marked() {
        let _ = grover(3, 8, 1);
    }
}
