//! Quantum Fourier transform.
//!
//! The canonical "worst-case locality" workload: every qubit interacts with
//! every other through controlled-phase gates, so no chunking scheme can make
//! it fully chunk-local — which is exactly why the paper's challenge (3)
//! calls out algorithm-dependent access patterns.

use crate::Circuit;
use std::f64::consts::PI;

/// The n-qubit QFT with final bit-order-restoring swaps.
pub fn qft(n: u32) -> Circuit {
    let mut c = qft_no_swap(n);
    c.set_name(format!("qft{n}"));
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// The n-qubit QFT without the final swaps (output in bit-reversed order).
pub fn qft_no_swap(n: u32) -> Circuit {
    assert!(n >= 1, "qft needs at least one qubit");
    let mut c = Circuit::named(n, format!("qft{n}_noswap"));
    for target in (0..n).rev() {
        c.h(target);
        for (k, control) in (0..target).rev().enumerate() {
            // Rotation by pi / 2^(k+1), controlled on the lower qubit.
            c.cp(control, target, PI / f64::powi(2.0, k as i32 + 1));
        }
    }
    c
}

/// The inverse QFT (with swaps).
pub fn iqft(n: u32) -> Circuit {
    let mut c = qft(n).inverse();
    c.set_name(format!("iqft{n}"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn qft_gate_count_is_quadratic() {
        // n H gates + n(n-1)/2 CP gates + floor(n/2) swaps.
        for n in 1..=8u32 {
            let c = qft(n);
            let expect = n as usize + (n as usize * (n as usize - 1)) / 2 + (n / 2) as usize;
            assert_eq!(c.len(), expect, "n={n}");
        }
    }

    #[test]
    fn qft_no_swap_has_no_swaps() {
        let c = qft_no_swap(5);
        assert!(c.gates().iter().all(|g| !matches!(g, Gate::Swap(_, _))));
    }

    #[test]
    fn qft2_structure() {
        let c = qft_no_swap(2);
        // H on q1, CP(pi/2) q0->q1, H on q0.
        assert_eq!(c.gates()[0], Gate::H(1));
        match c.gates()[1] {
            Gate::Cp(0, 1, l) => assert!((l - PI / 2.0).abs() < 1e-15),
            ref g => panic!("unexpected {g:?}"),
        }
        assert_eq!(c.gates()[2], Gate::H(0));
    }

    #[test]
    fn iqft_inverts_qft_symbolically() {
        let n = 4;
        let mut comp = qft(n);
        comp.extend(&iqft(n));
        // Circuit composition QFT;IQFT has twice the gates; correctness of
        // actual inversion is checked in the simulator integration tests.
        assert_eq!(comp.len(), 2 * qft(n).len());
    }
}
