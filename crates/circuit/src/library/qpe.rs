//! Quantum phase estimation.
//!
//! Estimates the phase of `P(2*pi*phase)` acting on |1>, with `t` counting
//! qubits of precision. The controlled-power ladder plus inverse QFT makes
//! this the classic "structured but non-local" workload.

use super::qft::qft_no_swap;
use crate::Circuit;
use std::f64::consts::PI;

/// Phase estimation with `t` counting qubits for the single-qubit phase
/// gate `P(2*pi*phase)`. Total width is `t + 1`; qubit `t` holds the
/// eigenstate |1>.
///
/// Measuring the counting register (qubits `0..t`, with qubit `t-1` the most
/// significant bit) yields `round(phase * 2^t) mod 2^t` with high
/// probability.
pub fn phase_estimation(t: u32, phase: f64) -> Circuit {
    assert!(t >= 1, "need at least one counting qubit");
    let mut c = Circuit::named(t + 1, format!("qpe{t}"));
    // Eigenstate |1> on the target.
    c.x(t);
    for q in 0..t {
        c.h(q);
    }
    // Controlled powers: counting qubit k controls P(2*pi*phase * 2^k).
    for k in 0..t {
        let lambda = 2.0 * PI * phase * f64::powi(2.0, k as i32);
        c.cp(k, t, lambda);
    }
    // Inverse QFT on the counting register, widened to t+1 qubits. The
    // inverse of (qft_no_swap; swaps) is (swaps; qft_no_swap^-1).
    let mut iqft = Circuit::new(t + 1);
    for q in 0..t / 2 {
        iqft.swap(q, t - 1 - q);
    }
    for g in qft_no_swap(t).inverse().gates() {
        iqft.push(g.clone());
    }
    c.extend(&iqft);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn width_and_initialization() {
        let c = phase_estimation(4, 0.25);
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.gates()[0], Gate::X(4));
    }

    #[test]
    fn one_controlled_power_per_counting_qubit() {
        let t = 5;
        let c = phase_estimation(t, 0.3);
        let cp_to_target = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cp(_, tgt, _) if *tgt == t))
            .count();
        assert_eq!(cp_to_target, t as usize);
    }

    #[test]
    fn angles_double_per_qubit() {
        let c = phase_estimation(3, 0.1);
        let mut angles: Vec<f64> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cp(_, 3, l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(angles.len(), 3);
        let base = angles.remove(0);
        assert!((angles[0] - 2.0 * base).abs() < 1e-12);
        assert!((angles[1] - 4.0 * base).abs() < 1e-12);
    }
}
