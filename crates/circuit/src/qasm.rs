//! OpenQASM 2.0 subset: parser and emitter.
//!
//! Supported surface: the `OPENQASM 2.0` header, `include` (ignored), one
//! `qreg`, any number of `creg`s (recorded but unused), `barrier` (ignored),
//! `measure` (recorded separately — the circuit IR is measurement-free),
//! comments, whole-register broadcast (`h q;`), and the qelib1 gate names
//! `h x y z s sdg t tdg sx sxdg rx ry rz p u1 u3 u cx cy cz cp cu1 swap ccx`.
//! Parameter expressions support literals, `pi`, unary minus, `+ - * /` and
//! parentheses.

use crate::gate::Gate;
use crate::Circuit;
use std::fmt;

/// A parsed QASM program: the gate circuit plus recorded measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmProgram {
    /// The unitary part.
    pub circuit: Circuit,
    /// `measure q[i] -> c[j]` statements, as `(qubit, clbit)` pairs.
    pub measurements: Vec<(u32, u32)>,
    /// Name of the quantum register.
    pub qreg_name: String,
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QASM error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError {
        line,
        message: message.into(),
    }
}

/// Parses an OpenQASM 2.0 subset source into a [`QasmProgram`].
pub fn parse(source: &str) -> Result<QasmProgram, QasmError> {
    let mut qreg: Option<(String, u32)> = None;
    let mut circuit: Option<Circuit> = None;
    let mut measurements = Vec::new();
    let mut saw_header = false;

    for (line_idx, raw_line) in source.lines().enumerate() {
        let lineno = line_idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        // A line may hold several ';'-terminated statements.
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") {
                if !stmt.contains("2.0") {
                    return Err(err(lineno, "only OPENQASM 2.0 is supported"));
                }
                saw_header = true;
                continue;
            }
            if stmt.starts_with("include")
                || stmt.starts_with("barrier")
                || stmt.starts_with("creg")
            {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                if qreg.is_some() {
                    return Err(err(lineno, "multiple qreg declarations are not supported"));
                }
                let (name, size) = parse_reg_decl(rest.trim(), lineno)?;
                circuit = Some(Circuit::new(size));
                qreg = Some((name, size));
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("measure") {
                let (qname, _) = qreg
                    .as_ref()
                    .ok_or_else(|| err(lineno, "measure before qreg"))?;
                let parts: Vec<&str> = rest.split("->").collect();
                if parts.len() != 2 {
                    return Err(err(lineno, "malformed measure statement"));
                }
                let q = parse_indexed(parts[0].trim(), qname, lineno)?;
                let c = parse_any_indexed(parts[1].trim(), lineno)?;
                measurements.push((q, c));
                continue;
            }
            // Gate application.
            let (qname, size) = qreg
                .as_ref()
                .ok_or_else(|| err(lineno, "gate application before qreg"))?;
            if !saw_header {
                return Err(err(lineno, "missing OPENQASM 2.0 header"));
            }
            let c = circuit.as_mut().expect("circuit exists with qreg");
            apply_gate_stmt(c, stmt, qname, *size, lineno)?;
        }
    }

    let (qreg_name, _) =
        qreg.ok_or_else(|| err(source.lines().count().max(1), "no qreg declared"))?;
    Ok(QasmProgram {
        circuit: circuit.expect("circuit exists with qreg"),
        measurements,
        qreg_name,
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parses `name[size]` from a register declaration body.
fn parse_reg_decl(body: &str, lineno: usize) -> Result<(String, u32), QasmError> {
    let open = body
        .find('[')
        .ok_or_else(|| err(lineno, "expected '[' in register declaration"))?;
    let close = body
        .find(']')
        .ok_or_else(|| err(lineno, "expected ']' in register declaration"))?;
    let name = body[..open].trim().to_string();
    if name.is_empty()
        || !name
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
    {
        return Err(err(lineno, "invalid register name"));
    }
    let size: u32 = body[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, "invalid register size"))?;
    if size == 0 {
        return Err(err(lineno, "zero-width register"));
    }
    Ok((name, size))
}

/// Parses `name[idx]` where name must equal `expected`.
fn parse_indexed(text: &str, expected: &str, lineno: usize) -> Result<u32, QasmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(lineno, "expected indexed operand"))?;
    let close = text.find(']').ok_or_else(|| err(lineno, "expected ']'"))?;
    let name = text[..open].trim();
    if name != expected {
        return Err(err(lineno, format!("unknown register '{name}'")));
    }
    text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, "invalid qubit index"))
}

/// Parses `name[idx]` for any register name (used for classical bits).
fn parse_any_indexed(text: &str, lineno: usize) -> Result<u32, QasmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(lineno, "expected indexed operand"))?;
    let close = text.find(']').ok_or_else(|| err(lineno, "expected ']'"))?;
    text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, "invalid bit index"))
}

/// Parses and appends one gate statement (without trailing ';').
fn apply_gate_stmt(
    c: &mut Circuit,
    stmt: &str,
    qname: &str,
    size: u32,
    lineno: usize,
) -> Result<(), QasmError> {
    // Split "name(params)" from operand list.
    let (head, operands_text) = split_head(stmt, lineno)?;
    let (name, params) = if let Some(p_open) = head.find('(') {
        let p_close = head
            .rfind(')')
            .ok_or_else(|| err(lineno, "unclosed parameter list"))?;
        let name = head[..p_open].trim();
        let params: Result<Vec<f64>, QasmError> = head[p_open + 1..p_close]
            .split(',')
            .map(|e| eval_expr(e.trim(), lineno))
            .collect();
        (name.to_string(), params?)
    } else {
        (head.trim().to_string(), Vec::new())
    };

    // Operands: either q[i] items or bare register name (broadcast).
    let op_texts: Vec<&str> = operands_text
        .split(',')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .collect();
    if op_texts.is_empty() {
        return Err(err(lineno, "gate with no operands"));
    }
    let broadcast = op_texts.len() == 1 && op_texts[0] == qname;
    let qubit_lists: Vec<Vec<u32>> = if broadcast {
        (0..size).map(|q| vec![q]).collect()
    } else {
        let qs: Result<Vec<u32>, QasmError> = op_texts
            .iter()
            .map(|t| parse_indexed(t, qname, lineno))
            .collect();
        vec![qs?]
    };

    for qs in qubit_lists {
        let gate = build_gate(&name, &params, &qs, lineno)?;
        c.try_push(gate)
            .map_err(|e| err(lineno, format!("invalid gate: {e}")))?;
    }
    Ok(())
}

/// Splits a gate statement into the head (name + params) and operand text.
fn split_head(stmt: &str, lineno: usize) -> Result<(String, String), QasmError> {
    // The head ends at the first whitespace that is *outside* parentheses.
    let mut depth = 0i32;
    for (i, ch) in stmt.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth -= 1,
            ch if ch.is_whitespace() && depth == 0 => {
                return Ok((stmt[..i].to_string(), stmt[i..].to_string()));
            }
            _ => {}
        }
    }
    Err(err(lineno, "malformed gate statement"))
}

fn build_gate(name: &str, params: &[f64], qs: &[u32], lineno: usize) -> Result<Gate, QasmError> {
    let need = |n: usize, p: usize| -> Result<(), QasmError> {
        if qs.len() != n {
            return Err(err(lineno, format!("gate '{name}' expects {n} qubit(s)")));
        }
        if params.len() != p {
            return Err(err(
                lineno,
                format!("gate '{name}' expects {p} parameter(s)"),
            ));
        }
        Ok(())
    };
    Ok(match name {
        "h" => {
            need(1, 0)?;
            Gate::H(qs[0])
        }
        "x" => {
            need(1, 0)?;
            Gate::X(qs[0])
        }
        "y" => {
            need(1, 0)?;
            Gate::Y(qs[0])
        }
        "z" => {
            need(1, 0)?;
            Gate::Z(qs[0])
        }
        "s" => {
            need(1, 0)?;
            Gate::S(qs[0])
        }
        "sdg" => {
            need(1, 0)?;
            Gate::Sdg(qs[0])
        }
        "t" => {
            need(1, 0)?;
            Gate::T(qs[0])
        }
        "tdg" => {
            need(1, 0)?;
            Gate::Tdg(qs[0])
        }
        "sx" => {
            need(1, 0)?;
            Gate::Sx(qs[0])
        }
        "sxdg" => {
            need(1, 0)?;
            Gate::Sxdg(qs[0])
        }
        "rx" => {
            need(1, 1)?;
            Gate::Rx(qs[0], params[0])
        }
        "ry" => {
            need(1, 1)?;
            Gate::Ry(qs[0], params[0])
        }
        "rz" => {
            need(1, 1)?;
            Gate::Rz(qs[0], params[0])
        }
        "p" | "u1" => {
            need(1, 1)?;
            Gate::P(qs[0], params[0])
        }
        "u3" | "u" => {
            need(1, 3)?;
            Gate::U3(qs[0], params[0], params[1], params[2])
        }
        "cx" => {
            need(2, 0)?;
            Gate::Cx(qs[0], qs[1])
        }
        "cy" => {
            need(2, 0)?;
            Gate::Cy(qs[0], qs[1])
        }
        "cz" => {
            need(2, 0)?;
            Gate::Cz(qs[0], qs[1])
        }
        "cp" | "cu1" => {
            need(2, 1)?;
            Gate::Cp(qs[0], qs[1], params[0])
        }
        "swap" => {
            need(2, 0)?;
            Gate::Swap(qs[0], qs[1])
        }
        "ccx" => {
            need(3, 0)?;
            Gate::ccx(qs[0], qs[1], qs[2])
        }
        _ => return Err(err(lineno, format!("unsupported gate '{name}'"))),
    })
}

// --- expression evaluator ---------------------------------------------------

/// Evaluates a constant parameter expression (`pi/2`, `-0.5*pi`, `(1+2)/4`).
pub fn eval_expr(text: &str, lineno: usize) -> Result<f64, QasmError> {
    let mut p = ExprParser {
        bytes: text.as_bytes(),
        pos: 0,
        lineno,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(
            lineno,
            format!("trailing characters in expression '{text}'"),
        ));
    }
    Ok(v)
}

struct ExprParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    lineno: usize,
}

impl<'a> ExprParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<f64, QasmError> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    v += self.term()?;
                }
                Some(b'-') => {
                    self.pos += 1;
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<f64, QasmError> {
        let mut v = self.factor()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    v *= self.factor()?;
                }
                Some(b'/') => {
                    self.pos += 1;
                    let d = self.factor()?;
                    if d == 0.0 {
                        return Err(err(self.lineno, "division by zero in expression"));
                    }
                    v /= d;
                }
                _ => return Ok(v),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, QasmError> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some(b'+') => {
                self.pos += 1;
                self.factor()
            }
            Some(b'(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(err(self.lineno, "expected ')'"));
                }
                self.pos += 1;
                Ok(v)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(b'p') | Some(b'P') => {
                if self.bytes[self.pos..].len() >= 2
                    && self.bytes[self.pos + 1].eq_ignore_ascii_case(&b'i')
                {
                    self.pos += 2;
                    Ok(std::f64::consts::PI)
                } else {
                    Err(err(self.lineno, "unknown identifier in expression"))
                }
            }
            _ => Err(err(self.lineno, "malformed expression")),
        }
    }

    fn number(&mut self) -> Result<f64, QasmError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            let exp_sign = (c == b'+' || c == b'-')
                && self.pos > start
                && (self.bytes[self.pos - 1] == b'e' || self.bytes[self.pos - 1] == b'E');
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || exp_sign {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .parse()
            .map_err(|_| err(self.lineno, "invalid number"))
    }
}

// --- emitter ----------------------------------------------------------------

/// Emits a circuit as OpenQASM 2.0. Gates without a qelib1 spelling
/// (`U1q`, `U2q`, `Rzz`, general `Mcu`) are lowered to equivalent qelib1
/// sequences where possible; an `Mcu` that is not a Toffoli is rejected.
pub fn emit(circuit: &Circuit) -> Result<String, QasmError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for (i, g) in circuit.gates().iter().enumerate() {
        emit_gate(&mut out, g).map_err(|m| err(i + 1, m))?;
    }
    Ok(out)
}

fn emit_gate(out: &mut String, g: &Gate) -> Result<(), String> {
    use std::fmt::Write as _;
    use Gate::*;
    match g {
        H(q) | X(q) | Y(q) | Z(q) | S(q) | Sdg(q) | T(q) | Tdg(q) | Sx(q) | Sxdg(q) => {
            let _ = writeln!(out, "{} q[{}];", g.name(), q);
        }
        Rx(q, t) | Ry(q, t) | Rz(q, t) => {
            let _ = writeln!(out, "{}({}) q[{}];", g.name(), fmt_f64(*t), q);
        }
        P(q, l) => {
            let _ = writeln!(out, "p({}) q[{}];", fmt_f64(*l), q);
        }
        U3(q, t, p, l) => {
            let _ = writeln!(
                out,
                "u3({},{},{}) q[{}];",
                fmt_f64(*t),
                fmt_f64(*p),
                fmt_f64(*l),
                q
            );
        }
        Cx(a, b) | Cy(a, b) | Cz(a, b) | Swap(a, b) => {
            let _ = writeln!(out, "{} q[{}],q[{}];", g.name(), a, b);
        }
        Cp(a, b, l) => {
            let _ = writeln!(out, "cp({}) q[{}],q[{}];", fmt_f64(*l), a, b);
        }
        Rzz(a, b, t) => {
            // Lower to cx; rz; cx.
            let _ = writeln!(out, "cx q[{a}],q[{b}];");
            let _ = writeln!(out, "rz({}) q[{}];", fmt_f64(*t), b);
            let _ = writeln!(out, "cx q[{a}],q[{b}];");
        }
        Mcu {
            controls,
            target,
            u,
        } if controls.len() == 2 && u.approx_eq(&crate::gate::mat2_x(), 1e-12) => {
            let _ = writeln!(
                out,
                "ccx q[{}],q[{}],q[{}];",
                controls[0], controls[1], target
            );
        }
        U1q(..) | U2q(..) | Mcu { .. } => {
            return Err(format!("gate '{}' has no OpenQASM 2.0 spelling", g.name()));
        }
    }
    Ok(())
}

/// Formats a float with enough digits to round-trip.
fn fmt_f64(x: f64) -> String {
    format!("{x:.17e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn parses_minimal_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0],q[1];
            rz(pi/4) q[2];
            measure q[0] -> c[0];
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.circuit.n_qubits(), 3);
        assert_eq!(p.circuit.len(), 3);
        assert_eq!(p.measurements, vec![(0, 0)]);
        assert_eq!(p.qreg_name, "q");
        match &p.circuit.gates()[2] {
            Gate::Rz(2, t) => assert!((t - PI / 4.0).abs() < 1e-15),
            g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn broadcast_applies_to_all_qubits() {
        let src = "OPENQASM 2.0;\nqreg q[4];\nh q;\n";
        let p = parse(src).unwrap();
        assert_eq!(p.circuit.len(), 4);
        for (i, g) in p.circuit.gates().iter().enumerate() {
            assert_eq!(*g, Gate::H(i as u32));
        }
    }

    #[test]
    fn comments_and_barriers_ignored() {
        let src = "OPENQASM 2.0; // header\nqreg q[2];\n// nothing\nbarrier q;\nx q[1]; // flip\n";
        let p = parse(src).unwrap();
        assert_eq!(p.circuit.len(), 1);
    }

    #[test]
    fn expression_evaluation() {
        assert!((eval_expr("pi", 1).unwrap() - PI).abs() < 1e-15);
        assert!((eval_expr("-pi/2", 1).unwrap() + PI / 2.0).abs() < 1e-15);
        assert!((eval_expr("(1+2)*3", 1).unwrap() - 9.0).abs() < 1e-15);
        assert!((eval_expr("2.5e-1", 1).unwrap() - 0.25).abs() < 1e-15);
        assert!((eval_expr("1 - 2 - 3", 1).unwrap() + 4.0).abs() < 1e-15);
        assert!((eval_expr("pi*pi/pi", 1).unwrap() - PI).abs() < 1e-12);
        assert!(eval_expr("1/0", 1).is_err());
        assert!(eval_expr("foo", 1).is_err());
        assert!(eval_expr("1 +", 1).is_err());
        assert!(eval_expr("(1", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_gate_before_qreg() {
        let src = "OPENQASM 2.0;\nh q[0];\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_register() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh r[0];\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn emit_then_parse_round_trips() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .rz(2, 0.123456789012345)
            .u3(3, 0.1, -0.2, 0.3)
            .cp(1, 3, PI / 8.0)
            .swap(0, 2)
            .t(1)
            .sdg(2)
            .ccx(0, 1, 2);
        let qasm = emit(&c).unwrap();
        let p = parse(&qasm).unwrap();
        assert_eq!(p.circuit.len(), c.len());
        for (a, b) in p.circuit.gates().iter().zip(c.gates()) {
            match (a, b) {
                (Gate::Rz(qa, ta), Gate::Rz(qb, tb)) => {
                    assert_eq!(qa, qb);
                    assert!((ta - tb).abs() < 1e-15);
                }
                (Gate::U3(qa, t1, p1, l1), Gate::U3(qb, t2, p2, l2)) => {
                    assert_eq!(qa, qb);
                    assert!((t1 - t2).abs() < 1e-15);
                    assert!((p1 - p2).abs() < 1e-15);
                    assert!((l1 - l2).abs() < 1e-15);
                }
                (Gate::Cp(a1, b1, l1), Gate::Cp(a2, b2, l2)) => {
                    assert_eq!((a1, b1), (a2, b2));
                    assert!((l1 - l2).abs() < 1e-15);
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn rzz_lowers_to_cx_rz_cx() {
        let mut c = Circuit::new(2);
        c.rzz(0, 1, 0.5);
        let qasm = emit(&c).unwrap();
        let p = parse(&qasm).unwrap();
        assert_eq!(p.circuit.len(), 3);
        assert_eq!(p.circuit.gates()[0], Gate::Cx(0, 1));
        assert!(matches!(p.circuit.gates()[1], Gate::Rz(1, _)));
        assert_eq!(p.circuit.gates()[2], Gate::Cx(0, 1));
    }

    #[test]
    fn emit_rejects_fused_gates() {
        let mut c = Circuit::new(1);
        c.push(Gate::U1q(0, crate::gate::mat2_h()));
        assert!(emit(&c).is_err());
    }

    #[test]
    fn multiple_statements_per_line() {
        let src = "OPENQASM 2.0; qreg q[2]; h q[0]; x q[1];";
        let p = parse(src).unwrap();
        assert_eq!(p.circuit.len(), 2);
    }
}
