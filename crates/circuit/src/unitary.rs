//! Naive dense gate application and full-circuit unitaries.
#![allow(clippy::needless_range_loop)] // index loops mirror the math
//!
//! A deliberately simple, obviously-correct reference: `mq-statevec` and the
//! MEMQSIM engines are *tested against this oracle*, and this oracle is in
//! turn tested against hand-computed states. It is exponential-cost and only
//! suitable for small registers (tests use n <= 10).

use crate::gate::Gate;
use crate::matrix::MatN;
use crate::Circuit;
use mq_num::bits;
use mq_num::Complex64;

/// Applies `gate` to a dense `n`-qubit state (length `2^n`), in place.
///
/// # Panics
/// Panics if `state.len() != 2^n` or the gate fails validation.
pub fn apply_gate_dense(n: u32, state: &mut [Complex64], gate: &Gate) {
    assert_eq!(state.len(), 1usize << n, "state length mismatch");
    gate.validate(n).expect("invalid gate");
    if let Some(m) = gate.mat2() {
        let q = gate.qubits()[0];
        for base in bits::pair_bases(n, q) {
            let hi = bits::set_bit(base, q);
            let (a, b) = m.apply(state[base], state[hi]);
            state[base] = a;
            state[hi] = b;
        }
        return;
    }
    if let Some(m) = gate.mat4() {
        let qs = gate.qubits();
        let (qa, qb) = (qs[0], qs[1]);
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        for i in 0..1usize << (n - 2) {
            let base = bits::insert_two_zero_bits(i, lo, hi);
            let ia = bits::set_bit(base, qa);
            let ib = bits::set_bit(base, qb);
            let iab = bits::set_bit(ia, qb);
            // Matrix basis: (bit_b << 1) | bit_a.
            let group = [state[base], state[ia], state[ib], state[iab]];
            let out = m.apply(group);
            state[base] = out[0];
            state[ia] = out[1];
            state[ib] = out[2];
            state[iab] = out[3];
        }
        return;
    }
    if let Gate::Mcu {
        controls,
        target,
        u,
    } = gate
    {
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let t = *target;
        for base in bits::pair_bases(n, t) {
            if base & cmask == cmask {
                let hi = bits::set_bit(base, t);
                let (a, b) = u.apply(state[base], state[hi]);
                state[base] = a;
                state[hi] = b;
            }
        }
        return;
    }
    unreachable!("gate {gate} has neither mat2, mat4 nor Mcu form");
}

/// Runs a whole circuit on the basis state `|start>`.
pub fn run_dense(circuit: &Circuit, start: usize) -> Vec<Complex64> {
    let dim = 1usize << circuit.n_qubits();
    assert!(start < dim, "start state out of range");
    let mut state = vec![Complex64::ZERO; dim];
    state[start] = Complex64::ONE;
    for g in circuit.gates() {
        apply_gate_dense(circuit.n_qubits(), &mut state, g);
    }
    state
}

/// The full `2^n x 2^n` unitary of a circuit (column `j` is the image of
/// basis state `|j>`). Exponential — test use only.
pub fn circuit_unitary(circuit: &Circuit) -> MatN {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    let mut data = vec![Complex64::ZERO; dim * dim];
    for col in 0..dim {
        let out = run_dense(circuit, col);
        for (row, amp) in out.into_iter().enumerate() {
            data[row * dim + col] = amp;
        }
    }
    MatN::from_data(n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use mq_num::complex::c64;
    use mq_num::metrics;

    const TOL: f64 = 1e-12;

    #[test]
    fn x_flips_basis_state() {
        let mut c = Circuit::new(2);
        c.x(0);
        let s = run_dense(&c, 0b00);
        assert!(s[0b01].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn bell_state_amplitudes() {
        let c = library::bell_pair(2, 0, 1);
        let s = run_dense(&c, 0);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s[0b00].approx_eq(c64(r, 0.0), TOL));
        assert!(s[0b11].approx_eq(c64(r, 0.0), TOL));
        assert!(s[0b01].norm() < TOL && s[0b10].norm() < TOL);
    }

    #[test]
    fn ghz_state_has_two_amplitudes() {
        let s = run_dense(&library::ghz(5), 0);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s[0].approx_eq(c64(r, 0.0), TOL));
        assert!(s[31].approx_eq(c64(r, 0.0), TOL));
        let nonzero = s.iter().filter(|z| z.norm() > TOL).count();
        assert_eq!(nonzero, 2);
    }

    #[test]
    fn w_state_is_uniform_single_excitation() {
        for n in 1..=5u32 {
            let s = run_dense(&library::w_state(n), 0);
            let amp = 1.0 / (n as f64).sqrt();
            for i in 0..1usize << n {
                if i.count_ones() == 1 {
                    assert!(
                        (s[i].norm() - amp).abs() < 1e-10,
                        "n={n} i={i} got {}",
                        s[i]
                    );
                } else {
                    assert!(s[i].norm() < 1e-10, "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let n = 4;
        let s = run_dense(&library::qft(n), 0);
        let amp = 1.0 / (1u64 << n) as f64;
        for z in &s {
            assert!((z.norm_sqr() - amp).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_followed_by_iqft_is_identity() {
        let n = 4;
        let mut c = library::qft(n);
        c.extend(&library::iqft(n));
        for start in [0usize, 3, 9, 15] {
            let s = run_dense(&c, start);
            assert!(s[start].approx_eq(Complex64::ONE, 1e-10), "start={start}");
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        let n = 3;
        let u = circuit_unitary(&library::qft(n));
        let dim = 1usize << n;
        let w = 2.0 * std::f64::consts::PI / dim as f64;
        let norm = 1.0 / (dim as f64).sqrt();
        for r in 0..dim {
            for c in 0..dim {
                let want = Complex64::cis(w * (r * c) as f64) * norm;
                assert!(
                    u.at(r, c).approx_eq(want, 1e-10),
                    "({r},{c}): got {} want {}",
                    u.at(r, c),
                    want
                );
            }
        }
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let n = 5;
        let marked = 0b10110u64;
        let iters = library::optimal_grover_iterations(n);
        let s = run_dense(&library::grover(n, marked, iters), 0);
        let p_marked = s[marked as usize].norm_sqr();
        assert!(p_marked > 0.9, "p={p_marked}");
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        let n = 5;
        let secret = 0b01101u64;
        let s = run_dense(&library::bernstein_vazirani(n, secret), 0);
        // Data register must equal the secret (ancilla in |->: both values).
        let mut prob = 0.0;
        for i in 0..s.len() {
            if (i as u64 & ((1 << n) - 1)) == secret {
                prob += s[i].norm_sqr();
            }
        }
        assert!((prob - 1.0).abs() < 1e-10, "prob={prob}");
    }

    #[test]
    fn phase_estimation_peaks_at_phase() {
        let t = 4;
        let phase = 5.0 / 16.0; // exactly representable in 4 bits
        let s = run_dense(&library::phase_estimation(t, phase), 0);
        // Counting register value 5 (target qubit is |1> = bit t set).
        let idx = 5usize | (1usize << t);
        assert!(s[idx].norm_sqr() > 0.99, "p={}", s[idx].norm_sqr());
    }

    #[test]
    fn adder_adds_on_basis_states() {
        let n = 3;
        for (a, b) in [(0u64, 0u64), (1, 1), (3, 5), (7, 7), (5, 2)] {
            let mut c = library::arithmetic::load_operands(n, a, b);
            c.extend(&library::ripple_carry_adder(n));
            let s = run_dense(&c, 0);
            let hot: Vec<usize> = (0..s.len()).filter(|&i| s[i].norm() > 1e-9).collect();
            assert_eq!(hot.len(), 1, "basis state stays classical");
            let sum = library::arithmetic::decode_sum(n, hot[0] as u64);
            assert_eq!(sum, a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn every_library_circuit_preserves_norm() {
        for c in library::standard_suite(5) {
            let s = run_dense(&c, 0);
            assert!(
                metrics::is_normalized(&s, 1e-9),
                "{} denormalized",
                c.name()
            );
        }
    }

    #[test]
    fn circuit_unitary_of_library_circuits_is_unitary() {
        for c in [library::qft(3), library::ghz(3), library::w_state(3)] {
            assert!(circuit_unitary(&c).is_unitary(1e-9), "{}", c.name());
        }
    }

    #[test]
    fn inverse_circuit_gives_adjoint_unitary() {
        let c = library::hardware_efficient_ansatz(3, 1, 5);
        let u = circuit_unitary(&c);
        let uinv = circuit_unitary(&c.inverse());
        let prod = u.mul(&uinv);
        let id = MatN::identity(3);
        for (a, b) in prod.data().iter().zip(id.data()) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }
}
