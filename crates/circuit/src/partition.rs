//! The MEMQSIM **offline stage**: circuit partitioning for a chunked state
//! vector.
//!
//! The state vector is split into `2^(n-c)` chunks of `2^c` amplitudes
//! (`c = chunk_bits`). A gate whose *pairing* qubits (see
//! [`Gate::pairing_qubits`]) are all `< c` can be applied to each chunk
//! independently ("local"). A pairing qubit `q >= c` couples chunk `k` with
//! chunk `k ^ 2^(q-c)`, so the engine must co-schedule groups of chunks.
//!
//! The planner greedily packs consecutive gates into [`Stage`]s whose union
//! of high pairing qubits stays within `max_high_qubits`, bounding each
//! stage's working set to `2^|H|` chunks. Applying *all* gates of a stage
//! per decompress→recompress round is the paper's answer to design
//! challenge (2): compression frequency drops from per-gate to per-stage.

use crate::gate::Gate;
use crate::layout::QubitLayout;
use crate::Circuit;

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// log2 of amplitudes per chunk.
    pub chunk_bits: u32,
    /// Maximum number of distinct high (cross-chunk) pairing qubits per
    /// stage; the stage working set is `2^max_high_qubits` chunks.
    pub max_high_qubits: u32,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            chunk_bits: 16,
            max_high_qubits: 1,
        }
    }
}

/// A remap transition: an ordered list of transpositions of *physical* bit
/// positions applied to the stored state between stages (or, for a plan's
/// epilogue, after the last stage). Each transposition `(a, b)` exchanges
/// the amplitudes' bit positions `a` and `b`. Cost depends on where the
/// positions fall relative to `chunk_bits`:
///
/// * both high — pairwise chunk exchange, no intra-chunk movement, and a
///   payload-capable store swaps compressed bytes (zero chunk visits);
/// * one high, one low — a full gather sweep over chunk pairs, one visit
///   per chunk;
/// * both low — an intra-chunk bit swap per chunk, one visit per chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTransition {
    /// Physical position transpositions, in application order.
    pub swaps: Vec<(u32, u32)>,
}

impl RemapTransition {
    /// Chunk visits this transition costs on a state of `chunk_count`
    /// chunks split at `chunk_bits`.
    pub fn visit_cost(&self, chunk_bits: u32, chunk_count: usize) -> usize {
        self.swaps
            .iter()
            .map(|&(a, b)| {
                if a.min(b) >= chunk_bits {
                    0
                } else {
                    chunk_count
                }
            })
            .sum()
    }

    /// The pairwise chunk exchanges the transition's high-high
    /// transpositions perform, in application order: swapping two positions
    /// at or above `chunk_bits` exchanges chunk `k` with `k` under the
    /// corresponding chunk-index bit transposition. High-low and low-low
    /// transpositions move amplitudes *within* existing chunk identities
    /// and contribute no pairs.
    pub fn chunk_exchange_pairs(&self, chunk_bits: u32, chunk_count: usize) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for &(a, b) in &self.swaps {
            let (a, b) = (a.min(b), a.max(b));
            if a < chunk_bits {
                continue;
            }
            let (b1, b2) = (1usize << (a - chunk_bits), 1usize << (b - chunk_bits));
            for k in 0..chunk_count {
                if k & b1 != 0 && k & b2 == 0 {
                    pairs.push((k, k ^ b1 ^ b2));
                }
            }
        }
        pairs
    }
}

/// One stage of the plan: a consecutive run of gates whose cross-chunk
/// coupling is limited to `high_qubits`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// The gates, in original circuit order. Under a non-identity layout
    /// these are already rewritten into *physical* qubit positions, so
    /// `is_local`/`high_qubits`/`chunk_groups` need no layout awareness.
    pub gates: Vec<Gate>,
    /// Sorted, deduplicated global indices of pairing qubits `>= chunk_bits`
    /// used by the gates of this stage. Empty for fully chunk-local stages.
    pub high_qubits: Vec<u32>,
    /// Remap applied to the stored state *before* this stage's gates run.
    /// `None` for fixed-layout plans.
    pub transition: Option<RemapTransition>,
    /// Logical→physical layout in effect while this stage executes (after
    /// `transition`). The default (empty) layout is the identity.
    pub layout: QubitLayout,
}

impl Stage {
    /// A stage with no transition under the identity layout — the only
    /// constructor fixed-layout planning needs.
    pub fn new(gates: Vec<Gate>, high_qubits: Vec<u32>) -> Stage {
        Stage {
            gates,
            high_qubits,
            transition: None,
            layout: QubitLayout::default(),
        }
    }

    /// True if every gate applies within single chunks.
    pub fn is_local(&self) -> bool {
        self.high_qubits.is_empty()
    }

    /// Number of chunks that must be co-resident to execute this stage
    /// (`2^|high_qubits|`).
    pub fn group_size(&self) -> usize {
        1usize << self.high_qubits.len()
    }
}

/// A full execution plan for a circuit against a chunked state vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Register width the plan was built for.
    pub n_qubits: u32,
    /// Chunk size exponent.
    pub chunk_bits: u32,
    /// The stages, in execution order.
    pub stages: Vec<Stage>,
    /// Remap restoring the identity layout after the last stage, so layout
    /// plans stay bit-identical to fixed ones. `None` when the plan never
    /// leaves the identity layout.
    pub epilogue: Option<RemapTransition>,
    /// Chunk visits this plan saves relative to the fixed-layout plan for
    /// the same circuit (stage visits avoided minus transition visit costs
    /// paid). Zero for fixed-layout plans; strictly positive whenever the
    /// plan contains remap transitions.
    pub layout_visits_saved: usize,
}

impl Plan {
    /// Total number of gates across all stages.
    pub fn gate_count(&self) -> usize {
        self.stages.iter().map(|s| s.gates.len()).sum()
    }

    /// Number of chunks of the state vector (`2^(n - chunk_bits)`; 1 when
    /// the register fits in one chunk).
    pub fn chunk_count(&self) -> usize {
        1usize << self.n_qubits.saturating_sub(self.chunk_bits)
    }

    /// Total chunk visits over the whole plan: each stage decompresses and
    /// recompresses every chunk exactly once (in groups of
    /// `stage.group_size()`), plus the visit cost of every remap transition
    /// (including the epilogue). This is the quantity the paper's challenge
    /// (2) minimizes and the quantity the layout pass trades against.
    pub fn chunk_visits(&self) -> usize {
        self.stages.len() * self.chunk_count() + self.transition_visits()
    }

    /// Chunk visits spent on remap transitions alone (stage transitions
    /// plus the epilogue); zero for fixed-layout plans.
    pub fn transition_visits(&self) -> usize {
        let cc = self.chunk_count();
        let stage_cost: usize = self
            .stages
            .iter()
            .filter_map(|s| s.transition.as_ref())
            .map(|t| t.visit_cost(self.chunk_bits, cc))
            .sum();
        let epi_cost = self
            .epilogue
            .as_ref()
            .map(|t| t.visit_cost(self.chunk_bits, cc))
            .unwrap_or(0);
        stage_cost + epi_cost
    }

    /// Number of remap transitions in the plan (stage transitions plus the
    /// epilogue, if any).
    pub fn remap_passes(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.transition.is_some())
            .count()
            + usize::from(self.epilogue.is_some())
    }

    /// Per-gate baseline (Wu et al.\[6\]): one stage per gate. Used by the
    /// granularity ablation.
    pub fn chunk_visits_per_gate_baseline(&self) -> usize {
        self.gate_count() * self.chunk_count()
    }
}

/// Partitions `circuit` into stages per `cfg`.
///
/// Invariants (property-tested): concatenating `stages[i].gates` in order
/// reproduces `circuit.gates()` exactly; every stage satisfies
/// `|high_qubits| <= max_high_qubits`; `high_qubits` matches the gates'
/// actual high pairing qubits.
///
/// # Panics
/// Panics if a single gate needs more than `max_high_qubits` high pairing
/// qubits on its own (e.g. a `Swap` across two high qubits with
/// `max_high_qubits == 1`) — callers should raise `max_high_qubits` or
/// lower `chunk_bits`. With `max_high_qubits >= 2` every gate in this
/// crate's gate set is schedulable.
pub fn partition(circuit: &Circuit, cfg: &PartitionConfig) -> Plan {
    let c = cfg.chunk_bits;
    let mut stages: Vec<Stage> = Vec::new();
    let mut cur_gates: Vec<Gate> = Vec::new();
    let mut cur_high: Vec<u32> = Vec::new();

    for g in circuit.gates() {
        let mut gate_high: Vec<u32> = g.pairing_qubits().into_iter().filter(|&q| q >= c).collect();
        gate_high.sort_unstable();
        gate_high.dedup();
        assert!(
            gate_high.len() <= cfg.max_high_qubits as usize,
            "gate {g} needs {} high qubits but max_high_qubits is {}",
            gate_high.len(),
            cfg.max_high_qubits
        );
        // Union if it fits, else start a new stage.
        let mut union = cur_high.clone();
        for &q in &gate_high {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        union.sort_unstable();
        if union.len() <= cfg.max_high_qubits as usize || cur_gates.is_empty() {
            cur_high = union;
            cur_gates.push(g.clone());
        } else {
            stages.push(Stage::new(
                std::mem::take(&mut cur_gates),
                std::mem::take(&mut cur_high),
            ));
            cur_gates.push(g.clone());
            cur_high = gate_high;
        }
    }
    if !cur_gates.is_empty() {
        stages.push(Stage::new(cur_gates, cur_high));
    }
    Plan {
        n_qubits: circuit.n_qubits(),
        chunk_bits: c,
        stages,
        epilogue: None,
        layout_visits_saved: 0,
    }
}

/// Builds the degenerate per-gate plan (one stage per gate) — the
/// compression-around-every-gate baseline of Wu et al.\[6\].
pub fn partition_per_gate(circuit: &Circuit, chunk_bits: u32) -> Plan {
    let mut stages = Vec::with_capacity(circuit.len());
    for g in circuit.gates() {
        let mut high: Vec<u32> = g
            .pairing_qubits()
            .into_iter()
            .filter(|&q| q >= chunk_bits)
            .collect();
        high.sort_unstable();
        high.dedup();
        stages.push(Stage::new(vec![g.clone()], high));
    }
    Plan {
        n_qubits: circuit.n_qubits(),
        chunk_bits,
        stages,
        epilogue: None,
        layout_visits_saved: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn cfg(chunk_bits: u32, max_high: u32) -> PartitionConfig {
        PartitionConfig {
            chunk_bits,
            max_high_qubits: max_high,
        }
    }

    fn assert_plan_invariants(plan: &Plan, circuit: &Circuit, max_high: u32) {
        // Gate order preserved.
        let flat: Vec<&Gate> = plan.stages.iter().flat_map(|s| s.gates.iter()).collect();
        assert_eq!(flat.len(), circuit.len());
        for (a, b) in flat.iter().zip(circuit.gates()) {
            assert_eq!(**a, *b);
        }
        for s in &plan.stages {
            assert!(s.high_qubits.len() <= max_high as usize);
            assert!(!s.gates.is_empty());
            // high_qubits covers exactly the gates' high pairing qubits.
            let mut want: Vec<u32> = s
                .gates
                .iter()
                .flat_map(|g| g.pairing_qubits())
                .filter(|&q| q >= plan.chunk_bits)
                .collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(s.high_qubits, want);
        }
    }

    #[test]
    fn all_local_circuit_is_one_stage() {
        let c = library::ghz(6);
        // chunk_bits = 6 means the whole register is one chunk.
        let plan = partition(&c, &cfg(6, 1));
        assert_eq!(plan.stages.len(), 1);
        assert!(plan.stages[0].is_local());
        assert_eq!(plan.chunk_count(), 1);
        assert_plan_invariants(&plan, &c, 1);
    }

    #[test]
    fn ghz_with_small_chunks_stages_by_high_qubit() {
        let c = library::ghz(8);
        let plan = partition(&c, &cfg(4, 1));
        // CX gates with target >= 4 each introduce one high qubit; CX(3,4)
        // pairs on qubit 4, CX(4,5) on 5, etc. — distinct highs force
        // separate stages.
        assert!(plan.stages.len() >= 4, "{}", plan.stages.len());
        assert_plan_invariants(&plan, &c, 1);
    }

    #[test]
    fn diagonal_gates_never_go_high() {
        let n = 8;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n {
            c.rz(q, 0.1);
        }
        c.cz(0, 7).cp(6, 7, 0.5).rzz(5, 7, 0.3);
        let plan = partition(&c, &cfg(2, 1));
        assert_eq!(plan.stages.len(), 1, "everything is chunk-local");
        assert!(plan.stages[0].is_local());
    }

    #[test]
    fn mcu_controls_do_not_count_as_high() {
        let mut c = Circuit::new(10);
        c.mcx(&[8, 9], 0); // controls high, target local
        let plan = partition(&c, &cfg(4, 1));
        assert_eq!(plan.stages.len(), 1);
        assert!(plan.stages[0].is_local());
        // But a high *target* does pair.
        let mut c2 = Circuit::new(10);
        c2.mcx(&[0, 1], 9);
        let plan2 = partition(&c2, &cfg(4, 1));
        assert_eq!(plan2.stages[0].high_qubits, vec![9]);
    }

    #[test]
    fn qft_plan_invariants_hold() {
        // (chunk_bits=2, max_high=1) is invalid for qft(8): swap(2,5) pairs
        // two high qubits — covered by the should_panic test below.
        for (chunk_bits, max_high) in [(2u32, 2u32), (4, 1), (4, 2), (6, 1), (6, 2)] {
            let c = library::qft(8);
            let plan = partition(&c, &cfg(chunk_bits, max_high));
            assert_plan_invariants(&plan, &c, max_high);
        }
    }

    #[test]
    fn larger_max_high_never_increases_stage_count() {
        let c = library::random_circuit(10, 12, 3);
        let s1 = partition(&c, &cfg(4, 1)).stages.len();
        let s2 = partition(&c, &cfg(4, 2)).stages.len();
        let s3 = partition(&c, &cfg(4, 3)).stages.len();
        assert!(s2 <= s1);
        assert!(s3 <= s2);
    }

    #[test]
    fn larger_chunks_never_increase_stage_count() {
        let c = library::qft(10);
        let a = partition(&c, &cfg(2, 2)).stages.len();
        let b = partition(&c, &cfg(5, 2)).stages.len();
        let d = partition(&c, &cfg(9, 2)).stages.len();
        assert!(b <= a);
        assert!(d <= b);
    }

    #[test]
    #[should_panic]
    fn swap_across_two_high_qubits_needs_max_high_2() {
        let mut c = Circuit::new(10);
        c.swap(8, 9);
        let _ = partition(&c, &cfg(4, 1));
    }

    #[test]
    fn swap_across_two_high_qubits_ok_with_max_high_2() {
        let mut c = Circuit::new(10);
        c.swap(8, 9);
        let plan = partition(&c, &cfg(4, 2));
        assert_eq!(plan.stages[0].high_qubits, vec![8, 9]);
        assert_eq!(plan.stages[0].group_size(), 4);
    }

    #[test]
    fn per_gate_baseline_has_one_stage_per_gate() {
        let c = library::qft(6);
        let plan = partition_per_gate(&c, 3);
        assert_eq!(plan.stages.len(), c.len());
        assert_eq!(plan.gate_count(), c.len());
        assert!(plan.chunk_visits() >= partition(&c, &cfg(3, 1)).chunk_visits());
    }

    #[test]
    fn chunk_visit_accounting() {
        let c = library::ghz(8);
        let plan = partition(&c, &cfg(4, 1));
        assert_eq!(plan.chunk_count(), 16);
        assert_eq!(plan.chunk_visits(), plan.stages.len() * 16);
        assert_eq!(plan.chunk_visits_per_gate_baseline(), c.len() * 16);
    }

    #[test]
    fn empty_circuit_has_no_stages() {
        let c = Circuit::new(5);
        let plan = partition(&c, &cfg(2, 1));
        assert!(plan.stages.is_empty());
        assert_eq!(plan.gate_count(), 0);
    }

    #[test]
    fn chunk_exchange_pairs_cover_only_high_high_swaps() {
        // chunk_bits = 4, 16 chunks: swapping positions 5 and 7 transposes
        // chunk-index bits 1 and 3 — chunks with (bit1, bit3) = (1, 0)
        // exchange with their (0, 1) partners; everything else is fixed.
        let t = RemapTransition {
            swaps: vec![(5, 7)],
        };
        let pairs = t.chunk_exchange_pairs(4, 16);
        assert_eq!(
            pairs,
            vec![
                (0b0010, 0b1000),
                (0b0011, 0b1001),
                (0b0110, 0b1100),
                (0b0111, 0b1101)
            ]
        );
        // Each chunk appears at most once across the swap's pairs.
        let mut seen: Vec<usize> = pairs.iter().flat_map(|&(i, j)| [i, j]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 2 * pairs.len());
        // High-low and low-low transpositions keep chunk identities.
        for swaps in [vec![(1u32, 6u32)], vec![(0, 2)]] {
            let t = RemapTransition { swaps };
            assert!(t.chunk_exchange_pairs(4, 16).is_empty());
        }
    }
}
