//! The MEMQSIM **offline stage**: circuit partitioning for a chunked state
//! vector.
//!
//! The state vector is split into `2^(n-c)` chunks of `2^c` amplitudes
//! (`c = chunk_bits`). A gate whose *pairing* qubits (see
//! [`Gate::pairing_qubits`]) are all `< c` can be applied to each chunk
//! independently ("local"). A pairing qubit `q >= c` couples chunk `k` with
//! chunk `k ^ 2^(q-c)`, so the engine must co-schedule groups of chunks.
//!
//! The planner greedily packs consecutive gates into [`Stage`]s whose union
//! of high pairing qubits stays within `max_high_qubits`, bounding each
//! stage's working set to `2^|H|` chunks. Applying *all* gates of a stage
//! per decompress→recompress round is the paper's answer to design
//! challenge (2): compression frequency drops from per-gate to per-stage.

use crate::gate::Gate;
use crate::Circuit;

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// log2 of amplitudes per chunk.
    pub chunk_bits: u32,
    /// Maximum number of distinct high (cross-chunk) pairing qubits per
    /// stage; the stage working set is `2^max_high_qubits` chunks.
    pub max_high_qubits: u32,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            chunk_bits: 16,
            max_high_qubits: 1,
        }
    }
}

/// One stage of the plan: a consecutive run of gates whose cross-chunk
/// coupling is limited to `high_qubits`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// The gates, in original circuit order.
    pub gates: Vec<Gate>,
    /// Sorted, deduplicated global indices of pairing qubits `>= chunk_bits`
    /// used by the gates of this stage. Empty for fully chunk-local stages.
    pub high_qubits: Vec<u32>,
}

impl Stage {
    /// True if every gate applies within single chunks.
    pub fn is_local(&self) -> bool {
        self.high_qubits.is_empty()
    }

    /// Number of chunks that must be co-resident to execute this stage
    /// (`2^|high_qubits|`).
    pub fn group_size(&self) -> usize {
        1usize << self.high_qubits.len()
    }
}

/// A full execution plan for a circuit against a chunked state vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Register width the plan was built for.
    pub n_qubits: u32,
    /// Chunk size exponent.
    pub chunk_bits: u32,
    /// The stages, in execution order.
    pub stages: Vec<Stage>,
}

impl Plan {
    /// Total number of gates across all stages.
    pub fn gate_count(&self) -> usize {
        self.stages.iter().map(|s| s.gates.len()).sum()
    }

    /// Number of chunks of the state vector (`2^(n - chunk_bits)`; 1 when
    /// the register fits in one chunk).
    pub fn chunk_count(&self) -> usize {
        1usize << self.n_qubits.saturating_sub(self.chunk_bits)
    }

    /// Total chunk visits over the whole plan: each stage decompresses and
    /// recompresses every chunk exactly once (in groups of
    /// `stage.group_size()`). This is the quantity the paper's challenge (2)
    /// minimizes.
    pub fn chunk_visits(&self) -> usize {
        self.stages.len() * self.chunk_count()
    }

    /// Per-gate baseline (Wu et al.\[6\]): one stage per gate. Used by the
    /// granularity ablation.
    pub fn chunk_visits_per_gate_baseline(&self) -> usize {
        self.gate_count() * self.chunk_count()
    }
}

/// Partitions `circuit` into stages per `cfg`.
///
/// Invariants (property-tested): concatenating `stages[i].gates` in order
/// reproduces `circuit.gates()` exactly; every stage satisfies
/// `|high_qubits| <= max_high_qubits`; `high_qubits` matches the gates'
/// actual high pairing qubits.
///
/// # Panics
/// Panics if a single gate needs more than `max_high_qubits` high pairing
/// qubits on its own (e.g. a `Swap` across two high qubits with
/// `max_high_qubits == 1`) — callers should raise `max_high_qubits` or
/// lower `chunk_bits`. With `max_high_qubits >= 2` every gate in this
/// crate's gate set is schedulable.
pub fn partition(circuit: &Circuit, cfg: &PartitionConfig) -> Plan {
    let c = cfg.chunk_bits;
    let mut stages: Vec<Stage> = Vec::new();
    let mut cur_gates: Vec<Gate> = Vec::new();
    let mut cur_high: Vec<u32> = Vec::new();

    for g in circuit.gates() {
        let mut gate_high: Vec<u32> = g.pairing_qubits().into_iter().filter(|&q| q >= c).collect();
        gate_high.sort_unstable();
        gate_high.dedup();
        assert!(
            gate_high.len() <= cfg.max_high_qubits as usize,
            "gate {g} needs {} high qubits but max_high_qubits is {}",
            gate_high.len(),
            cfg.max_high_qubits
        );
        // Union if it fits, else start a new stage.
        let mut union = cur_high.clone();
        for &q in &gate_high {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        union.sort_unstable();
        if union.len() <= cfg.max_high_qubits as usize || cur_gates.is_empty() {
            cur_high = union;
            cur_gates.push(g.clone());
        } else {
            stages.push(Stage {
                gates: std::mem::take(&mut cur_gates),
                high_qubits: std::mem::take(&mut cur_high),
            });
            cur_gates.push(g.clone());
            cur_high = gate_high;
        }
    }
    if !cur_gates.is_empty() {
        stages.push(Stage {
            gates: cur_gates,
            high_qubits: cur_high,
        });
    }
    Plan {
        n_qubits: circuit.n_qubits(),
        chunk_bits: c,
        stages,
    }
}

/// Builds the degenerate per-gate plan (one stage per gate) — the
/// compression-around-every-gate baseline of Wu et al.\[6\].
pub fn partition_per_gate(circuit: &Circuit, chunk_bits: u32) -> Plan {
    let mut stages = Vec::with_capacity(circuit.len());
    for g in circuit.gates() {
        let mut high: Vec<u32> = g
            .pairing_qubits()
            .into_iter()
            .filter(|&q| q >= chunk_bits)
            .collect();
        high.sort_unstable();
        high.dedup();
        stages.push(Stage {
            gates: vec![g.clone()],
            high_qubits: high,
        });
    }
    Plan {
        n_qubits: circuit.n_qubits(),
        chunk_bits,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn cfg(chunk_bits: u32, max_high: u32) -> PartitionConfig {
        PartitionConfig {
            chunk_bits,
            max_high_qubits: max_high,
        }
    }

    fn assert_plan_invariants(plan: &Plan, circuit: &Circuit, max_high: u32) {
        // Gate order preserved.
        let flat: Vec<&Gate> = plan.stages.iter().flat_map(|s| s.gates.iter()).collect();
        assert_eq!(flat.len(), circuit.len());
        for (a, b) in flat.iter().zip(circuit.gates()) {
            assert_eq!(**a, *b);
        }
        for s in &plan.stages {
            assert!(s.high_qubits.len() <= max_high as usize);
            assert!(!s.gates.is_empty());
            // high_qubits covers exactly the gates' high pairing qubits.
            let mut want: Vec<u32> = s
                .gates
                .iter()
                .flat_map(|g| g.pairing_qubits())
                .filter(|&q| q >= plan.chunk_bits)
                .collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(s.high_qubits, want);
        }
    }

    #[test]
    fn all_local_circuit_is_one_stage() {
        let c = library::ghz(6);
        // chunk_bits = 6 means the whole register is one chunk.
        let plan = partition(&c, &cfg(6, 1));
        assert_eq!(plan.stages.len(), 1);
        assert!(plan.stages[0].is_local());
        assert_eq!(plan.chunk_count(), 1);
        assert_plan_invariants(&plan, &c, 1);
    }

    #[test]
    fn ghz_with_small_chunks_stages_by_high_qubit() {
        let c = library::ghz(8);
        let plan = partition(&c, &cfg(4, 1));
        // CX gates with target >= 4 each introduce one high qubit; CX(3,4)
        // pairs on qubit 4, CX(4,5) on 5, etc. — distinct highs force
        // separate stages.
        assert!(plan.stages.len() >= 4, "{}", plan.stages.len());
        assert_plan_invariants(&plan, &c, 1);
    }

    #[test]
    fn diagonal_gates_never_go_high() {
        let n = 8;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n {
            c.rz(q, 0.1);
        }
        c.cz(0, 7).cp(6, 7, 0.5).rzz(5, 7, 0.3);
        let plan = partition(&c, &cfg(2, 1));
        assert_eq!(plan.stages.len(), 1, "everything is chunk-local");
        assert!(plan.stages[0].is_local());
    }

    #[test]
    fn mcu_controls_do_not_count_as_high() {
        let mut c = Circuit::new(10);
        c.mcx(&[8, 9], 0); // controls high, target local
        let plan = partition(&c, &cfg(4, 1));
        assert_eq!(plan.stages.len(), 1);
        assert!(plan.stages[0].is_local());
        // But a high *target* does pair.
        let mut c2 = Circuit::new(10);
        c2.mcx(&[0, 1], 9);
        let plan2 = partition(&c2, &cfg(4, 1));
        assert_eq!(plan2.stages[0].high_qubits, vec![9]);
    }

    #[test]
    fn qft_plan_invariants_hold() {
        // (chunk_bits=2, max_high=1) is invalid for qft(8): swap(2,5) pairs
        // two high qubits — covered by the should_panic test below.
        for (chunk_bits, max_high) in [(2u32, 2u32), (4, 1), (4, 2), (6, 1), (6, 2)] {
            let c = library::qft(8);
            let plan = partition(&c, &cfg(chunk_bits, max_high));
            assert_plan_invariants(&plan, &c, max_high);
        }
    }

    #[test]
    fn larger_max_high_never_increases_stage_count() {
        let c = library::random_circuit(10, 12, 3);
        let s1 = partition(&c, &cfg(4, 1)).stages.len();
        let s2 = partition(&c, &cfg(4, 2)).stages.len();
        let s3 = partition(&c, &cfg(4, 3)).stages.len();
        assert!(s2 <= s1);
        assert!(s3 <= s2);
    }

    #[test]
    fn larger_chunks_never_increase_stage_count() {
        let c = library::qft(10);
        let a = partition(&c, &cfg(2, 2)).stages.len();
        let b = partition(&c, &cfg(5, 2)).stages.len();
        let d = partition(&c, &cfg(9, 2)).stages.len();
        assert!(b <= a);
        assert!(d <= b);
    }

    #[test]
    #[should_panic]
    fn swap_across_two_high_qubits_needs_max_high_2() {
        let mut c = Circuit::new(10);
        c.swap(8, 9);
        let _ = partition(&c, &cfg(4, 1));
    }

    #[test]
    fn swap_across_two_high_qubits_ok_with_max_high_2() {
        let mut c = Circuit::new(10);
        c.swap(8, 9);
        let plan = partition(&c, &cfg(4, 2));
        assert_eq!(plan.stages[0].high_qubits, vec![8, 9]);
        assert_eq!(plan.stages[0].group_size(), 4);
    }

    #[test]
    fn per_gate_baseline_has_one_stage_per_gate() {
        let c = library::qft(6);
        let plan = partition_per_gate(&c, 3);
        assert_eq!(plan.stages.len(), c.len());
        assert_eq!(plan.gate_count(), c.len());
        assert!(plan.chunk_visits() >= partition(&c, &cfg(3, 1)).chunk_visits());
    }

    #[test]
    fn chunk_visit_accounting() {
        let c = library::ghz(8);
        let plan = partition(&c, &cfg(4, 1));
        assert_eq!(plan.chunk_count(), 16);
        assert_eq!(plan.chunk_visits(), plan.stages.len() * 16);
        assert_eq!(plan.chunk_visits_per_gate_baseline(), c.len() * 16);
    }

    #[test]
    fn empty_circuit_has_no_stages() {
        let c = Circuit::new(5);
        let plan = partition(&c, &cfg(2, 1));
        assert!(plan.stages.is_empty());
        assert_eq!(plan.gate_count(), 0);
    }
}
