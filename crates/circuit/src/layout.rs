//! Logical→physical qubit layouts and the greedy remap-planning pass.
//!
//! Gate *reordering* ([`crate::reorder`]) shuffles commuting gates but can
//! never make a genuinely nonlocal gate local. Qubit *relabeling* can: a
//! layout permutation assigns each logical qubit a physical bit position in
//! the stored state, and a **remap transition** between stages physically
//! swaps two bit positions so that upcoming hot cross-chunk qubits land in
//! chunk-local positions. The three transposition classes have very
//! different costs:
//!
//! * **high↔high** (both positions ≥ `chunk_bits`): a pure chunk-index
//!   relabel — pairs of chunks exchange wholesale, no intra-chunk movement,
//!   and a payload-capable store moves *compressed* bytes without a decode
//!   (zero chunk visits).
//! * **high↔low**: one full sweep — every chunk pair along the high bit is
//!   gathered into one buffer and a strided intra-chunk gather swaps the
//!   low bit with the chunk-selector bit (one visit per chunk).
//! * **low↔low**: an intra-chunk bit swap per chunk (one visit per chunk).
//!
//! [`plan_greedy`] builds a [`Plan`] that may insert transitions between
//! stages (greedy cost model: remap cost = one full-sweep pass, benefit =
//! chunk visits saved over a lookahead window) and absorbs `Swap` gates
//! whose physical qubits are both high into the layout for free. The final layout is
//! restored to identity by the plan's epilogue transition, so a greedy run
//! is bit-identical to a fixed-layout run. If the greedy plan does not
//! strictly beat the fixed plan on total chunk visits (stage visits plus
//! transition costs), the fixed plan is returned unchanged — greedy never
//! loses.

use crate::gate::Gate;
use crate::partition::{partition, PartitionConfig, Plan, RemapTransition, Stage};
use crate::Circuit;

/// How far ahead (in gates) the greedy pass looks when valuing a swap.
const LOOKAHEAD: usize = 96;

/// A logical→physical qubit layout: `phys_of(q)` is the bit position in the
/// stored state that carries logical qubit `q`.
///
/// The empty layout is the identity for any register width (the default for
/// plans built without a layout pass).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QubitLayout {
    phys_of_logical: Vec<u32>,
}

impl QubitLayout {
    /// The explicit identity layout on `n` qubits.
    pub fn identity(n: u32) -> QubitLayout {
        QubitLayout {
            phys_of_logical: (0..n).collect(),
        }
    }

    /// Physical bit position of logical qubit `q`.
    pub fn phys(&self, q: u32) -> u32 {
        if self.phys_of_logical.is_empty() {
            q
        } else {
            self.phys_of_logical[q as usize]
        }
    }

    /// True if every logical qubit sits at its own position.
    pub fn is_identity(&self) -> bool {
        self.phys_of_logical
            .iter()
            .enumerate()
            .all(|(i, &p)| p == i as u32)
    }

    /// Logical qubit currently stored at physical position `p`.
    pub fn logical_at(&self, p: u32) -> u32 {
        if self.phys_of_logical.is_empty() {
            return p;
        }
        self.phys_of_logical
            .iter()
            .position(|&x| x == p)
            .expect("layout is a permutation") as u32
    }

    /// Exchanges the logical qubits stored at physical positions `a` and
    /// `b` (the effect of executing a remap transposition `(a, b)`).
    pub fn swap_physical(&mut self, a: u32, b: u32) {
        if self.phys_of_logical.is_empty() {
            panic!("cannot mutate the implicit identity layout; use QubitLayout::identity(n)");
        }
        let la = self.logical_at(a) as usize;
        let lb = self.logical_at(b) as usize;
        self.phys_of_logical[la] = b;
        self.phys_of_logical[lb] = a;
    }

    /// Folds a logical `Swap(qa, qb)` gate into the layout: the two logical
    /// qubits exchange physical positions with **no data movement** (the
    /// swap's basis permutation is deferred into the relabeling).
    pub fn absorb_logical_swap(&mut self, qa: u32, qb: u32) {
        if self.phys_of_logical.is_empty() {
            panic!("cannot mutate the implicit identity layout; use QubitLayout::identity(n)");
        }
        self.phys_of_logical.swap(qa as usize, qb as usize);
    }

    /// Rewrites a gate's logical qubit indices into physical positions.
    /// `Mcu` controls are re-sorted so the gate stays valid.
    pub fn map_gate(&self, g: &Gate) -> Gate {
        use Gate::*;
        let m = |q: u32| self.phys(q);
        match g {
            H(q) => H(m(*q)),
            X(q) => X(m(*q)),
            Y(q) => Y(m(*q)),
            Z(q) => Z(m(*q)),
            S(q) => S(m(*q)),
            Sdg(q) => Sdg(m(*q)),
            T(q) => T(m(*q)),
            Tdg(q) => Tdg(m(*q)),
            Sx(q) => Sx(m(*q)),
            Sxdg(q) => Sxdg(m(*q)),
            Rx(q, t) => Rx(m(*q), *t),
            Ry(q, t) => Ry(m(*q), *t),
            Rz(q, t) => Rz(m(*q), *t),
            P(q, l) => P(m(*q), *l),
            U3(q, t, p, l) => U3(m(*q), *t, *p, *l),
            U1q(q, u) => U1q(m(*q), *u),
            Cx(c, t) => Cx(m(*c), m(*t)),
            Cy(c, t) => Cy(m(*c), m(*t)),
            Cz(a, b) => Cz(m(*a), m(*b)),
            Cp(a, b, l) => Cp(m(*a), m(*b), *l),
            Swap(a, b) => Swap(m(*a), m(*b)),
            Rzz(a, b, t) => Rzz(m(*a), m(*b), *t),
            U2q(a, b, u) => U2q(m(*a), m(*b), *u),
            Mcu {
                controls,
                target,
                u,
            } => {
                let mut controls: Vec<u32> = controls.iter().map(|&c| m(c)).collect();
                controls.sort_unstable();
                Mcu {
                    controls,
                    target: m(*target),
                    u: *u,
                }
            }
        }
    }

    /// The physical transpositions that move the stored state from this
    /// layout back to identity, in application order. High positions are
    /// fixed first so that logical qubits already among the high positions
    /// resolve as free high↔high chunk exchanges; the low↔high crossings
    /// that genuinely moved data pay their sweep here.
    pub fn restore_to_identity(&self, chunk_bits: u32) -> Vec<(u32, u32)> {
        if self.phys_of_logical.is_empty() {
            return Vec::new();
        }
        let n = self.phys_of_logical.len() as u32;
        let mut work = self.clone();
        let mut swaps = Vec::new();
        // Physical position p must end up holding logical p. Walk high
        // positions first (descending), then low.
        let order = (chunk_bits..n).rev().chain(0..chunk_bits);
        for p in order {
            if work.logical_at(p) == p {
                continue;
            }
            let from = work.phys(p); // where logical p currently sits
            swaps.push((from.min(p), from.max(p)));
            work.swap_physical(from, p);
        }
        debug_assert!(work.is_identity());
        swaps
    }
}

/// Sorted, deduplicated physical high pairing qubits of a physical-space
/// gate.
fn gate_high(g: &Gate, chunk_bits: u32) -> Vec<u32> {
    let mut high: Vec<u32> = g
        .pairing_qubits()
        .into_iter()
        .filter(|&q| q >= chunk_bits)
        .collect();
    high.sort_unstable();
    high.dedup();
    high
}

/// Counts the stages the greedy partitioner would need for `gates` (logical
/// space) under `layout`, with `Swap` absorption applied the same way
/// [`plan_greedy`] applies it. Returns `None` if some single gate would
/// exceed `max_high` under this layout (the candidate is unschedulable).
fn count_stages(
    gates: &[Gate],
    layout: &QubitLayout,
    chunk_bits: u32,
    max_high: u32,
) -> Option<usize> {
    let mut layout = layout.clone();
    let mut stages = 0usize;
    let mut cur_high: Vec<u32> = Vec::new();
    let mut cur_open = false;
    for g in gates {
        if let Gate::Swap(a, b) = g {
            let (pa, pb) = (layout.phys(*a), layout.phys(*b));
            if pa.min(pb) >= chunk_bits {
                layout.absorb_logical_swap(*a, *b);
                continue;
            }
        }
        let phys = layout.map_gate(g);
        let high = gate_high(&phys, chunk_bits);
        if high.len() > max_high as usize {
            return None;
        }
        let mut union = cur_high.clone();
        for &q in &high {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        if !cur_open || union.len() <= max_high as usize {
            cur_high = union;
            if !cur_open {
                stages += 1;
                cur_open = true;
            }
        } else {
            stages += 1;
            cur_high = high;
        }
    }
    Some(stages)
}

/// Pairing-occurrence histogram over physical positions for a window of
/// logical gates under `layout` (Swap gates that would be absorbed are
/// tracked through the evolving layout, not counted).
fn pairing_histogram(gates: &[Gate], layout: &QubitLayout, n: u32, chunk_bits: u32) -> Vec<usize> {
    let mut layout = layout.clone();
    let mut counts = vec![0usize; n as usize];
    for g in gates {
        if let Gate::Swap(a, b) = g {
            let (pa, pb) = (layout.phys(*a), layout.phys(*b));
            if pa.min(pb) >= chunk_bits {
                layout.absorb_logical_swap(*a, *b);
                continue;
            }
        }
        let phys = layout.map_gate(g);
        for q in phys.pairing_qubits() {
            counts[q as usize] += 1;
        }
    }
    counts
}

/// Best single high↔low transposition for the window, by simulated stage
/// savings: returns `(low, high, stages_saved)` when some swap saves
/// strictly more chunk visits than the one full sweep it costs.
fn best_swap(
    window: &[Gate],
    rest: &[Gate],
    layout: &QubitLayout,
    n: u32,
    chunk_bits: u32,
    max_high: u32,
) -> Option<(u32, u32, usize)> {
    let base_stages = count_stages(window, layout, chunk_bits, max_high)?;
    let hist = pairing_histogram(window, layout, n, chunk_bits);
    // Hot high positions (most pairing work) and cold low positions
    // (least), a handful of each — candidate pairs are their product.
    let mut highs: Vec<u32> = (chunk_bits..n).filter(|&p| hist[p as usize] > 0).collect();
    highs.sort_by_key(|&p| std::cmp::Reverse(hist[p as usize]));
    highs.truncate(3);
    let mut lows: Vec<u32> = (0..chunk_bits).collect();
    lows.sort_by_key(|&p| hist[p as usize]);
    lows.truncate(3);

    let mut best: Option<(u32, u32, usize)> = None;
    for &h in &highs {
        for &l in &lows {
            let mut cand = layout.clone();
            cand.swap_physical(l, h);
            // Every remaining gate must stay schedulable under the new
            // labels, not just the window.
            let Some(stages) = count_stages(window, &cand, chunk_bits, max_high) else {
                continue;
            };
            if count_stages(rest, &cand, chunk_bits, max_high).is_none() {
                continue;
            }
            let saved = base_stages.saturating_sub(stages);
            // Benefit is `saved` full-sweep stage visits; cost is the one
            // full-sweep gather pass the high↔low remap itself takes.
            if saved > 1 && best.map(|(_, _, s)| saved > s).unwrap_or(true) {
                best = Some((l, h, saved));
            }
        }
    }
    best
}

/// Builds a layout-aware plan for `circuit`: greedy remap transitions
/// between stages, `Swap`-gate absorption into the layout, and an epilogue
/// transition restoring identity. Falls back to the fixed-layout
/// [`partition`] plan whenever greedy does not strictly reduce total chunk
/// visits, so the returned plan never visits more chunks than the fixed
/// one.
pub fn plan_greedy(circuit: &Circuit, cfg: &PartitionConfig) -> Plan {
    let fixed = partition(circuit, cfg);
    let c = cfg.chunk_bits;
    let n = circuit.n_qubits();
    if n <= c || circuit.is_empty() {
        return fixed;
    }

    let gates: Vec<Gate> = circuit.gates().to_vec();
    let mut layout = QubitLayout::identity(n);
    let mut stages: Vec<Stage> = Vec::new();
    let mut pos = 0usize;
    while pos < gates.len() {
        // Absorb any leading Swap gates whose physical qubits are both high
        // — a pure chunk relabel, free to execute and free to restore; a free
        // relabel instead of a cross-chunk stage.
        if let Gate::Swap(a, b) = &gates[pos] {
            let (pa, pb) = (layout.phys(*a), layout.phys(*b));
            if pa.min(pb) >= c {
                layout.absorb_logical_swap(*a, *b);
                pos += 1;
                continue;
            }
        }

        // Value remap transpositions at this stage boundary.
        let mut swaps: Vec<(u32, u32)> = Vec::new();
        loop {
            let window_end = (pos + LOOKAHEAD).min(gates.len());
            match best_swap(
                &gates[pos..window_end],
                &gates[window_end..],
                &layout,
                n,
                c,
                cfg.max_high_qubits,
            ) {
                Some((l, h, _)) if swaps.len() < n as usize => {
                    layout.swap_physical(l, h);
                    swaps.push((l, h));
                }
                _ => break,
            }
        }

        // Pack one stage under the (possibly updated) layout.
        let mut stage_gates: Vec<Gate> = Vec::new();
        let mut cur_high: Vec<u32> = Vec::new();
        while pos < gates.len() {
            let g = &gates[pos];
            if let Gate::Swap(a, b) = g {
                let (pa, pb) = (layout.phys(*a), layout.phys(*b));
                if pa.min(pb) >= c {
                    // Absorption point: close the stage here so the next
                    // boundary re-evaluates under the new labels.
                    break;
                }
            }
            let phys = layout.map_gate(g);
            let high = gate_high(&phys, c);
            assert!(
                high.len() <= cfg.max_high_qubits as usize,
                "gate {phys} needs {} high qubits under the layout but max_high_qubits is {}",
                high.len(),
                cfg.max_high_qubits
            );
            let mut union = cur_high.clone();
            for &q in &high {
                if !union.contains(&q) {
                    union.push(q);
                }
            }
            union.sort_unstable();
            if union.len() <= cfg.max_high_qubits as usize || stage_gates.is_empty() {
                cur_high = union;
                stage_gates.push(phys);
                pos += 1;
            } else {
                break;
            }
        }
        if stage_gates.is_empty() {
            continue; // the boundary only absorbed swaps
        }
        let mut stage = Stage::new(stage_gates, cur_high);
        if !swaps.is_empty() {
            stage.transition = Some(RemapTransition { swaps });
        }
        stage.layout = layout.clone();
        stages.push(stage);
    }

    let restore = layout.restore_to_identity(c);
    let epilogue = if restore.is_empty() {
        None
    } else {
        Some(RemapTransition { swaps: restore })
    };
    let mut greedy = Plan {
        n_qubits: n,
        chunk_bits: c,
        stages,
        epilogue,
        layout_visits_saved: 0,
    };
    let fixed_cost = fixed.chunk_visits();
    let greedy_cost = greedy.chunk_visits();
    if greedy.remap_passes() > 0 && greedy_cost < fixed_cost {
        greedy.layout_visits_saved = fixed_cost - greedy_cost;
        greedy
    } else {
        fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn cfg(chunk_bits: u32, max_high: u32) -> PartitionConfig {
        PartitionConfig {
            chunk_bits,
            max_high_qubits: max_high,
        }
    }

    /// A circuit the reorder pass cannot improve (shared non-diagonal
    /// control qubit) but relabeling collapses: three rotating high targets
    /// with max_high 2, and cold low qubits that never pair.
    fn rotating_high_targets(n: u32, rounds: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..rounds {
            c.cx(0, n - 1);
            c.cx(0, n - 2);
            c.cx(0, n - 3);
        }
        c
    }

    #[test]
    fn identity_layout_maps_gates_unchanged() {
        let l = QubitLayout::identity(6);
        assert!(l.is_identity());
        assert_eq!(l.map_gate(&Gate::Cx(1, 4)), Gate::Cx(1, 4));
        assert_eq!(QubitLayout::default().phys(3), 3);
        assert!(QubitLayout::default().is_identity());
    }

    #[test]
    fn swap_physical_round_trips() {
        let mut l = QubitLayout::identity(8);
        l.swap_physical(2, 6);
        assert_eq!(l.phys(2), 6);
        assert_eq!(l.phys(6), 2);
        assert_eq!(l.logical_at(6), 2);
        assert_eq!(l.map_gate(&Gate::H(2)), Gate::H(6));
        l.swap_physical(2, 6);
        assert!(l.is_identity());
    }

    #[test]
    fn absorbed_swap_exchanges_logical_positions() {
        let mut l = QubitLayout::identity(8);
        l.absorb_logical_swap(1, 7);
        assert_eq!(l.phys(1), 7);
        assert_eq!(l.phys(7), 1);
        // Mcu controls stay sorted after mapping.
        let g = Gate::mcx(&[1, 3], 5);
        let mapped = l.map_gate(&g);
        if let Gate::Mcu { controls, .. } = &mapped {
            assert_eq!(controls, &vec![3, 7]);
        } else {
            panic!("expected Mcu");
        }
        assert!(mapped.validate(8).is_ok());
    }

    #[test]
    fn restore_prefers_high_high_exchanges() {
        // A permutation with a pure high-high component: logical 5 and 6
        // swapped (both >= chunk_bits 4), plus a low-high crossing.
        let mut l = QubitLayout::identity(8);
        l.absorb_logical_swap(5, 6);
        l.absorb_logical_swap(1, 7);
        let swaps = l.restore_to_identity(4);
        // At least one restoring transposition is high-high (free).
        assert!(swaps.iter().any(|&(a, b)| a >= 4 && b >= 4), "{swaps:?}");
        // Applying them returns the layout to identity.
        let mut check = l.clone();
        for &(a, b) in &swaps {
            check.swap_physical(a, b);
        }
        assert!(check.is_identity());
    }

    #[test]
    fn greedy_collapses_rotating_high_targets() {
        let c = rotating_high_targets(10, 6);
        let pcfg = cfg(5, 2);
        let fixed = partition(&c, &pcfg);
        let greedy = plan_greedy(&c, &pcfg);
        assert!(greedy.remap_passes() > 0, "no remap inserted");
        assert!(
            greedy.chunk_visits() < fixed.chunk_visits(),
            "greedy {} vs fixed {}",
            greedy.chunk_visits(),
            fixed.chunk_visits()
        );
        assert!(greedy.layout_visits_saved > 0);
        // Every stage's layout is carried, and the epilogue restores it.
        let last = greedy.stages.last().unwrap();
        if last.layout.is_identity() {
            assert!(greedy.epilogue.is_none());
        } else {
            assert!(greedy.epilogue.is_some());
        }
    }

    #[test]
    fn greedy_never_visits_more_chunks_than_fixed_on_the_suite() {
        for c in library::standard_suite(8) {
            for chunk_bits in [3u32, 5] {
                let pcfg = cfg(chunk_bits, 2);
                let fixed = partition(&c, &pcfg);
                let greedy = plan_greedy(&c, &pcfg);
                assert!(
                    greedy.chunk_visits() <= fixed.chunk_visits(),
                    "{} cb={chunk_bits}: greedy {} > fixed {}",
                    c.name(),
                    greedy.chunk_visits(),
                    fixed.chunk_visits()
                );
                // The soundness coupling the engine counters rely on.
                if greedy.remap_passes() > 0 {
                    assert!(greedy.layout_visits_saved > 0, "{}", c.name());
                }
            }
        }
    }

    #[test]
    fn qft_swap_network_is_absorbed() {
        // QFT ends in a Swap reversal network; the high swaps should fold
        // into the layout instead of occupying cross-chunk stages.
        let c = library::qft(10);
        let pcfg = cfg(4, 2);
        let fixed = partition(&c, &pcfg);
        let greedy = plan_greedy(&c, &pcfg);
        assert!(greedy.chunk_visits() < fixed.chunk_visits());
        assert!(greedy.gate_count() < fixed.gate_count(), "swaps absorbed");
        assert!(greedy.epilogue.is_some());
    }

    #[test]
    fn single_chunk_and_empty_circuits_stay_fixed() {
        let empty = Circuit::new(5);
        let plan = plan_greedy(&empty, &cfg(2, 1));
        assert!(plan.stages.is_empty());
        assert_eq!(plan.remap_passes(), 0);
        let tiny = library::ghz(4);
        let plan = plan_greedy(&tiny, &cfg(4, 1));
        assert_eq!(plan.remap_passes(), 0);
    }

    #[test]
    fn transition_costs_are_classified_by_position() {
        let t = RemapTransition {
            swaps: vec![(5, 7), (1, 6), (0, 2)],
        };
        // chunk_bits 4, 8 chunks: high-high free, high-low and low-low one
        // visit per chunk.
        assert_eq!(t.visit_cost(4, 8), 16);
        let hh = RemapTransition {
            swaps: vec![(4, 7)],
        };
        assert_eq!(hh.visit_cost(4, 8), 0);
    }
}
