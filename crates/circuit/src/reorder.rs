//! Commutation-aware gate reordering for chunk locality.
//!
//! The greedy stage partitioner ([`crate::partition`]) packs *consecutive*
//! gates; interleavings like `H(high); Rz(low); H(high')` force stage
//! breaks that a legal reorder avoids. This pass sinks each gate leftward
//! past gates it provably commutes with until it lands next to a gate with
//! the same cross-chunk signature, clustering same-signature runs so the
//! partitioner emits fewer stages — less decompress/recompress traffic for
//! the identical circuit unitary.
//!
//! Commutation is decided *conservatively* (sound, not complete):
//!
//! * gates on disjoint qubit sets commute;
//! * diagonal gates commute with each other regardless of overlap;
//! * a diagonal gate commutes with a controlled gate that only *controls*
//!   on the shared qubits (controls are diagonal on their qubit).

use crate::gate::Gate;
use crate::Circuit;

/// True if the reordering pass may swap `a` and `b` (conservative).
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    let qa = a.qubits();
    let qb = b.qubits();
    if qa.iter().all(|q| !qb.contains(q)) {
        return true; // disjoint supports
    }
    if a.is_diagonal() && b.is_diagonal() {
        return true; // simultaneous eigenbasis
    }
    // Diagonal vs controlled: fine when every shared qubit is only a
    // *control* of the non-diagonal gate (controls act diagonally).
    if a.is_diagonal() {
        return shared_only_controls(b, &qa);
    }
    if b.is_diagonal() {
        return shared_only_controls(a, &qb);
    }
    false
}

/// True if every qubit of `gate` that appears in `other_qubits` is a
/// control (not paired) for `gate`.
fn shared_only_controls(gate: &Gate, other_qubits: &[u32]) -> bool {
    let pairing = gate.pairing_qubits();
    gate.qubits()
        .iter()
        .filter(|q| other_qubits.contains(q))
        .all(|q| !pairing.contains(q))
}

/// The cross-chunk signature of a gate: its sorted high pairing qubits.
fn signature(gate: &Gate, chunk_bits: u32) -> Vec<u32> {
    let mut sig: Vec<u32> = gate
        .pairing_qubits()
        .into_iter()
        .filter(|&q| q >= chunk_bits)
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// Reorders `circuit` (unitary-preserving) so gates sharing a cross-chunk
/// signature cluster together for the given chunk size.
pub fn reorder_for_locality(circuit: &Circuit, chunk_bits: u32) -> Circuit {
    let mut out: Vec<(Gate, Vec<u32>)> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let sig = signature(gate, chunk_bits);
        // Sink left past commuting gates, looking for a same-signature
        // neighbor to join. The neighbor itself need not commute — the gate
        // is inserted *after* it, preserving their relative order.
        let mut pos = out.len();
        let mut target = None;
        while pos > 0 {
            if out[pos - 1].1 == sig {
                target = Some(pos);
                break;
            }
            if !commutes(gate, &out[pos - 1].0) {
                break;
            }
            pos -= 1;
        }
        let insert_at = target.unwrap_or(out.len());
        out.insert(insert_at, (gate.clone(), sig));
    }
    let mut result = Circuit::named(
        circuit.n_qubits(),
        if circuit.name().is_empty() {
            String::new()
        } else {
            format!("{}_reordered", circuit.name())
        },
    );
    for (g, _) in out {
        result.push(g);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::partition::{partition, PartitionConfig};
    use crate::unitary::run_dense;
    use mq_num::metrics::max_amp_err;

    fn stage_count(c: &Circuit, chunk_bits: u32) -> usize {
        partition(
            c,
            &PartitionConfig {
                chunk_bits,
                max_high_qubits: 2,
            },
        )
        .stages
        .len()
    }

    fn assert_same_unitary(a: &Circuit, b: &Circuit) {
        for start in [0usize, 1, (1 << a.n_qubits()) - 1] {
            let x = run_dense(a, start);
            let y = run_dense(b, start);
            assert!(
                max_amp_err(&x, &y) < 1e-10,
                "reorder changed the state from |{start}>"
            );
        }
    }

    #[test]
    fn commutation_rules() {
        // Disjoint.
        assert!(commutes(&Gate::H(0), &Gate::X(1)));
        assert!(commutes(&Gate::Cx(0, 1), &Gate::Cx(2, 3)));
        // Overlapping non-diagonal: refused.
        assert!(!commutes(&Gate::H(0), &Gate::X(0)));
        assert!(!commutes(&Gate::Cx(0, 1), &Gate::H(1)));
        // Diagonal pair: allowed even on the same qubit.
        assert!(commutes(&Gate::Rz(0, 0.3), &Gate::T(0)));
        assert!(commutes(&Gate::Cz(0, 1), &Gate::Rzz(1, 2, 0.5)));
        // Diagonal vs control-only overlap: allowed.
        assert!(commutes(&Gate::Z(0), &Gate::Cx(0, 1)));
        assert!(commutes(&Gate::Cp(0, 2, 0.1), &Gate::Cx(0, 1)));
        // Diagonal vs paired overlap: refused.
        assert!(!commutes(&Gate::Z(1), &Gate::Cx(0, 1)));
        assert!(!commutes(&Gate::Rz(0, 1.0), &Gate::Swap(0, 1)));
    }

    #[test]
    fn reordering_preserves_unitaries_on_the_suite() {
        for c in library::standard_suite(6) {
            for chunk_bits in [2u32, 4] {
                let r = reorder_for_locality(&c, chunk_bits);
                assert_eq!(r.len(), c.len(), "{}", c.name());
                assert_same_unitary(&c, &r);
            }
        }
    }

    #[test]
    fn reordering_never_increases_stage_count_on_the_suite() {
        for c in library::standard_suite(8) {
            for chunk_bits in [3u32, 5] {
                let before = stage_count(&c, chunk_bits);
                let after = stage_count(&reorder_for_locality(&c, chunk_bits), chunk_bits);
                assert!(
                    after <= before,
                    "{} cb={chunk_bits}: {before} -> {after}",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn interleaved_high_low_gates_cluster() {
        // Rotating H's over three distinct high qubits (only two fit one
        // stage) interleaved with local Rz's: naive partition needs a new
        // stage almost every round; reorder clusters by signature.
        let n = 8u32;
        let chunk_bits = 4;
        let mut c = Circuit::new(n);
        for _ in 0..4 {
            c.h(5);
            c.rz(1, 0.1);
            c.h(6);
            c.rz(2, 0.2);
            c.h(7);
            c.rz(3, 0.3);
        }
        let before = stage_count(&c, chunk_bits);
        let r = reorder_for_locality(&c, chunk_bits);
        let after = stage_count(&r, chunk_bits);
        assert!(after < before, "{before} -> {after}");
        assert_same_unitary(&c, &r);
    }

    #[test]
    fn qaoa_mixer_layers_benefit() {
        // QAOA p=2: cost layers are diagonal (commute with everything
        // diagonal), mixers pair. Reorder clusters the high-mixer gates.
        let n = 10u32;
        let c = library::qaoa_maxcut(n, &library::ring_graph(n), &[0.3, 0.6], &[0.2, 0.5]);
        let before = stage_count(&c, 4);
        let r = reorder_for_locality(&c, 4);
        let after = stage_count(&r, 4);
        assert!(after <= before, "{before} -> {after}");
        assert_same_unitary(&c, &r);
    }

    #[test]
    fn empty_and_single_gate_circuits() {
        let c = Circuit::new(4);
        assert!(reorder_for_locality(&c, 2).is_empty());
        let mut one = Circuit::new(4);
        one.h(3);
        let r = reorder_for_locality(&one, 2);
        assert_eq!(r.gates(), one.gates());
    }
}
