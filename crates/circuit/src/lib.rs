//! # mq-circuit — circuit substrate for the MEMQSIM reproduction
//!
//! Everything about circuits, independent of any simulation backend:
//!
//! * [`gate`] / [`matrix`] — the gate set and its matrix algebra.
//! * [`circuit`] — the flat circuit IR and chainable builder.
//! * [`qasm`] — an OpenQASM 2.0 subset parser and emitter.
//! * [`fusion`] — gate-fusion passes (adjacent single-qubit runs → `U1q`,
//!   absorbing into two-qubit `U2q` blocks).
//! * [`partition`] — the **offline stage** of MEMQSIM: splits a circuit into
//!   stages executable against a chunked state vector with a bounded
//!   cross-chunk working set.
//! * [`reorder`] — commutation-aware gate clustering that reduces the
//!   partitioner's stage count without changing the circuit's unitary.
//! * [`layout`] — logical→physical qubit layouts and the greedy remap
//!   planning pass: relabel qubits between stages so hot cross-chunk gates
//!   become chunk-local (the lever reordering alone cannot pull).
//! * [`analysis`] — locality/access-pattern statistics (paper design
//!   challenge 3).
//! * [`library`] — generators for the workloads used throughout the
//!   evaluation: QFT, Grover, GHZ/W, QAOA, VQE ansatz, Bernstein–Vazirani,
//!   phase estimation, a ripple-carry adder, and random/supremacy-style and
//!   quantum-volume circuits.

//!
//! ## Example
//!
//! ```
//! use mq_circuit::{Circuit, library, partition};
//!
//! // Build a Bell-pair circuit with the chainable builder.
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.depth(), 2);
//!
//! // Or generate a library workload and plan it for 2^4-amplitude chunks.
//! let qft = library::qft(8);
//! let plan = partition::partition(
//!     &qft,
//!     &partition::PartitionConfig { chunk_bits: 4, max_high_qubits: 2 },
//! );
//! assert_eq!(plan.gate_count(), qft.len());
//! ```

pub mod analysis;
pub mod circuit;
pub mod fusion;
pub mod gate;
pub mod layout;
pub mod library;
pub mod matrix;
pub mod partition;
pub mod qasm;
pub mod reorder;
pub mod unitary;

pub use circuit::Circuit;
pub use gate::{Gate, GateError};
pub use matrix::{Mat2, Mat4, MatN};
