//! Small dense complex matrices for gate algebra.
#![allow(clippy::needless_range_loop)] // index loops mirror the math
//!
//! Three tiers: [`Mat2`] (single-qubit, fixed 2x2), [`Mat4`] (two-qubit,
//! fixed 4x4) for the hot kernels, and [`MatN`] (arbitrary `2^k x 2^k`,
//! heap-backed) for fusion products and random-unitary generation. All are
//! row-major.

use mq_num::complex::c64;
use mq_num::Complex64;

/// A 2x2 complex matrix (single-qubit operator), row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2(pub [Complex64; 4]);

/// A 4x4 complex matrix (two-qubit operator), row-major.
///
/// Basis convention: index `i = (b_hi << 1) | b_lo` where `b_lo` is the bit
/// of the gate's *first* qubit argument and `b_hi` of the second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4(pub [Complex64; 16]);

impl Mat2 {
    /// Identity.
    pub const IDENTITY: Mat2 = Mat2([c64(1.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(1.0, 0.0)]);

    /// Builds from rows `[[a, b], [c, d]]`.
    #[inline]
    pub const fn new(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Mat2 {
        Mat2([a, b, c, d])
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        self.0[row * 2 + col]
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let mut out = [Complex64::ZERO; 4];
        for r in 0..2 {
            for c in 0..2 {
                out[r * 2 + c] = self.at(r, 0) * rhs.at(0, c) + self.at(r, 1) * rhs.at(1, c);
            }
        }
        Mat2(out)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        Mat2([
            self.0[0].conj(),
            self.0[2].conj(),
            self.0[1].conj(),
            self.0[3].conj(),
        ])
    }

    /// True if `self * self^dagger ≈ I` within `tol` per element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.mul(&self.adjoint());
        p.approx_eq(&Mat2::IDENTITY, tol)
    }

    /// True if off-diagonal elements are ≈ 0 within `tol`.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        self.0[1].norm() <= tol && self.0[2].norm() <= tol
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Applies to an amplitude pair, returning the updated pair.
    #[inline]
    pub fn apply(&self, a0: Complex64, a1: Complex64) -> (Complex64, Complex64) {
        (
            self.0[0] * a0 + self.0[1] * a1,
            self.0[2] * a0 + self.0[3] * a1,
        )
    }
}

impl Mat4 {
    /// Identity.
    pub fn identity() -> Mat4 {
        let mut m = [Complex64::ZERO; 16];
        for i in 0..4 {
            m[i * 4 + i] = Complex64::ONE;
        }
        Mat4(m)
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        self.0[row * 4 + col]
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [Complex64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc = self.at(r, k).mul_add(rhs.at(k, c), acc);
                }
                out[r * 4 + c] = acc;
            }
        }
        Mat4(out)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = [Complex64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                out[c * 4 + r] = self.at(r, c).conj();
            }
        }
        Mat4(out)
    }

    /// True if unitary within `tol` per element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Mat4::identity(), tol)
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Kronecker product `hi ⊗ lo`: the two-qubit operator that applies `lo`
    /// to the first (low) qubit and `hi` to the second (high) qubit, in this
    /// crate's `(b_hi << 1) | b_lo` basis convention.
    pub fn kron(hi: &Mat2, lo: &Mat2) -> Mat4 {
        let mut out = [Complex64::ZERO; 16];
        for rh in 0..2 {
            for ch in 0..2 {
                for rl in 0..2 {
                    for cl in 0..2 {
                        out[(rh * 2 + rl) * 4 + (ch * 2 + cl)] = hi.at(rh, ch) * lo.at(rl, cl);
                    }
                }
            }
        }
        Mat4(out)
    }

    /// Swaps the roles of the low and high qubit (conjugation by SWAP).
    pub fn swap_qubits(&self) -> Mat4 {
        let perm = [0usize, 2, 1, 3];
        let mut out = [Complex64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                out[perm[r] * 4 + perm[c]] = self.at(r, c);
            }
        }
        Mat4(out)
    }

    /// Applies to a 4-amplitude group.
    #[inline]
    pub fn apply(&self, a: [Complex64; 4]) -> [Complex64; 4] {
        let mut out = [Complex64::ZERO; 4];
        for r in 0..4 {
            let mut acc = Complex64::ZERO;
            for c in 0..4 {
                acc = self.at(r, c).mul_add(a[c], acc);
            }
            out[r] = acc;
        }
        out
    }
}

/// An arbitrary `2^k x 2^k` complex matrix, row-major, heap-backed.
#[derive(Debug, Clone, PartialEq)]
pub struct MatN {
    k: u32,
    data: Vec<Complex64>,
}

impl MatN {
    /// Identity on `k` qubits.
    pub fn identity(k: u32) -> MatN {
        let d = 1usize << k;
        let mut data = vec![Complex64::ZERO; d * d];
        for i in 0..d {
            data[i * d + i] = Complex64::ONE;
        }
        MatN { k, data }
    }

    /// Builds from raw row-major data of length `(2^k)^2`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_data(k: u32, data: Vec<Complex64>) -> MatN {
        let d = 1usize << k;
        assert_eq!(data.len(), d * d, "MatN data length mismatch");
        MatN { k, data }
    }

    /// Number of qubits this operator acts on.
    #[inline]
    pub fn qubits(&self) -> u32 {
        self.k
    }

    /// Matrix dimension `2^k`.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        self.data[row * self.dim() + col]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut Complex64 {
        let d = self.dim();
        &mut self.data[row * d + col]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn mul(&self, rhs: &MatN) -> MatN {
        assert_eq!(self.k, rhs.k, "dimension mismatch");
        let d = self.dim();
        let mut out = vec![Complex64::ZERO; d * d];
        for r in 0..d {
            for kk in 0..d {
                let a = self.at(r, kk);
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..d {
                    out[r * d + c] = a.mul_add(rhs.at(kk, c), out[r * d + c]);
                }
            }
        }
        MatN {
            k: self.k,
            data: out,
        }
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> MatN {
        let d = self.dim();
        let mut out = vec![Complex64::ZERO; d * d];
        for r in 0..d {
            for c in 0..d {
                out[c * d + r] = self.at(r, c).conj();
            }
        }
        MatN {
            k: self.k,
            data: out,
        }
    }

    /// True if unitary within `tol` per element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.mul(&self.adjoint());
        let id = MatN::identity(self.k);
        p.data
            .iter()
            .zip(&id.data)
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Applies to a `2^k`-amplitude group (out-of-place).
    pub fn apply(&self, input: &[Complex64], out: &mut [Complex64]) {
        let d = self.dim();
        assert_eq!(input.len(), d);
        assert_eq!(out.len(), d);
        for r in 0..d {
            let mut acc = Complex64::ZERO;
            for c in 0..d {
                acc = self.at(r, c).mul_add(input[c], acc);
            }
            out[r] = acc;
        }
    }

    /// Haar-ish random unitary built by QR (modified Gram-Schmidt) of a
    /// matrix with independent standard-normal complex entries.
    pub fn random_unitary<R: rand::Rng>(k: u32, rng: &mut R) -> MatN {
        let d = 1usize << k;
        // Box-Muller normals.
        let normal = |rng: &mut R| -> f64 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut cols: Vec<Vec<Complex64>> = (0..d)
            .map(|_| (0..d).map(|_| c64(normal(rng), normal(rng))).collect())
            .collect();
        // Modified Gram-Schmidt over columns.
        for j in 0..d {
            for i in 0..j {
                let proj = mq_num::metrics::inner_product(&cols[i], &cols[j]);
                for r in 0..d {
                    let v = cols[i][r];
                    cols[j][r] -= proj * v;
                }
            }
            let norm = mq_num::metrics::l2_norm(&cols[j]);
            assert!(norm > 1e-12, "degenerate random matrix");
            for r in 0..d {
                cols[j][r] = cols[j][r] / norm;
            }
        }
        let mut data = vec![Complex64::ZERO; d * d];
        for (j, col) in cols.iter().enumerate() {
            for r in 0..d {
                data[r * d + j] = col[r];
            }
        }
        MatN { k, data }
    }
}

impl From<&Mat2> for MatN {
    fn from(m: &Mat2) -> MatN {
        MatN::from_data(1, m.0.to_vec())
    }
}

impl From<&Mat4> for MatN {
    fn from(m: &Mat4) -> MatN {
        MatN::from_data(2, m.0.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> Mat2 {
        Mat2::new(
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ZERO,
        )
    }

    #[test]
    fn mat2_identity_and_mul() {
        let x = pauli_x();
        assert!(x.mul(&x).approx_eq(&Mat2::IDENTITY, TOL));
        assert!(x.mul(&Mat2::IDENTITY).approx_eq(&x, TOL));
        assert!(x.is_unitary(TOL));
    }

    #[test]
    fn mat2_adjoint_of_phase() {
        let s = Mat2::new(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::I,
        );
        let sdg = s.adjoint();
        assert!(s.mul(&sdg).approx_eq(&Mat2::IDENTITY, TOL));
        assert!(s.is_diagonal(TOL));
        assert!(!pauli_x().is_diagonal(TOL));
    }

    #[test]
    fn mat2_apply_pair() {
        let x = pauli_x();
        let (a, b) = x.apply(c64(0.25, 0.0), c64(0.0, 0.5));
        assert!(a.approx_eq(c64(0.0, 0.5), TOL));
        assert!(b.approx_eq(c64(0.25, 0.0), TOL));
    }

    #[test]
    fn mat4_identity_mul_adjoint() {
        let id = Mat4::identity();
        assert!(id.is_unitary(TOL));
        let k = Mat4::kron(&pauli_x(), &Mat2::IDENTITY);
        assert!(k.is_unitary(TOL));
        assert!(k.mul(&k).approx_eq(&Mat4::identity(), TOL));
        assert!(k.adjoint().approx_eq(&k, TOL)); // X ⊗ I is Hermitian
    }

    #[test]
    fn kron_ordering_convention() {
        // X on low qubit, I on high: should map index 0b00 -> 0b01.
        let m = Mat4::kron(&Mat2::IDENTITY, &pauli_x());
        let out = m.apply([
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        assert!(out[1].approx_eq(Complex64::ONE, TOL));
        // X on high qubit: 0b00 -> 0b10.
        let m = Mat4::kron(&pauli_x(), &Mat2::IDENTITY);
        let out = m.apply([
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        assert!(out[2].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn mat4_swap_qubits_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = MatN::random_unitary(2, &mut rng);
        let m = Mat4(u.data().to_vec().try_into().unwrap());
        assert!(m.swap_qubits().swap_qubits().approx_eq(&m, TOL));
    }

    #[test]
    fn matn_identity_apply() {
        let id = MatN::identity(3);
        let input: Vec<Complex64> = (0..8).map(|i| c64(i as f64, -(i as f64))).collect();
        let mut out = vec![Complex64::ZERO; 8];
        id.apply(&input, &mut out);
        assert_eq!(input, out);
    }

    #[test]
    fn matn_mul_associates() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = MatN::random_unitary(2, &mut rng);
        let b = MatN::random_unitary(2, &mut rng);
        let c = MatN::random_unitary(2, &mut rng);
        let l = a.mul(&b).mul(&c);
        let r = a.mul(&b.mul(&c));
        for (x, y) in l.data().iter().zip(r.data()) {
            assert!(x.approx_eq(*y, 1e-10));
        }
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(123);
        for k in 1..=3u32 {
            let u = MatN::random_unitary(k, &mut rng);
            assert!(u.is_unitary(1e-9), "k={k}");
        }
    }

    #[test]
    fn random_unitary_is_seeded_deterministic() {
        let a = MatN::random_unitary(2, &mut StdRng::seed_from_u64(9));
        let b = MatN::random_unitary(2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn matn_from_mat2_and_mat4() {
        let x: MatN = (&pauli_x()).into();
        assert_eq!(x.qubits(), 1);
        assert!(x.is_unitary(TOL));
        let k: MatN = (&Mat4::kron(&pauli_x(), &pauli_x())).into();
        assert_eq!(k.qubits(), 2);
        assert!(k.is_unitary(TOL));
    }
}
