//! The gate set.
//!
//! A closed enum covering the standard single- and two-qubit gates, fused
//! arbitrary unitaries (produced by the fusion pass), and natively
//! multi-controlled single-qubit unitaries (`Mcu`) — the same primitive SV-Sim
//! and Aer expose, which lets Grover/arithmetic circuits avoid ancilla
//! ladders while still exercising interesting chunk-locality behaviour
//! (controls never *pair* amplitudes, they only *select* them).

use crate::matrix::{Mat2, Mat4};
use mq_num::complex::c64;
use mq_num::Complex64;
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// A quantum gate applied to specific qubits. Qubit indices are `u32`.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(u32),
    /// Pauli-X.
    X(u32),
    /// Pauli-Y.
    Y(u32),
    /// Pauli-Z.
    Z(u32),
    /// Phase gate S = sqrt(Z).
    S(u32),
    /// S-dagger.
    Sdg(u32),
    /// T = sqrt(S).
    T(u32),
    /// T-dagger.
    Tdg(u32),
    /// sqrt(X).
    Sx(u32),
    /// sqrt(X)-dagger.
    Sxdg(u32),
    /// Rotation about X by `theta`.
    Rx(u32, f64),
    /// Rotation about Y by `theta`.
    Ry(u32, f64),
    /// Rotation about Z by `theta`.
    Rz(u32, f64),
    /// Phase gate diag(1, e^{i lambda}).
    P(u32, f64),
    /// General single-qubit gate U3(theta, phi, lambda).
    U3(u32, f64, f64, f64),
    /// Fused arbitrary single-qubit unitary.
    U1q(u32, Mat2),
    /// Controlled-X (control, target).
    Cx(u32, u32),
    /// Controlled-Y (control, target).
    Cy(u32, u32),
    /// Controlled-Z (symmetric).
    Cz(u32, u32),
    /// Controlled phase diag(1,1,1,e^{i lambda}) (symmetric).
    Cp(u32, u32, f64),
    /// SWAP (symmetric).
    Swap(u32, u32),
    /// ZZ interaction exp(-i theta/2 Z⊗Z) — diagonal; QAOA's cost gate.
    Rzz(u32, u32, f64),
    /// Fused arbitrary two-qubit unitary on `(a, b)`; matrix basis index is
    /// `(bit_b << 1) | bit_a`.
    U2q(u32, u32, Mat4),
    /// Multi-controlled single-qubit unitary: applies `u` to `target` when
    /// every qubit in `controls` is 1. `controls` must be sorted, unique and
    /// exclude `target`. With 2 controls and `u = X` this is the Toffoli.
    Mcu {
        /// Control qubits (sorted ascending, no duplicates).
        controls: Vec<u32>,
        /// Target qubit.
        target: u32,
        /// The controlled single-qubit operator.
        u: Mat2,
    },
}

impl Gate {
    /// Builds a Toffoli (CCX) gate.
    pub fn ccx(c0: u32, c1: u32, target: u32) -> Gate {
        let mut controls = vec![c0, c1];
        controls.sort_unstable();
        Gate::Mcu {
            controls,
            target,
            u: mat2_x(),
        }
    }

    /// Builds a multi-controlled X.
    pub fn mcx(controls: &[u32], target: u32) -> Gate {
        let mut controls = controls.to_vec();
        controls.sort_unstable();
        Gate::Mcu {
            controls,
            target,
            u: mat2_x(),
        }
    }

    /// Builds a multi-controlled Z.
    pub fn mcz(controls: &[u32], target: u32) -> Gate {
        let mut controls = controls.to_vec();
        controls.sort_unstable();
        Gate::Mcu {
            controls,
            target,
            u: mat2_z(),
        }
    }

    /// Builds a multi-controlled phase gate.
    pub fn mcp(controls: &[u32], target: u32, lambda: f64) -> Gate {
        let mut controls = controls.to_vec();
        controls.sort_unstable();
        Gate::Mcu {
            controls,
            target,
            u: mat2_p(lambda),
        }
    }

    /// All qubits this gate touches, targets and controls alike.
    pub fn qubits(&self) -> Vec<u32> {
        use Gate::*;
        match self {
            H(q)
            | X(q)
            | Y(q)
            | Z(q)
            | S(q)
            | Sdg(q)
            | T(q)
            | Tdg(q)
            | Sx(q)
            | Sxdg(q)
            | Rx(q, _)
            | Ry(q, _)
            | Rz(q, _)
            | P(q, _)
            | U3(q, _, _, _)
            | U1q(q, _) => vec![*q],
            Cx(a, b) | Cy(a, b) | Cz(a, b) | Swap(a, b) | U2q(a, b, _) => vec![*a, *b],
            Cp(a, b, _) | Rzz(a, b, _) => vec![*a, *b],
            Mcu {
                controls, target, ..
            } => {
                let mut v = controls.clone();
                v.push(*target);
                v
            }
        }
    }

    /// Qubits whose amplitudes get *paired* by this gate (i.e. the gate
    /// mixes |0> and |1> along them). Controls and diagonal action don't
    /// pair; this is what chunk-locality planning cares about.
    pub fn pairing_qubits(&self) -> Vec<u32> {
        use Gate::*;
        match self {
            // Diagonal single-qubit gates pair nothing.
            Z(_) | S(_) | Sdg(_) | T(_) | Tdg(_) | Rz(_, _) | P(_, _) => vec![],
            H(q) | X(q) | Y(q) | Sx(q) | Sxdg(q) | Rx(q, _) | Ry(q, _) | U3(q, _, _, _) => {
                vec![*q]
            }
            U1q(q, m) => {
                if m.is_diagonal(0.0) {
                    vec![]
                } else {
                    vec![*q]
                }
            }
            // Controlled gates pair only their target...
            Cx(_, t) | Cy(_, t) => vec![*t],
            // ...and diagonal two-qubit gates pair nothing.
            Cz(_, _) | Cp(_, _, _) | Rzz(_, _, _) => vec![],
            Swap(a, b) | U2q(a, b, _) => vec![*a, *b],
            Mcu { target, u, .. } => {
                if u.is_diagonal(0.0) {
                    vec![]
                } else {
                    vec![*target]
                }
            }
        }
    }

    /// Highest qubit index used, or `None` for an (impossible) empty set.
    pub fn max_qubit(&self) -> u32 {
        self.qubits()
            .into_iter()
            .max()
            .expect("gate with no qubits")
    }

    /// True if the gate's matrix is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        match self {
            Z(_)
            | S(_)
            | Sdg(_)
            | T(_)
            | Tdg(_)
            | Rz(_, _)
            | P(_, _)
            | Cz(_, _)
            | Cp(_, _, _)
            | Rzz(_, _, _) => true,
            U1q(_, m) => m.is_diagonal(0.0),
            Mcu { u, .. } => u.is_diagonal(0.0),
            _ => false,
        }
    }

    /// The inverse gate.
    pub fn adjoint(&self) -> Gate {
        use Gate::*;
        match self {
            H(q) => H(*q),
            X(q) => X(*q),
            Y(q) => Y(*q),
            Z(q) => Z(*q),
            S(q) => Sdg(*q),
            Sdg(q) => S(*q),
            T(q) => Tdg(*q),
            Tdg(q) => T(*q),
            Sx(q) => Sxdg(*q),
            Sxdg(q) => Sx(*q),
            Rx(q, t) => Rx(*q, -t),
            Ry(q, t) => Ry(*q, -t),
            Rz(q, t) => Rz(*q, -t),
            P(q, l) => P(*q, -l),
            U3(q, t, phi, lam) => U3(*q, -t, -lam, -phi),
            U1q(q, m) => U1q(*q, m.adjoint()),
            Cx(c, t) => Cx(*c, *t),
            Cy(c, t) => Cy(*c, *t),
            Cz(a, b) => Cz(*a, *b),
            Cp(a, b, l) => Cp(*a, *b, -l),
            Swap(a, b) => Swap(*a, *b),
            Rzz(a, b, t) => Rzz(*a, *b, -t),
            U2q(a, b, m) => U2q(*a, *b, m.adjoint()),
            Mcu {
                controls,
                target,
                u,
            } => Mcu {
                controls: controls.clone(),
                target: *target,
                u: u.adjoint(),
            },
        }
    }

    /// The 2x2 matrix of a single-qubit gate (`None` for multi-qubit gates).
    pub fn mat2(&self) -> Option<Mat2> {
        use Gate::*;
        Some(match self {
            H(_) => mat2_h(),
            X(_) => mat2_x(),
            Y(_) => mat2_y(),
            Z(_) => mat2_z(),
            S(_) => mat2_p(std::f64::consts::FRAC_PI_2),
            Sdg(_) => mat2_p(-std::f64::consts::FRAC_PI_2),
            T(_) => mat2_p(std::f64::consts::FRAC_PI_4),
            Tdg(_) => mat2_p(-std::f64::consts::FRAC_PI_4),
            Sx(_) => mat2_sx(),
            Sxdg(_) => mat2_sx().adjoint(),
            Rx(_, t) => mat2_rx(*t),
            Ry(_, t) => mat2_ry(*t),
            Rz(_, t) => mat2_rz(*t),
            P(_, l) => mat2_p(*l),
            U3(_, t, p, l) => mat2_u3(*t, *p, *l),
            U1q(_, m) => *m,
            _ => return None,
        })
    }

    /// The 4x4 matrix of a two-qubit gate in the `(bit_b << 1) | bit_a`
    /// basis for gate arguments `(a, b)` (`None` otherwise).
    pub fn mat4(&self) -> Option<Mat4> {
        use Gate::*;
        Some(match self {
            // Control is argument 0 (low bit), target argument 1 (high bit):
            // |c t> with index (t<<1)|c. Gate flips t when c=1: swaps
            // indices 0b01 <-> 0b11 (c=1,t=0 <-> c=1,t=1).
            Cx(_, _) => {
                let mut m = Mat4::identity();
                m.0[4 + 1] = Complex64::ZERO;
                m.0[3 * 4 + 3] = Complex64::ZERO;
                m.0[4 + 3] = Complex64::ONE;
                m.0[3 * 4 + 1] = Complex64::ONE;
                m
            }
            Cy(_, _) => {
                let mut m = Mat4::identity();
                m.0[4 + 1] = Complex64::ZERO;
                m.0[3 * 4 + 3] = Complex64::ZERO;
                m.0[4 + 3] = c64(0.0, -1.0);
                m.0[3 * 4 + 1] = c64(0.0, 1.0);
                m
            }
            Cz(_, _) => {
                let mut m = Mat4::identity();
                m.0[3 * 4 + 3] = c64(-1.0, 0.0);
                m
            }
            Cp(_, _, l) => {
                let mut m = Mat4::identity();
                m.0[3 * 4 + 3] = Complex64::cis(*l);
                m
            }
            Swap(_, _) => {
                let mut m = Mat4::identity();
                m.0[4 + 1] = Complex64::ZERO;
                m.0[2 * 4 + 2] = Complex64::ZERO;
                m.0[4 + 2] = Complex64::ONE;
                m.0[2 * 4 + 1] = Complex64::ONE;
                m
            }
            Rzz(_, _, t) => {
                let mut m = Mat4::identity();
                let e_minus = Complex64::cis(-t / 2.0);
                let e_plus = Complex64::cis(t / 2.0);
                m.0[0] = e_minus;
                m.0[4 + 1] = e_plus;
                m.0[2 * 4 + 2] = e_plus;
                m.0[3 * 4 + 3] = e_minus;
                m
            }
            U2q(_, _, m) => *m,
            _ => return None,
        })
    }

    /// Human-readable mnemonic (lowercase, QASM-style).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            H(_) => "h",
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            S(_) => "s",
            Sdg(_) => "sdg",
            T(_) => "t",
            Tdg(_) => "tdg",
            Sx(_) => "sx",
            Sxdg(_) => "sxdg",
            Rx(_, _) => "rx",
            Ry(_, _) => "ry",
            Rz(_, _) => "rz",
            P(_, _) => "p",
            U3(_, _, _, _) => "u3",
            U1q(_, _) => "u1q",
            Cx(_, _) => "cx",
            Cy(_, _) => "cy",
            Cz(_, _) => "cz",
            Cp(_, _, _) => "cp",
            Swap(_, _) => "swap",
            Rzz(_, _, _) => "rzz",
            U2q(_, _, _) => "u2q",
            Mcu { .. } => "mcu",
        }
    }

    /// Validates qubit indices against a register of `n` qubits.
    pub fn validate(&self, n: u32) -> Result<(), GateError> {
        let qs = self.qubits();
        for &q in &qs {
            if q >= n {
                return Err(GateError::QubitOutOfRange { qubit: q, n });
            }
        }
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != qs.len() {
            return Err(GateError::DuplicateQubit);
        }
        if let Gate::Mcu { controls, .. } = self {
            if controls.is_empty() {
                return Err(GateError::EmptyControls);
            }
            if controls.windows(2).any(|w| w[0] >= w[1]) {
                return Err(GateError::UnsortedControls);
            }
        }
        Ok(())
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Gate::*;
        match self {
            Rx(q, t) | Ry(q, t) | Rz(q, t) | P(q, t) => {
                write!(f, "{}({:.6}) q[{}]", self.name(), t, q)
            }
            U3(q, t, p, l) => write!(f, "u3({t:.6},{p:.6},{l:.6}) q[{q}]"),
            Cp(a, b, l) => write!(f, "cp({l:.6}) q[{a}],q[{b}]"),
            Rzz(a, b, t) => write!(f, "rzz({t:.6}) q[{a}],q[{b}]"),
            Mcu {
                controls, target, ..
            } => {
                write!(f, "mcu(")?;
                for (i, c) in controls.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "q[{c}]")?;
                }
                write!(f, ") q[{target}]")
            }
            g => {
                write!(f, "{} ", g.name())?;
                for (i, q) in g.qubits().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "q[{q}]")?;
                }
                Ok(())
            }
        }
    }
}

/// Errors from gate validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// A qubit index is >= the register size.
    QubitOutOfRange {
        /// Offending qubit.
        qubit: u32,
        /// Register size.
        n: u32,
    },
    /// The same qubit appears twice in one gate.
    DuplicateQubit,
    /// An `Mcu` with no controls (use a plain 1q gate instead).
    EmptyControls,
    /// `Mcu` controls not sorted/unique.
    UnsortedControls,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::QubitOutOfRange { qubit, n } => {
                write!(f, "qubit {qubit} out of range for {n}-qubit register")
            }
            GateError::DuplicateQubit => write!(f, "duplicate qubit in gate"),
            GateError::EmptyControls => write!(f, "multi-controlled gate with no controls"),
            GateError::UnsortedControls => write!(f, "mcu controls must be sorted and unique"),
        }
    }
}

impl std::error::Error for GateError {}

// --- standard matrices ------------------------------------------------------

/// Hadamard matrix.
pub fn mat2_h() -> Mat2 {
    let h = FRAC_1_SQRT_2;
    Mat2::new(c64(h, 0.0), c64(h, 0.0), c64(h, 0.0), c64(-h, 0.0))
}

/// Pauli-X matrix.
pub fn mat2_x() -> Mat2 {
    Mat2::new(
        Complex64::ZERO,
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ZERO,
    )
}

/// Pauli-Y matrix.
pub fn mat2_y() -> Mat2 {
    Mat2::new(
        Complex64::ZERO,
        c64(0.0, -1.0),
        c64(0.0, 1.0),
        Complex64::ZERO,
    )
}

/// Pauli-Z matrix.
pub fn mat2_z() -> Mat2 {
    Mat2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        c64(-1.0, 0.0),
    )
}

/// Phase matrix diag(1, e^{i lambda}).
pub fn mat2_p(lambda: f64) -> Mat2 {
    Mat2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(lambda),
    )
}

/// sqrt(X) matrix.
pub fn mat2_sx() -> Mat2 {
    Mat2::new(c64(0.5, 0.5), c64(0.5, -0.5), c64(0.5, -0.5), c64(0.5, 0.5))
}

/// Rx(theta) matrix.
pub fn mat2_rx(theta: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new(c64(c, 0.0), c64(0.0, -s), c64(0.0, -s), c64(c, 0.0))
}

/// Ry(theta) matrix.
pub fn mat2_ry(theta: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new(c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0))
}

/// Rz(theta) matrix.
pub fn mat2_rz(theta: f64) -> Mat2 {
    Mat2::new(
        Complex64::cis(-theta / 2.0),
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(theta / 2.0),
    )
}

/// U3(theta, phi, lambda) matrix (OpenQASM convention).
pub fn mat2_u3(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new(
        c64(c, 0.0),
        -Complex64::cis(lambda) * s,
        Complex64::cis(phi) * s,
        Complex64::cis(phi + lambda) * c,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const TOL: f64 = 1e-12;

    fn all_1q_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Sx(0),
            Gate::Sxdg(0),
            Gate::Rx(0, 0.3),
            Gate::Ry(0, 0.7),
            Gate::Rz(0, 1.1),
            Gate::P(0, 0.9),
            Gate::U3(0, 0.3, 0.5, 0.7),
            Gate::U1q(0, mat2_u3(1.0, 2.0, 3.0)),
        ]
    }

    fn all_2q_gates() -> Vec<Gate> {
        vec![
            Gate::Cx(0, 1),
            Gate::Cy(0, 1),
            Gate::Cz(0, 1),
            Gate::Cp(0, 1, 0.4),
            Gate::Swap(0, 1),
            Gate::Rzz(0, 1, 0.8),
            Gate::U2q(0, 1, Mat4::kron(&mat2_h(), &mat2_x())),
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_1q_gates() {
            assert!(g.mat2().unwrap().is_unitary(TOL), "{g}");
        }
        for g in all_2q_gates() {
            assert!(g.mat4().unwrap().is_unitary(TOL), "{g}");
        }
    }

    #[test]
    fn adjoint_matrix_is_matrix_adjoint() {
        for g in all_1q_gates() {
            let m = g.mat2().unwrap();
            let madj = g.adjoint().mat2().unwrap();
            assert!(
                m.mul(&madj).approx_eq(&Mat2::IDENTITY, 1e-10),
                "{g}: adjoint not inverse"
            );
        }
        for g in all_2q_gates() {
            let m = g.mat4().unwrap();
            let madj = g.adjoint().mat4().unwrap();
            assert!(
                m.mul(&madj).approx_eq(&Mat4::identity(), 1e-10),
                "{g}: adjoint not inverse"
            );
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s = Gate::S(0).mat2().unwrap();
        assert!(s.mul(&s).approx_eq(&mat2_z(), TOL));
        let t = Gate::T(0).mat2().unwrap();
        assert!(t.mul(&t).approx_eq(&s, TOL));
        let sx = Gate::Sx(0).mat2().unwrap();
        assert!(sx.mul(&sx).approx_eq(&mat2_x(), TOL));
    }

    #[test]
    fn u3_specializations() {
        // U3(0,0,l) = P(l)
        assert!(mat2_u3(0.0, 0.0, 0.9).approx_eq(&mat2_p(0.9), TOL));
        // U3(pi/2, 0, pi) = H
        assert!(mat2_u3(FRAC_PI_2, 0.0, PI).approx_eq(&mat2_h(), TOL));
        // U3(t, -pi/2, pi/2) = Rx(t)
        assert!(mat2_u3(0.7, -FRAC_PI_2, FRAC_PI_2).approx_eq(&mat2_rx(0.7), TOL));
        // U3(t, 0, 0) = Ry(t)
        assert!(mat2_u3(0.7, 0.0, 0.0).approx_eq(&mat2_ry(0.7), TOL));
    }

    #[test]
    fn rz_vs_p_differ_by_global_phase() {
        let rz = mat2_rz(0.8);
        let p = mat2_p(0.8);
        let phase = Complex64::cis(0.4); // e^{i t/2}
        for i in 0..4 {
            assert!((phase * rz.0[i]).approx_eq(p.0[i], TOL));
        }
    }

    #[test]
    fn qubit_listings() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(1, 4).qubits(), vec![1, 4]);
        let ccx = Gate::ccx(5, 2, 0);
        assert_eq!(ccx.qubits(), vec![2, 5, 0]);
        assert_eq!(ccx.max_qubit(), 5);
    }

    #[test]
    fn pairing_qubits_ignore_diagonals_and_controls() {
        assert!(Gate::Z(0).pairing_qubits().is_empty());
        assert!(Gate::Rz(0, 1.0).pairing_qubits().is_empty());
        assert!(Gate::Cz(0, 5).pairing_qubits().is_empty());
        assert!(Gate::Cp(0, 5, 0.2).pairing_qubits().is_empty());
        assert!(Gate::Rzz(0, 5, 0.2).pairing_qubits().is_empty());
        assert_eq!(Gate::Cx(7, 2).pairing_qubits(), vec![2]);
        assert_eq!(Gate::Swap(1, 6).pairing_qubits(), vec![1, 6]);
        assert_eq!(Gate::mcz(&[1, 2], 9).pairing_qubits(), Vec::<u32>::new());
        assert_eq!(Gate::mcx(&[1, 2], 9).pairing_qubits(), vec![9]);
        assert_eq!(Gate::H(4).pairing_qubits(), vec![4]);
    }

    #[test]
    fn diagonal_flags() {
        for g in [
            Gate::Z(0),
            Gate::S(0),
            Gate::T(0),
            Gate::Rz(0, 0.3),
            Gate::P(0, 0.3),
            Gate::Cz(0, 1),
            Gate::Cp(0, 1, 0.3),
            Gate::Rzz(0, 1, 0.3),
            Gate::mcz(&[0, 1], 2),
            Gate::mcp(&[0], 2, 0.5),
        ] {
            assert!(g.is_diagonal(), "{g}");
        }
        for g in [Gate::H(0), Gate::X(0), Gate::Cx(0, 1), Gate::Swap(0, 1)] {
            assert!(!g.is_diagonal(), "{g}");
        }
    }

    #[test]
    fn validate_catches_errors() {
        assert!(Gate::H(0).validate(1).is_ok());
        assert_eq!(
            Gate::H(3).validate(2),
            Err(GateError::QubitOutOfRange { qubit: 3, n: 2 })
        );
        assert_eq!(Gate::Cx(1, 1).validate(4), Err(GateError::DuplicateQubit));
        let bad = Gate::Mcu {
            controls: vec![],
            target: 0,
            u: mat2_x(),
        };
        assert_eq!(bad.validate(4), Err(GateError::EmptyControls));
        let unsorted = Gate::Mcu {
            controls: vec![2, 1],
            target: 0,
            u: mat2_x(),
        };
        assert_eq!(unsorted.validate(4), Err(GateError::UnsortedControls));
        assert!(Gate::ccx(2, 1, 0).validate(3).is_ok());
    }

    #[test]
    fn display_is_qasm_like() {
        assert_eq!(format!("{}", Gate::H(2)), "h q[2]");
        assert_eq!(format!("{}", Gate::Cx(0, 1)), "cx q[0],q[1]");
        assert!(format!("{}", Gate::Rz(1, FRAC_PI_4)).starts_with("rz(0.785398)"));
        assert_eq!(format!("{}", Gate::ccx(0, 1, 2)), "mcu(q[0],q[1]) q[2]");
    }

    #[test]
    fn cx_matrix_convention() {
        // Gate arguments (control=a=low bit, target=b=high bit).
        let m = Gate::Cx(0, 1).mat4().unwrap();
        // |c=1,t=0> = index 0b01 -> |c=1,t=1> = index 0b11.
        let out = m.apply([
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        assert!(out[3].approx_eq(Complex64::ONE, TOL));
        // |c=0,t=0> unchanged.
        let out = m.apply([
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        assert!(out[0].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn rzz_is_diagonal_and_symmetric() {
        let m = Gate::Rzz(0, 1, 0.6).mat4().unwrap();
        assert!(m.swap_qubits().approx_eq(&m, TOL));
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(m.at(r, c).norm() < TOL);
                }
            }
        }
    }
}
