//! Structured pipeline instrumentation for MEMQSIM.
//!
//! The paper's quantitative claims are all *timing attributions*: Table 1
//! attributes transfer cost to strategy, Fig. 2 attributes speedup to
//! role overlap in the decompress → device → recompress pipeline. This
//! crate makes those attributions first-class instead of ad-hoc:
//!
//! - [`Telemetry`] — a cheaply clonable handle threaded through the
//!   engines, the compressed store, and the device layer. It records
//!   [`Role`]-labelled **spans** (RAII guards over wall-clock intervals)
//!   and monotonic [`Counter`]s (bytes decompressed / compressed, H2D /
//!   D2H traffic, chunk visits, kernel launches).
//! - [`RunTelemetry`] — an immutable per-run snapshot taken at the end of
//!   an engine run: the full span timeline plus counter totals, with
//!   derived views (per-role busy time, the union of busy intervals, and
//!   the measured overlap between roles) and a stable JSON rendering for
//!   machine-readable experiment artifacts.
//!
//! The design goal is that report structs like the engine's `RunReport` *derive*
//! their duration fields from this record instead of maintaining their own
//! accumulators, so every optimization claim in the repo is backed by the
//! same measured timeline the experiment bins serialize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which pipeline role was busy during a span.
///
/// These mirror the paper's pipeline stations: the chunk decompressor,
/// the device command issuer, the recompressor, and the "idle core" CPU
/// apply path that absorbs a share of stages while the device works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Decompressing chunks out of the compressed store.
    Decompress,
    /// Issuing device commands (H2D, kernels, D2H) and waiting on them.
    DeviceIssue,
    /// Recompressing finished chunks back into the store.
    Recompress,
    /// Applying gates on the CPU (dense baseline or idle-core share).
    CpuApply,
}

impl Role {
    /// Every role, in display order.
    pub const ALL: [Role; 4] = [
        Role::Decompress,
        Role::DeviceIssue,
        Role::Recompress,
        Role::CpuApply,
    ];

    /// Stable snake_case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Role::Decompress => "decompress",
            Role::DeviceIssue => "device_issue",
            Role::Recompress => "recompress",
            Role::CpuApply => "cpu_apply",
        }
    }

    fn index(self) -> usize {
        match self {
            Role::Decompress => 0,
            Role::DeviceIssue => 1,
            Role::Recompress => 2,
            Role::CpuApply => 3,
        }
    }
}

/// Monotonic counters accumulated over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Compressed payload bytes expanded by codec `decompress` calls.
    BytesDecompressed,
    /// Compressed payload bytes produced by codec `compress` calls.
    BytesCompressed,
    /// Amplitude bytes copied host-to-device.
    BytesH2d,
    /// Amplitude bytes copied device-to-host.
    BytesD2h,
    /// Chunk load/store round trips through the compressed store.
    ChunkVisits,
    /// Gate kernels launched on the (simulated) device.
    KernelLaunches,
    /// Scatter/gather commands issued to the device.
    ScatterOps,
    /// Chunk loads served from the store's residency cache (no checksum,
    /// no decode).
    CacheHits,
    /// Chunk loads that went through the codec because the chunk was not
    /// resident in the cache. Only counted while a cache is configured, so
    /// `CacheHits + CacheMisses == ChunkVisits` holds for cached runs.
    CacheMisses,
    /// Chunk stores whose content fingerprint matched the resident copy —
    /// the recompression was skipped entirely.
    RecompressSkipped,
    /// Cache entries evicted (dirty evictions recompress; clean evictions
    /// drop the buffer with zero codec work).
    Evictions,
    /// Compressed chunk bytes spilled from the resident budget to disk.
    SpillBytesWritten,
    /// Compressed chunk bytes read back from spill files on disk.
    SpillBytesRead,
    /// Gates eliminated by plan-level fusion (original minus fused gate
    /// count, summed over stages).
    GatesFused,
    /// Full amplitude-buffer passes avoided by the blocked apply driver
    /// (gates applied minus memory sweeps actually made).
    ApplyPassesSaved,
    /// Compressed payload bytes shipped host-to-device in
    /// `TransferMode::Compressed` runs (the raw-equivalent traffic is what
    /// `BytesH2d` would have carried).
    BytesH2dCompressed,
    /// Compressed payload bytes shipped device-to-host (the encode/write-back
    /// direction of compressed transfers).
    BytesD2hCompressed,
    /// Modeled nanoseconds spent in device-side decode kernels
    /// (`Command::DecodeChunk`).
    DeviceDecodeTime,
    /// Modeled nanoseconds spent in device-side encode kernels
    /// (`Command::EncodeChunk`).
    DeviceEncodeTime,
    /// Remap transitions executed by the layout pass (each transition is a
    /// batch of physical-qubit transpositions applied between stages).
    RemapPasses,
    /// Chunk visits the greedy layout saved relative to the fixed-layout
    /// plan for the same circuit (stage visits avoided minus transition
    /// visit costs paid).
    ChunkVisitsSavedByLayout,
    /// Adaptive-codec chunks whose payload header picked zero-RLE.
    CodecPicksZeroRle,
    /// Adaptive-codec chunks whose payload header picked FPC.
    CodecPicksFpc,
    /// Adaptive-codec chunks whose payload header picked shuffle-LZSS.
    CodecPicksShuffleLzss,
    /// Adaptive-codec chunks whose payload header picked SZ.
    CodecPicksSz,
    /// Adaptive-codec chunks stored demoted to packed f32 pairs.
    MixedPrecisionChunks,
    /// Committed chunk payloads that are not bit-exact (an SZ pick or an
    /// f32 demotion) — the events that consume a run's error budget.
    LossyEncodes,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 27] = [
        Counter::BytesDecompressed,
        Counter::BytesCompressed,
        Counter::BytesH2d,
        Counter::BytesD2h,
        Counter::ChunkVisits,
        Counter::KernelLaunches,
        Counter::ScatterOps,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::RecompressSkipped,
        Counter::Evictions,
        Counter::SpillBytesWritten,
        Counter::SpillBytesRead,
        Counter::GatesFused,
        Counter::ApplyPassesSaved,
        Counter::BytesH2dCompressed,
        Counter::BytesD2hCompressed,
        Counter::DeviceDecodeTime,
        Counter::DeviceEncodeTime,
        Counter::RemapPasses,
        Counter::ChunkVisitsSavedByLayout,
        Counter::CodecPicksZeroRle,
        Counter::CodecPicksFpc,
        Counter::CodecPicksShuffleLzss,
        Counter::CodecPicksSz,
        Counter::MixedPrecisionChunks,
        Counter::LossyEncodes,
    ];

    /// Stable snake_case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Counter::BytesDecompressed => "bytes_decompressed",
            Counter::BytesCompressed => "bytes_compressed",
            Counter::BytesH2d => "bytes_h2d",
            Counter::BytesD2h => "bytes_d2h",
            Counter::ChunkVisits => "chunk_visits",
            Counter::KernelLaunches => "kernel_launches",
            Counter::ScatterOps => "scatter_ops",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::RecompressSkipped => "recompress_skipped",
            Counter::Evictions => "evictions",
            Counter::SpillBytesWritten => "spill_bytes_written",
            Counter::SpillBytesRead => "spill_bytes_read",
            Counter::GatesFused => "gates_fused",
            Counter::ApplyPassesSaved => "apply_passes_saved",
            Counter::BytesH2dCompressed => "bytes_h2d_compressed",
            Counter::BytesD2hCompressed => "bytes_d2h_compressed",
            Counter::DeviceDecodeTime => "device_decode_time_ns",
            Counter::DeviceEncodeTime => "device_encode_time_ns",
            Counter::RemapPasses => "remap_passes",
            Counter::ChunkVisitsSavedByLayout => "chunk_visits_saved_by_layout",
            Counter::CodecPicksZeroRle => "codec_picks_zero_rle",
            Counter::CodecPicksFpc => "codec_picks_fpc",
            Counter::CodecPicksShuffleLzss => "codec_picks_shuffle_lzss",
            Counter::CodecPicksSz => "codec_picks_sz",
            Counter::MixedPrecisionChunks => "mixed_precision_chunks",
            Counter::LossyEncodes => "lossy_encodes",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::BytesDecompressed => 0,
            Counter::BytesCompressed => 1,
            Counter::BytesH2d => 2,
            Counter::BytesD2h => 3,
            Counter::ChunkVisits => 4,
            Counter::KernelLaunches => 5,
            Counter::ScatterOps => 6,
            Counter::CacheHits => 7,
            Counter::CacheMisses => 8,
            Counter::RecompressSkipped => 9,
            Counter::Evictions => 10,
            Counter::SpillBytesWritten => 11,
            Counter::SpillBytesRead => 12,
            Counter::GatesFused => 13,
            Counter::ApplyPassesSaved => 14,
            Counter::BytesH2dCompressed => 15,
            Counter::BytesD2hCompressed => 16,
            Counter::DeviceDecodeTime => 17,
            Counter::DeviceEncodeTime => 18,
            Counter::RemapPasses => 19,
            Counter::ChunkVisitsSavedByLayout => 20,
            Counter::CodecPicksZeroRle => 21,
            Counter::CodecPicksFpc => 22,
            Counter::CodecPicksShuffleLzss => 23,
            Counter::CodecPicksSz => 24,
            Counter::MixedPrecisionChunks => 25,
            Counter::LossyEncodes => 26,
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

/// Per-device accounting lane for an N-device fleet run.
///
/// One lane per device in the fleet, recorded by the executor when it
/// gathers per-device stream stats at the end of a run. Lanes make the
/// fleet's balance observable: the makespan is the max `modeled_ns` over
/// lanes, and [`RunTelemetry::load_imbalance`] summarizes how far the
/// shard policy strayed from an even split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceLane {
    /// Device index within the fleet.
    pub device: usize,
    /// Chunk groups this device executed.
    pub groups: u64,
    /// Bytes copied host-to-device on this device's streams.
    pub bytes_h2d: u64,
    /// Bytes copied device-to-host on this device's streams.
    pub bytes_d2h: u64,
    /// Modeled nanoseconds in gate kernels on this device.
    pub kernel_time_ns: u64,
    /// This device's total modeled stream time (its lane of the makespan).
    pub modeled_ns: u64,
}

/// Per-stage error-budget accounting for runs under a fidelity budget.
///
/// One entry per pipeline stage, recorded by the engine driver: the
/// absolute error bound the budget policy *allocated* to the stage, and
/// what the stage actually *spent* (the allocation if any lossy encode
/// landed during the stage, zero if every committed payload was
/// bit-exact). `sum(spent) <= sum(allocated) <= total budget` makes the
/// end-state fidelity claim auditable from the run record alone.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageErrorSpend {
    /// Stage index.
    pub stage: u32,
    /// Absolute error bound the budget policy allocated to this stage.
    pub allocated: f64,
    /// Error actually spent: `allocated` when lossy encodes landed during
    /// the stage, 0.0 when the stage stayed bit-exact.
    pub spent: f64,
}

/// One closed span: a role busy on `[start_ns, end_ns)` relative to the
/// run epoch, optionally attributed to a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub role: Role,
    /// Stage index the span belongs to, or `u32::MAX` when unattributed.
    pub stage: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    /// Stage attribution, if any.
    pub fn stage(&self) -> Option<u32> {
        (self.stage != u32::MAX).then_some(self.stage)
    }

    /// Span length.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }
}

struct Inner {
    epoch: Instant,
    counters: [AtomicU64; NUM_COUNTERS],
    spans: Mutex<Vec<SpanRecord>>,
    device_lanes: Mutex<Vec<DeviceLane>>,
    error_spend: Mutex<Vec<StageErrorSpend>>,
    opened: AtomicU64,
    closed: AtomicU64,
}

/// Shared instrumentation handle for one engine run.
///
/// Clones share the same record; the handle is `Send + Sync` and cheap to
/// clone, so pipeline threads each carry one. Recording a span costs one
/// `Instant::now` at open and a mutex push at close; counters are single
/// relaxed atomic adds.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans_opened", &self.inner.opened.load(Ordering::Relaxed))
            .field("spans_closed", &self.inner.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// Starts a fresh record; the epoch is now.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                counters: [const { AtomicU64::new(0) }; NUM_COUNTERS],
                spans: Mutex::new(Vec::new()),
                device_lanes: Mutex::new(Vec::new()),
                error_spend: Mutex::new(Vec::new()),
                opened: AtomicU64::new(0),
                closed: AtomicU64::new(0),
            }),
        }
    }

    /// Opens an unattributed span; closing happens on guard drop.
    pub fn span(&self, role: Role) -> Span {
        self.stage_span(role, u32::MAX)
    }

    /// Opens a span attributed to pipeline stage `stage`.
    pub fn stage_span(&self, role: Role, stage: u32) -> Span {
        self.inner.opened.fetch_add(1, Ordering::Relaxed);
        Span {
            inner: Arc::clone(&self.inner),
            role,
            stage,
            start_ns: self.inner.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Times `f` under a span for `role`.
    pub fn timed<R>(&self, role: Role, f: impl FnOnce() -> R) -> R {
        let _span = self.span(role);
        f()
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, counter: Counter, delta: u64) {
        self.inner.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Nanoseconds since the record's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Records the run's per-device lanes (replacing any previous set).
    /// Called by fleet executors when they gather per-device stats, before
    /// the run snapshot is taken.
    pub fn set_device_lanes(&self, lanes: Vec<DeviceLane>) {
        *self
            .inner
            .device_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = lanes;
    }

    /// Records the run's per-stage error-budget spend (replacing any
    /// previous set). Called by the engine driver after the stage loop,
    /// before the run snapshot is taken.
    pub fn set_error_spend(&self, spend: Vec<StageErrorSpend>) {
        *self
            .inner
            .error_spend
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = spend;
    }

    /// Snapshots the record into an immutable [`RunTelemetry`].
    ///
    /// Spans still open at this point stay unrecorded (and show up as an
    /// open/closed imbalance in the snapshot), so engines should finish
    /// all guards before calling this.
    pub fn finish(&self) -> RunTelemetry {
        let mut spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        let mut counters = [0u64; NUM_COUNTERS];
        for (slot, counter) in counters.iter_mut().zip(&self.inner.counters) {
            *slot = counter.load(Ordering::Relaxed);
        }
        RunTelemetry {
            wall: Duration::from_nanos(self.now_ns()),
            counters,
            spans,
            device_lanes: self
                .inner
                .device_lanes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            error_spend: self
                .inner
                .error_spend
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            spans_opened: self.inner.opened.load(Ordering::Relaxed),
            spans_closed: self.inner.closed.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard for an open span; records the interval on drop.
pub struct Span {
    inner: Arc<Inner>,
    role: Role,
    stage: u32,
    start_ns: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        self.inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanRecord {
                role: self.role,
                stage: self.stage,
                start_ns: self.start_ns,
                end_ns,
            });
        self.inner.closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Immutable per-run telemetry snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// Wall time from the record's epoch to `finish()`.
    pub wall: Duration,
    counters: [u64; NUM_COUNTERS],
    spans: Vec<SpanRecord>,
    device_lanes: Vec<DeviceLane>,
    error_spend: Vec<StageErrorSpend>,
    /// Spans opened over the run's lifetime.
    pub spans_opened: u64,
    /// Spans closed over the run's lifetime.
    pub spans_closed: u64,
}

impl RunTelemetry {
    /// All recorded spans, sorted by start time.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Final value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Per-device accounting lanes (empty for runs without a device fleet).
    pub fn device_lanes(&self) -> &[DeviceLane] {
        &self.device_lanes
    }

    /// Per-stage error-budget ledger (empty for runs without a fidelity
    /// budget).
    pub fn error_spend(&self) -> &[StageErrorSpend] {
        &self.error_spend
    }

    /// Total error actually spent across all stages (sum of per-stage
    /// `spent`); 0.0 when no budget was tracked.
    pub fn total_error_spent(&self) -> f64 {
        self.error_spend.iter().map(|s| s.spent).sum()
    }

    /// Fleet load-imbalance ratio: max per-device modeled time over the
    /// mean. 1.0 is a perfectly balanced fleet; returns 1.0 for runs with
    /// at most one lane or no modeled device time at all.
    pub fn load_imbalance(&self) -> f64 {
        if self.device_lanes.len() <= 1 {
            return 1.0;
        }
        let max = self
            .device_lanes
            .iter()
            .map(|l| l.modeled_ns)
            .max()
            .unwrap_or(0);
        let sum: u64 = self.device_lanes.iter().map(|l| l.modeled_ns).sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.device_lanes.len() as f64 / sum as f64
    }

    /// True when every opened span was closed before the snapshot.
    pub fn balanced(&self) -> bool {
        self.spans_opened == self.spans_closed && self.spans_opened == self.spans.len() as u64
    }

    /// Total busy time of one role (sum of its span durations).
    pub fn busy(&self, role: Role) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.role == role)
            .map(SpanRecord::duration)
            .sum()
    }

    /// Sum of per-role busy times — the cost of running every role
    /// back-to-back with no pipelining.
    pub fn serial_sum(&self) -> Duration {
        Role::ALL.iter().map(|&r| self.busy(r)).sum()
    }

    /// Length of the union of all busy intervals — wall time during which
    /// *at least one* role was busy. With pipelining this is strictly
    /// smaller than [`serial_sum`](Self::serial_sum); without it the two
    /// agree (up to span bookkeeping gaps).
    pub fn union_busy(&self) -> Duration {
        let mut total = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        // Spans are sorted by start time.
        for s in &self.spans {
            match cur {
                None => cur = Some((s.start_ns, s.end_ns)),
                Some((lo, hi)) => {
                    if s.start_ns <= hi {
                        cur = Some((lo, hi.max(s.end_ns)));
                    } else {
                        total += hi - lo;
                        cur = Some((s.start_ns, s.end_ns));
                    }
                }
            }
        }
        if let Some((lo, hi)) = cur {
            total += hi - lo;
        }
        Duration::from_nanos(total)
    }

    /// Measured pipeline overlap: serial sum minus the busy-interval
    /// union. Zero when roles never run concurrently.
    pub fn overlap(&self) -> Duration {
        self.serial_sum().saturating_sub(self.union_busy())
    }

    /// True when any two spans of *different* roles overlap in time —
    /// the direct witness of pipelined execution.
    pub fn has_role_overlap(&self) -> bool {
        // O(n·roles): track the running max end per role; spans sorted by start.
        let mut max_end = [0u64; Role::ALL.len()];
        for s in &self.spans {
            for (i, &end) in max_end.iter().enumerate() {
                if i != s.role.index() && end > s.start_ns {
                    return true;
                }
            }
            let slot = &mut max_end[s.role.index()];
            *slot = (*slot).max(s.end_ns);
        }
        false
    }

    /// Stable JSON rendering (no external serializer; schema documented in
    /// DESIGN.md). Span lists can be large, so `include_spans` gates the
    /// raw timeline.
    pub fn to_json(&self, include_spans: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall.as_nanos()));
        out.push_str(&format!(
            "  \"spans_opened\": {},\n  \"spans_closed\": {},\n",
            self.spans_opened, self.spans_closed
        ));
        out.push_str("  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", c.label(), self.counter(*c)));
        }
        out.push_str("},\n");
        out.push_str("  \"roles\": {");
        for (i, r) in Role::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n_spans = self.spans.iter().filter(|s| s.role == *r).count();
            out.push_str(&format!(
                "\"{}\": {{\"busy_ns\": {}, \"spans\": {}}}",
                r.label(),
                self.busy(*r).as_nanos(),
                n_spans
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"serial_sum_ns\": {},\n  \"union_busy_ns\": {},\n  \"overlap_ns\": {},\n  \"role_overlap\": {}",
            self.serial_sum().as_nanos(),
            self.union_busy().as_nanos(),
            self.overlap().as_nanos(),
            self.has_role_overlap()
        ));
        if !self.device_lanes.is_empty() {
            out.push_str(",\n  \"devices\": [");
            for (i, l) in self.device_lanes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"device\": {}, \"groups\": {}, \"bytes_h2d\": {}, \
                     \"bytes_d2h\": {}, \"kernel_time_ns\": {}, \"modeled_ns\": {}}}",
                    l.device, l.groups, l.bytes_h2d, l.bytes_d2h, l.kernel_time_ns, l.modeled_ns
                ));
            }
            out.push_str(&format!(
                "],\n  \"load_imbalance\": {:.4}",
                self.load_imbalance()
            ));
        }
        if !self.error_spend.is_empty() {
            out.push_str(",\n  \"error_spend\": [");
            for (i, s) in self.error_spend.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"stage\": {}, \"allocated\": {:e}, \"spent\": {:e}}}",
                    s.stage, s.allocated, s.spent
                ));
            }
            out.push(']');
        }
        if include_spans {
            out.push_str(",\n  \"spans\": [");
            for (i, s) in self.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                match s.stage() {
                    Some(stage) => out.push_str(&format!(
                        "{{\"role\": \"{}\", \"stage\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
                        s.role.label(),
                        stage,
                        s.start_ns,
                        s.end_ns
                    )),
                    None => out.push_str(&format!(
                        "{{\"role\": \"{}\", \"start_ns\": {}, \"end_ns\": {}}}",
                        s.role.label(),
                        s.start_ns,
                        s.end_ns
                    )),
                }
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn spans_balance_and_accumulate() {
        let t = Telemetry::new();
        {
            let _a = t.span(Role::Decompress);
            thread::sleep(Duration::from_millis(2));
        }
        t.timed(Role::Recompress, || thread::sleep(Duration::from_millis(1)));
        let run = t.finish();
        assert!(run.balanced());
        assert_eq!(run.spans().len(), 2);
        assert!(run.busy(Role::Decompress) >= Duration::from_millis(2));
        assert!(run.busy(Role::Recompress) >= Duration::from_millis(1));
        assert_eq!(run.busy(Role::CpuApply), Duration::ZERO);
    }

    #[test]
    fn counters_are_monotonic_and_shared_across_clones() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.add(Counter::BytesCompressed, 10);
        t2.add(Counter::BytesCompressed, 5);
        assert_eq!(t.counter(Counter::BytesCompressed), 15);
        let run = t.finish();
        assert_eq!(run.counter(Counter::BytesCompressed), 15);
        assert_eq!(run.counter(Counter::BytesH2d), 0);
    }

    #[test]
    fn sequential_spans_do_not_overlap() {
        let t = Telemetry::new();
        t.timed(Role::Decompress, || thread::sleep(Duration::from_millis(1)));
        t.timed(Role::Recompress, || thread::sleep(Duration::from_millis(1)));
        let run = t.finish();
        assert!(!run.has_role_overlap());
        // Union equals serial sum when nothing overlaps.
        assert_eq!(run.overlap(), Duration::ZERO);
    }

    #[test]
    fn concurrent_spans_overlap() {
        let t = Telemetry::new();
        let t2 = t.clone();
        let worker = thread::spawn(move || {
            t2.timed(Role::DeviceIssue, || {
                thread::sleep(Duration::from_millis(20))
            });
        });
        thread::sleep(Duration::from_millis(5));
        t.timed(Role::Decompress, || thread::sleep(Duration::from_millis(5)));
        worker.join().unwrap();
        let run = t.finish();
        assert!(run.balanced());
        assert!(run.has_role_overlap());
        assert!(run.overlap() > Duration::ZERO);
        assert!(run.union_busy() < run.serial_sum());
    }

    #[test]
    fn json_has_stable_keys() {
        let t = Telemetry::new();
        t.add(Counter::ChunkVisits, 3);
        t.timed(Role::CpuApply, || ());
        let json = t.finish().to_json(true);
        for key in [
            "\"wall_ns\"",
            "\"counters\"",
            "\"chunk_visits\": 3",
            "\"cache_hits\": 0",
            "\"cache_misses\": 0",
            "\"recompress_skipped\": 0",
            "\"evictions\": 0",
            "\"spill_bytes_written\": 0",
            "\"spill_bytes_read\": 0",
            "\"roles\"",
            "\"cpu_apply\"",
            "\"serial_sum_ns\"",
            "\"union_busy_ns\"",
            "\"overlap_ns\"",
            "\"spans\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn device_lanes_round_trip_and_score_imbalance() {
        let t = Telemetry::new();
        // No lanes: neutral imbalance, no JSON section.
        assert_eq!(t.finish().load_imbalance(), 1.0);
        assert!(!t.finish().to_json(false).contains("\"devices\""));

        t.set_device_lanes(vec![
            DeviceLane {
                device: 0,
                groups: 3,
                bytes_h2d: 100,
                bytes_d2h: 50,
                kernel_time_ns: 10,
                modeled_ns: 300,
            },
            DeviceLane {
                device: 1,
                groups: 1,
                bytes_h2d: 40,
                bytes_d2h: 20,
                kernel_time_ns: 4,
                modeled_ns: 100,
            },
        ]);
        let run = t.finish();
        assert_eq!(run.device_lanes().len(), 2);
        assert_eq!(run.device_lanes()[1].bytes_h2d, 40);
        // max 300, mean 200 -> 1.5.
        assert!((run.load_imbalance() - 1.5).abs() < 1e-12);
        let json = run.to_json(false);
        assert!(json.contains("\"devices\""), "{json}");
        assert!(json.contains("\"load_imbalance\": 1.5000"), "{json}");
        assert!(json.contains("\"modeled_ns\": 300"), "{json}");

        // A single lane is balanced by definition.
        let t = Telemetry::new();
        t.set_device_lanes(vec![DeviceLane {
            modeled_ns: 42,
            ..DeviceLane::default()
        }]);
        assert_eq!(t.finish().load_imbalance(), 1.0);
    }

    #[test]
    fn stage_attribution_round_trips() {
        let t = Telemetry::new();
        drop(t.stage_span(Role::Decompress, 4));
        let run = t.finish();
        assert_eq!(run.spans()[0].stage(), Some(4));
        assert!(run.to_json(true).contains("\"stage\": 4"));
    }

    #[test]
    fn error_spend_round_trips_and_renders() {
        let t = Telemetry::new();
        // No budget tracked: empty ledger, no JSON section.
        assert!(t.finish().error_spend().is_empty());
        assert!(!t.finish().to_json(false).contains("\"error_spend\""));

        t.set_error_spend(vec![
            StageErrorSpend {
                stage: 0,
                allocated: 1e-8,
                spent: 1e-8,
            },
            StageErrorSpend {
                stage: 1,
                allocated: 1e-8,
                spent: 0.0,
            },
        ]);
        let run = t.finish();
        assert_eq!(run.error_spend().len(), 2);
        assert_eq!(run.error_spend()[1].stage, 1);
        assert!((run.total_error_spent() - 1e-8).abs() < 1e-20);
        let json = run.to_json(false);
        assert!(json.contains("\"error_spend\""), "{json}");
        assert!(json.contains("\"allocated\": 1e-8"), "{json}");
    }
}
