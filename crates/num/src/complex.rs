//! Double-precision complex arithmetic.
//!
//! A deliberately small, `#[repr(C)]`, `Copy` complex type. State-vector
//! simulation spends essentially all of its FLOPs in `Complex64` mul/add, so
//! every method here is `#[inline]` and branch-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Layout-compatible with `[f64; 2]` (guaranteed by `#[repr(C)]`), which the
/// compression stack relies on to view amplitude buffers as flat `f64`
/// planes.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex::Complex64::new`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a unit phase. The workhorse of rotation gates.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Squared magnitude `|z|^2 = re^2 + im^2`.
    ///
    /// This is the Born-rule probability weight of an amplitude; it avoids
    /// the square root of [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.norm();
        let two = 2.0_f64;
        let re = ((r + self.re) / two).sqrt();
        let im = ((r - self.re) / two).sqrt() * self.im.signum();
        c64(re, im)
    }

    /// Fused multiply-add: `self * b + acc`.
    ///
    /// Written so LLVM can contract it into scalar FMAs when the target
    /// supports them.
    #[inline]
    pub fn mul_add(self, b: Complex64, acc: Complex64) -> Self {
        c64(
            self.re * b.re - self.im * b.im + acc.re,
            self.re * b.im + self.im * b.re + acc.im,
        )
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Component-wise approximate equality with absolute tolerance `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1 by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}{:+.*}i", p, self.re, p, self.im)
        } else {
            write!(f, "{}{:+}i", self.re, self.im)
        }
    }
}

/// Reinterprets a slice of complex amplitudes as a flat `f64` slice
/// (`[re0, im0, re1, im1, ...]`).
///
/// Sound because `Complex64` is `#[repr(C)]` over two `f64`s.
#[inline]
pub fn as_f64_slice(amps: &[Complex64]) -> &[f64] {
    // SAFETY: Complex64 is #[repr(C)] { f64, f64 } — same size/align as
    // [f64; 2], and any bit pattern is a valid f64.
    unsafe { std::slice::from_raw_parts(amps.as_ptr() as *const f64, amps.len() * 2) }
}

/// Mutable variant of [`as_f64_slice`].
#[inline]
pub fn as_f64_slice_mut(amps: &mut [Complex64]) -> &mut [f64] {
    // SAFETY: see as_f64_slice.
    unsafe { std::slice::from_raw_parts_mut(amps.as_mut_ptr() as *mut f64, amps.len() * 2) }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex64::ONE, c64(1.0, 0.0));
        assert_eq!(Complex64::I, c64(0.0, 1.0));
        assert_eq!(Complex64::from(3.5), c64(3.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(1.5, -2.5);
        assert!((z + Complex64::ZERO).approx_eq(z, TOL));
        assert!((z * Complex64::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(Complex64::ZERO, TOL));
        assert!((z * z.inv()).approx_eq(Complex64::ONE, TOL));
        assert!((-z + z).approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn mul_matches_expanded_form() {
        let a = c64(2.0, 3.0);
        let b = c64(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12i^2 = -14 + 5i
        assert!((a * b).approx_eq(c64(-14.0, 5.0), TOL));
    }

    #[test]
    fn division_round_trips() {
        let a = c64(2.0, 3.0);
        let b = c64(-1.0, 4.0);
        assert!(((a / b) * b).approx_eq(a, 1e-10));
    }

    #[test]
    fn conj_and_norm() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = c64(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0), c64(3.0, -4.0)] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt({z:?}) = {s:?}");
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        let c = c64(-0.5, 0.25);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn scalar_ops() {
        let z = c64(1.0, -2.0);
        assert!((z * 2.0).approx_eq(c64(2.0, -4.0), TOL));
        assert!((2.0 * z).approx_eq(c64(2.0, -4.0), TOL));
        assert!((z / 2.0).approx_eq(c64(0.5, -1.0), TOL));
    }

    #[test]
    fn assign_ops() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert_eq!(z, c64(0.0, 2.0));
        z /= c64(0.0, 2.0);
        assert!(z.approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn sum_folds() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(c64(10.0, 10.0), TOL));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(!c64(1.0, 2.0).is_nan());
        assert!(c64(1.0, 2.0).is_finite());
        assert!(!c64(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn f64_slice_view_is_interleaved() {
        let mut amps = vec![c64(1.0, 2.0), c64(3.0, 4.0)];
        assert_eq!(as_f64_slice(&amps), &[1.0, 2.0, 3.0, 4.0]);
        as_f64_slice_mut(&mut amps)[3] = 9.0;
        assert_eq!(amps[1], c64(3.0, 9.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:.2}", c64(1.0, 2.0)), "1.00+2.00i");
    }
}
