//! Summary statistics for the experiment harness.
//!
//! Benchmarks report medians and spreads rather than single samples; this
//! module provides a tiny, dependency-free `Summary` plus human-readable
//! formatting of durations and byte counts.

use std::time::Duration;

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics. Returns an all-zero summary for an empty
    /// sample set.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
        }
    }
}

/// Linear-interpolation percentile of an already-sorted sample set.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Geometric mean of strictly positive samples.
pub fn geomean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "empty sample set");
    let log_sum: f64 = samples
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive samples");
            x.ln()
        })
        .sum();
    (log_sum / samples.len() as f64).exp()
}

/// Formats a byte count with binary units ("1.50 MiB").
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Formats a duration with an auto-selected unit ("12.3 ms").
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Formats a throughput given bytes moved and elapsed seconds ("11.9 GiB/s").
pub fn format_throughput(bytes: usize, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "inf".to_string();
    }
    format!("{}/s", format_bytes((bytes as f64 / seconds) as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-15);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(format_bytes(5usize << 30), "5.00 GiB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_millis(2500)), "2.500 s");
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(format_throughput(1024 * 1024, 1.0), "1.00 MiB/s");
        assert_eq!(format_throughput(100, 0.0), "inf");
    }
}
