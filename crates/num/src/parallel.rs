//! Scoped-thread chunked parallelism.
//!
//! MEMQSIM's Fig. 2 step (5) uses "idle cores" to decompress/update/compress
//! chunks while the device works. We implement that with
//! `crossbeam::thread::scope` rather than a global pool: each call site says
//! how many workers it wants (configs make this explicit so the pipeline is
//! exercised under real multithreading in tests, even though the benchmark
//! host may have a single core).

use crossbeam::thread;

/// Runs `f(start, chunk)` over `data` split into at most `workers` contiguous
/// near-equal pieces, in parallel. `start` is the offset of `chunk` within
/// `data`.
///
/// With `workers <= 1` or a single piece, runs inline on the caller's thread
/// (no spawn overhead).
pub fn par_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        f(0, data);
        return;
    }
    let chunk_len = n.div_ceil(workers);
    thread::scope(|s| {
        let mut rest = data;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            s.spawn(move |_| fref(start, head));
            start += take;
            rest = tail;
        }
    })
    .expect("worker thread panicked");
}

/// Parallel index loop: runs `f(i)` for every `i in 0..n`, distributing
/// blocks of indices over at most `workers` scoped threads.
pub fn par_for<F>(n: usize, workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let block = n.div_ceil(workers);
    thread::scope(|s| {
        for w in 0..workers {
            let lo = w * block;
            let hi = ((w + 1) * block).min(n);
            if lo >= hi {
                break;
            }
            let fref = &f;
            s.spawn(move |_| {
                for i in lo..hi {
                    fref(i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce: computes `f(i)` for each index and folds the results
/// with `reduce`, starting from `identity` in each worker.
///
/// `reduce` must be associative and commute with the identity for the result
/// to be deterministic (per-worker partials are combined in worker order, so
/// associativity suffices for floating-point reproducibility at fixed
/// `workers`).
pub fn par_map_reduce<R, F, G>(n: usize, workers: usize, identity: R, f: F, reduce: G) -> R
where
    R: Send + Clone,
    F: Fn(usize) -> R + Sync,
    G: Fn(R, R) -> R + Sync + Send + Copy,
{
    if n == 0 {
        return identity;
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = reduce(acc, f(i));
        }
        return acc;
    }
    let block = n.div_ceil(workers);
    let partials: Vec<R> = thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * block;
            let hi = ((w + 1) * block).min(n);
            if lo >= hi {
                break;
            }
            let fref = &f;
            let id = identity.clone();
            handles.push(s.spawn(move |_| {
                let mut acc = id;
                for i in lo..hi {
                    acc = reduce(acc, fref(i));
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("worker thread panicked");
    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        for workers in [1, 2, 3, 8, 100] {
            let mut v = vec![0u32; 1000];
            par_chunks_mut(&mut v, workers, |start, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (start + k) as u32;
                }
            });
            for (i, x) in v.iter().enumerate() {
                assert_eq!(*x, i as u32, "workers={workers}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_empty_and_tiny() {
        let mut e: Vec<u8> = vec![];
        par_chunks_mut(&mut e, 4, |_, _| panic!("must not run"));
        let mut one = vec![5u8];
        par_chunks_mut(&mut one, 16, |start, c| {
            assert_eq!(start, 0);
            c[0] += 1;
        });
        assert_eq!(one[0], 6);
    }

    #[test]
    fn par_for_visits_each_index_once() {
        for workers in [1, 2, 5] {
            let count = AtomicUsize::new(0);
            let sum = AtomicUsize::new(0);
            par_for(100, workers, |i| {
                count.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 100);
            assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        }
    }

    #[test]
    fn par_for_zero_is_noop() {
        par_for(0, 4, |_| panic!("must not run"));
    }

    #[test]
    fn map_reduce_sums() {
        for workers in [1, 2, 3, 7] {
            let s = par_map_reduce(1000, workers, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_reduce_max() {
        let m = par_map_reduce(
            100,
            4,
            f64::NEG_INFINITY,
            |i| ((i as f64) - 50.0).abs(),
            f64::max,
        );
        assert_eq!(m, 50.0);
    }

    #[test]
    fn map_reduce_empty_returns_identity() {
        let r = par_map_reduce(0, 4, 42i32, |_| panic!("must not run"), |a, b| a + b);
        assert_eq!(r, 42);
    }
}
