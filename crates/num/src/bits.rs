//! Bit-manipulation kernel for amplitude indexing.
//!
//! State-vector simulation is, at heart, index arithmetic: a gate on qubit
//! `q` couples amplitude `i` (with bit `q` clear) to amplitude `i | 1<<q`.
//! Iterating over all such pairs without branching is done by *inserting* a
//! zero bit at position `q` into a dense counter — [`insert_zero_bit`].
//! The chunked store additionally needs to split a global amplitude index
//! into `(chunk, offset)` pairs and to know which chunk a cross-chunk gate
//! pairs with — [`split_index`], [`pair_chunk`].

/// Inserts a `0` bit at position `pos` of `i`, shifting higher bits left.
///
/// Mapping the dense range `0..2^(n-1)` through this function enumerates all
/// indices of an `n`-bit space whose bit `pos` is zero, in increasing order.
///
/// ```
/// use mq_num::bits::insert_zero_bit;
/// // indices with bit 1 clear, over a 3-bit space: 000,001,100,101
/// let got: Vec<usize> = (0..4).map(|i| insert_zero_bit(i, 1)).collect();
/// assert_eq!(got, vec![0b000, 0b001, 0b100, 0b101]);
/// ```
#[inline]
pub fn insert_zero_bit(i: usize, pos: u32) -> usize {
    let low_mask = (1usize << pos) - 1;
    let low = i & low_mask;
    let high = (i & !low_mask) << 1;
    high | low
}

/// Inserts two `0` bits at (distinct) positions `p_lo < p_hi`.
///
/// Enumerates indices with both bits clear — the pair-iteration kernel for
/// two-qubit gates.
#[inline]
pub fn insert_two_zero_bits(i: usize, p_lo: u32, p_hi: u32) -> usize {
    debug_assert!(p_lo < p_hi);
    // Insert at the lower position first, then the higher (whose index is
    // unaffected because p_hi > p_lo even after the first insertion shifts
    // bits >= p_lo up by one — p_hi is given in the *final* index space).
    let j = insert_zero_bit(i, p_lo);
    insert_zero_bit2_helper(j, p_hi)
}

#[inline]
fn insert_zero_bit2_helper(i: usize, pos: u32) -> usize {
    insert_zero_bit(i, pos)
}

/// True if `i`'s bit `pos` is set.
#[inline]
pub fn bit(i: usize, pos: u32) -> bool {
    (i >> pos) & 1 == 1
}

/// Sets bit `pos` of `i`.
#[inline]
pub fn set_bit(i: usize, pos: u32) -> usize {
    i | (1usize << pos)
}

/// Clears bit `pos` of `i`.
#[inline]
pub fn clear_bit(i: usize, pos: u32) -> usize {
    i & !(1usize << pos)
}

/// Flips bit `pos` of `i`.
#[inline]
pub fn flip_bit(i: usize, pos: u32) -> usize {
    i ^ (1usize << pos)
}

/// Reverses the low `n` bits of `i` (bits `n..` must be zero).
///
/// Used by the QFT, whose natural output is bit-reversed.
#[inline]
pub fn bit_reverse(i: usize, n: u32) -> usize {
    debug_assert!(n == 0 || i >> n == 0, "high bits must be clear");
    if n == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - n)
}

/// `ceil(log2(x))` for `x >= 1`.
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    assert!(x >= 1);
    if x == 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// `floor(log2(x))` for `x >= 1`.
#[inline]
pub fn floor_log2(x: usize) -> u32 {
    assert!(x >= 1);
    usize::BITS - 1 - x.leading_zeros()
}

/// True if `x` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(x: usize) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Splits a global amplitude index into `(chunk_index, offset_in_chunk)` for
/// chunks of `2^chunk_bits` amplitudes.
#[inline]
pub fn split_index(global: usize, chunk_bits: u32) -> (usize, usize) {
    (global >> chunk_bits, global & ((1usize << chunk_bits) - 1))
}

/// Joins `(chunk_index, offset)` back into a global amplitude index.
#[inline]
pub fn join_index(chunk: usize, offset: usize, chunk_bits: u32) -> usize {
    (chunk << chunk_bits) | offset
}

/// For a gate on global qubit `q >= chunk_bits`, returns the chunk paired
/// with `chunk` (they hold the two halves of each amplitude pair).
#[inline]
pub fn pair_chunk(chunk: usize, q: u32, chunk_bits: u32) -> usize {
    debug_assert!(q >= chunk_bits);
    chunk ^ (1usize << (q - chunk_bits))
}

/// Iterator over all amplitude-pair base indices for a gate on qubit `q` in
/// an `n`-qubit register: yields every index with bit `q` clear.
pub fn pair_bases(n_qubits: u32, q: u32) -> impl Iterator<Item = usize> {
    debug_assert!(q < n_qubits);
    (0..1usize << (n_qubits - 1)).map(move |i| insert_zero_bit(i, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_zero_bit_enumerates_cleared_indices() {
        for n in 1..=6u32 {
            for q in 0..n {
                let got: Vec<usize> = (0..1usize << (n - 1))
                    .map(|i| insert_zero_bit(i, q))
                    .collect();
                let want: Vec<usize> = (0..1usize << n).filter(|i| !bit(*i, q)).collect();
                assert_eq!(got, want, "n={n} q={q}");
            }
        }
    }

    #[test]
    fn insert_two_zero_bits_enumerates_doubly_cleared() {
        let n = 5u32;
        for lo in 0..n {
            for hi in lo + 1..n {
                let got: Vec<usize> = (0..1usize << (n - 2))
                    .map(|i| insert_two_zero_bits(i, lo, hi))
                    .collect();
                let want: Vec<usize> = (0..1usize << n)
                    .filter(|i| !bit(*i, lo) && !bit(*i, hi))
                    .collect();
                assert_eq!(got, want, "lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn bit_ops() {
        assert!(bit(0b101, 0));
        assert!(!bit(0b101, 1));
        assert_eq!(set_bit(0b100, 0), 0b101);
        assert_eq!(clear_bit(0b101, 2), 0b001);
        assert_eq!(flip_bit(0b101, 1), 0b111);
        assert_eq!(flip_bit(0b111, 1), 0b101);
    }

    #[test]
    fn bit_reverse_small() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 0), 0);
        // involution
        for n in 1..=10u32 {
            for i in 0..1usize << n.min(8) {
                assert_eq!(bit_reverse(bit_reverse(i, n), n), i);
            }
        }
    }

    #[test]
    fn logs() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(1024), 10);
        assert_eq!(floor_log2(1025), 10);
    }

    #[test]
    fn pow2_check() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1 << 20));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(12));
    }

    #[test]
    fn split_join_round_trip() {
        for chunk_bits in 0..8u32 {
            for global in 0..512usize {
                let (c, o) = split_index(global, chunk_bits);
                assert_eq!(join_index(c, o, chunk_bits), global);
                assert!(o < 1 << chunk_bits);
            }
        }
    }

    #[test]
    fn pair_chunk_is_involution_and_differs_in_one_bit() {
        let chunk_bits = 4;
        for q in 4..8u32 {
            for c in 0..16usize {
                let p = pair_chunk(c, q, chunk_bits);
                assert_ne!(p, c);
                assert_eq!(pair_chunk(p, q, chunk_bits), c);
                assert_eq!((p ^ c).count_ones(), 1);
            }
        }
    }

    #[test]
    fn pair_bases_covers_half_the_space() {
        let v: Vec<usize> = pair_bases(4, 2).collect();
        assert_eq!(v.len(), 8);
        for i in &v {
            assert!(!bit(*i, 2));
        }
    }
}
