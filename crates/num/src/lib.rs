//! # mq-num — numeric substrate for the MEMQSIM reproduction
//!
//! This crate provides the low-level numeric machinery every other crate in
//! the workspace builds on:
//!
//! * [`Complex64`] — a from-scratch double-precision complex number (the
//!   workspace intentionally avoids `num-complex`; amplitudes are the hottest
//!   data type in a state-vector simulator and we want full control over its
//!   layout and inlining).
//! * [`bits`] — the bit-manipulation kernel used for amplitude indexing
//!   (pair addressing for single-qubit gates, bit insertion, bit reversal for
//!   the QFT, chunk/offset splitting for the chunked store).
//! * [`aligned`] — cache-line-aligned heap buffers for state-vector storage.
//! * [`metrics`] — error and fidelity metrics used by the compression stack
//!   and the experiment harness (max abs error, RMSE, PSNR, state fidelity).
//! * [`stats`] — small summary-statistics helpers for benchmark reporting.
//! * [`parallel`] — scoped-thread chunked parallel-for built on
//!   `crossbeam::thread::scope`, the idiom the engines use for "idle core"
//!   CPU-side updates (paper Fig. 2, step 5).

//!
//! ## Example
//!
//! ```
//! use mq_num::{Complex64, bits, metrics};
//!
//! let amp = Complex64::cis(std::f64::consts::FRAC_PI_4);
//! assert!((amp.norm() - 1.0).abs() < 1e-15);
//!
//! // Pair addressing for a gate on qubit 2 of a 4-qubit register:
//! let lo = bits::insert_zero_bit(3, 2);
//! let hi = bits::set_bit(lo, 2);
//! assert_eq!((lo, hi), (0b0011, 0b0111));
//!
//! let state = [Complex64::ONE, Complex64::ZERO];
//! assert!(metrics::is_normalized(&state, 1e-12));
//! ```

pub mod aligned;
pub mod bits;
pub mod complex;
pub mod metrics;
pub mod parallel;
pub mod stats;

pub use aligned::AlignedVec;
pub use complex::Complex64;

/// The amplitude type used throughout the workspace.
pub type Amplitude = Complex64;

/// Number of bytes occupied by one amplitude (two `f64`s).
pub const AMP_BYTES: usize = std::mem::size_of::<Complex64>();

/// Returns the number of amplitudes in an `n`-qubit state vector (`2^n`).
///
/// # Panics
/// Panics if `n` is large enough to overflow `usize` (n >= 64 on 64-bit).
#[inline]
pub fn dim(n_qubits: usize) -> usize {
    assert!(
        n_qubits < usize::BITS as usize,
        "qubit count {n_qubits} overflows the address space"
    );
    1usize << n_qubits
}

/// Returns the memory footprint in bytes of a dense `n`-qubit state vector.
#[inline]
pub fn dense_bytes(n_qubits: usize) -> usize {
    dim(n_qubits) * AMP_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_is_power_of_two() {
        assert_eq!(dim(0), 1);
        assert_eq!(dim(1), 2);
        assert_eq!(dim(10), 1024);
        assert_eq!(dim(20), 1 << 20);
    }

    #[test]
    fn dense_bytes_counts_sixteen_per_amp() {
        assert_eq!(AMP_BYTES, 16);
        assert_eq!(dense_bytes(20), (1 << 20) * 16);
    }

    #[test]
    #[should_panic]
    fn dim_panics_on_overflow() {
        let _ = dim(64);
    }
}
