//! Error and fidelity metrics.
//!
//! Used in three places: (1) the compression stack verifies its error-bound
//! guarantee, (2) the engines track how far a lossy-compressed run drifts
//! from the dense reference, (3) the experiment harness reports PSNR /
//! fidelity columns.

use crate::complex::Complex64;

/// Maximum absolute component-wise error between two `f64` sequences.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square error between two `f64` sequences.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the value range
/// of `a`. Returns `f64::INFINITY` for identical inputs.
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    let e = rmse(a, b);
    if e == 0.0 {
        return f64::INFINITY;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in a {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    20.0 * (range / e).log10()
}

/// L2 norm of a complex vector.
pub fn l2_norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Inner product `<a|b> = sum conj(a_i) * b_i`.
pub fn inner_product(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .fold(Complex64::ZERO, |acc, (x, y)| x.conj().mul_add(*y, acc))
}

/// Quantum state fidelity `|<a|b>|^2 / (|a|^2 |b|^2)`.
///
/// Normalization-insensitive, so it is meaningful even after lossy
/// compression has slightly denormalized a state. Returns 1.0 for two zero
/// vectors (vacuously identical).
pub fn fidelity(a: &[Complex64], b: &[Complex64]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let ip = inner_product(a, b).norm();
    let f = ip / (na * nb);
    (f * f).min(1.0)
}

/// Maximum absolute amplitude difference between two states.
pub fn max_amp_err(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

/// Total-variation distance between two probability distributions.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// True if `|v|` is within `tol` of 1.
pub fn is_normalized(v: &[Complex64], tol: f64) -> bool {
    (l2_norm(v) - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn max_abs_and_rmse_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.0];
        assert_eq!(max_abs_err(&a, &b), 1.0);
        let want = ((0.0 + 0.25 + 1.0) / 3.0f64).sqrt();
        assert!((rmse(&a, &b) - want).abs() < 1e-15);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = [0.0, 0.5, 1.0];
        assert!(psnr(&a, &a).is_infinite());
        let b = [0.0, 0.5, 1.001];
        assert!(psnr(&a, &b) > 40.0);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let small: Vec<f64> = a.iter().map(|x| x + 1e-6).collect();
        let big: Vec<f64> = a.iter().map(|x| x + 1e-2).collect();
        assert!(psnr(&a, &small) > psnr(&a, &big));
    }

    #[test]
    fn l2_and_inner_product() {
        let a = [c64(1.0, 0.0), c64(0.0, 1.0)];
        assert!((l2_norm(&a) - 2.0f64.sqrt()).abs() < 1e-15);
        let ip = inner_product(&a, &a);
        assert!(ip.approx_eq(c64(2.0, 0.0), 1e-15));
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let a = [c64(0.6, 0.0), c64(0.0, 0.8)];
        assert!((fidelity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = [c64(1.0, 0.0), c64(0.0, 0.0)];
        let b = [c64(0.0, 0.0), c64(1.0, 0.0)];
        assert!(fidelity(&a, &b) < 1e-15);
    }

    #[test]
    fn fidelity_is_phase_invariant() {
        let a = [c64(0.6, 0.0), c64(0.8, 0.0)];
        let phase = Complex64::cis(1.234);
        let b: Vec<Complex64> = a.iter().map(|z| *z * phase).collect();
        assert!((fidelity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_is_scale_invariant() {
        let a = [c64(0.6, 0.0), c64(0.8, 0.0)];
        let b: Vec<Complex64> = a.iter().map(|z| *z * 3.0).collect();
        assert!((fidelity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_zero_vectors() {
        let z = [Complex64::ZERO; 2];
        let a = [c64(1.0, 0.0), Complex64::ZERO];
        assert_eq!(fidelity(&z, &z), 1.0);
        assert_eq!(fidelity(&z, &a), 0.0);
    }

    #[test]
    fn total_variation_basics() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-15);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn normalization_check() {
        let a = [c64(0.6, 0.0), c64(0.0, 0.8)];
        assert!(is_normalized(&a, 1e-12));
        let b = [c64(0.6, 0.0), c64(0.0, 0.9)];
        assert!(!is_normalized(&b, 1e-3));
    }

    #[test]
    fn max_amp_err_basics() {
        let a = [c64(1.0, 0.0), c64(0.0, 0.0)];
        let b = [c64(1.0, 0.0), c64(0.0, 0.5)];
        assert!((max_amp_err(&a, &b) - 0.5).abs() < 1e-15);
    }
}
