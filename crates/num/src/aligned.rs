//! Cache-line-aligned heap buffers.
//!
//! State-vector chunks are streamed through compressors, staging buffers and
//! (simulated) DMA engines; 64-byte alignment keeps every chunk start on a
//! cache-line boundary and makes the buffers friendly to future SIMD kernels.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// Alignment (bytes) for all [`AlignedVec`] allocations: one x86-64 cache line.
pub const CACHE_LINE: usize = 64;

/// A fixed-length, 64-byte-aligned, zero-initialized heap buffer.
///
/// Unlike `Vec<T>`, an `AlignedVec` cannot grow — chunk sizes in MEMQSIM are
/// fixed at plan time, and a non-growing buffer means the allocation is done
/// exactly once and never moves (important for the simulated-DMA code that
/// holds raw ranges into it).
pub struct AlignedVec<T: Copy> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; T: Copy has no drop
// glue or interior mutability.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocates a zero-initialized buffer of `len` elements.
    ///
    /// # Panics
    /// Panics if the layout is invalid (overflowing size) — allocation
    /// failure aborts via `handle_alloc_error`, as is conventional.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size (len > 0, size_of::<T>() > 0 is
        // enforced by the assert in layout()).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            ptr: raw as *mut T,
            len,
        }
    }

    /// Allocates a buffer of `len` elements, every element set to `fill`.
    pub fn filled(len: usize, fill: T) -> Self {
        let mut v = Self::zeroed(len);
        for x in v.iter_mut() {
            *x = fill;
        }
        v
    }

    /// Builds an aligned buffer by copying a slice.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe a single live allocation we own.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as as_slice, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    fn layout(len: usize) -> Layout {
        assert!(std::mem::size_of::<T>() > 0, "ZSTs are not supported");
        let size = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("AlignedVec size overflow");
        let align = CACHE_LINE.max(std::mem::align_of::<T>());
        Layout::from_size_align(size, align).expect("invalid AlignedVec layout")
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the identical layout in zeroed().
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Index<usize> for AlignedVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Copy> IndexMut<usize> for AlignedVec<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::Complex64;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v: AlignedVec<f64> = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn filled_and_from_slice() {
        let v = AlignedVec::filled(5, 3u32);
        assert_eq!(v.as_slice(), &[3, 3, 3, 3, 3]);
        let w = AlignedVec::from_slice(&[1u8, 2, 3]);
        assert_eq!(w.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let v: AlignedVec<Complex64> = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
        let _ = v.clone();
    }

    #[test]
    fn mutation_through_deref() {
        let mut v: AlignedVec<Complex64> = AlignedVec::zeroed(4);
        v[2] = c64(1.0, -1.0);
        assert_eq!(v[2], c64(1.0, -1.0));
        v.as_mut_slice()[0] = c64(0.5, 0.0);
        assert_eq!(v[0], c64(0.5, 0.0));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0f64, 2.0]);
        let b = a.clone();
        a[0] = 9.0;
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
        assert_eq!(a.as_slice(), &[9.0, 2.0]);
    }

    #[test]
    fn eq_compares_contents() {
        let a = AlignedVec::from_slice(&[1u64, 2, 3]);
        let b = AlignedVec::from_slice(&[1u64, 2, 3]);
        let c = AlignedVec::from_slice(&[1u64, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn complex_buffers_are_cache_aligned() {
        for len in [1usize, 7, 64, 1 << 12] {
            let v: AlignedVec<Complex64> = AlignedVec::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE, 0, "len={len}");
        }
    }
}
