//! Result-file emission for the experiment binaries.
//!
//! Each binary prints its human-readable tables to stdout and, where the
//! experiment produces telemetry, also writes a machine-readable JSON file
//! under `results/` so downstream tooling (plots, regression checks) never
//! has to scrape the console output.

use std::io::Write;
use std::path::PathBuf;

/// Writes `json` to `results/<name>.json`, creating the directory if
/// needed, and returns the path written.
pub fn write_results_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_results_dir() {
        let path = write_results_json("report_module_selftest", "{\"ok\": true}").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"ok\": true}\n");
        std::fs::remove_file(&path).unwrap();
    }
}
