//! # mq-bench — the MEMQSIM experiment harness
//!
//! Shared plumbing for the experiment binaries (`src/bin/*`), each of which
//! regenerates one table, figure or claim from the paper (see the
//! experiment index in `DESIGN.md`):
//!
//! | binary                | paper artifact |
//! |-----------------------|----------------|
//! | `table1`              | Table 1 + the 870x / 1.03x claims (C1, C2) |
//! | `qubit_extension`     | the "+5 qubits" claim (C3) |
//! | `modularity`          | Figure 1 (backend modularity) |
//! | `pipeline_breakdown`  | Figure 2 (pipeline stages & overlap) |
//! | `granularity`         | design-challenge-2 ablation (A1) |
//! | `access_patterns`     | design-challenge-3 analysis (A2) |
//! | `codec_sweep`         | compressor comparison (A3) |
//! | `fidelity_sweep`      | lossy error → result quality (A4) |
//! | `adaptive_sweep`      | per-chunk codec selection under a fidelity budget (A6) |
//!
//! This library provides markdown table rendering, mid-circuit state
//! snapshots as compression workloads, and small CLI-argument helpers.

pub mod report;
pub mod table;
pub mod workloads;

pub use report::write_results_json;
pub use table::Table;

/// Parses `--key value` style options from `std::env::args`, with defaults.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// The value following `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// True if the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Formats seconds the way the paper's Table 1 does (three significant
/// figures, plain seconds).
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::from_vec(
            ["--qubits", "20", "--fast"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(a.get("qubits", 5u32), 20);
        assert_eq!(a.get("missing", 7u32), 7);
        assert!(a.has("fast"));
        assert!(!a.has("slow"));
    }

    #[test]
    fn codec_args_parse_through_the_shared_spec_parser() {
        // Bins take `--codec <spec>` via `Args::get` + `CodecSpec: FromStr`,
        // so there is exactly one codec-name parser in the workspace.
        use mq_compress::CodecSpec;
        let a = Args::from_vec(
            ["--codec", "auto:1e-9"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(
            a.get("codec", CodecSpec::Fpc),
            CodecSpec::Auto { eb: Some(1e-9) }
        );
        let bad = Args::from_vec(["--codec", "lz4"].iter().map(|s| s.to_string()).collect());
        assert_eq!(bad.get("codec", CodecSpec::Fpc), CodecSpec::Fpc);
    }

    #[test]
    fn args_ignore_malformed_values() {
        let a = Args::from_vec(["--qubits", "abc"].iter().map(|s| s.to_string()).collect());
        assert_eq!(a.get("qubits", 5u32), 5);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.003), "0.003");
        assert_eq!(fmt_secs(2.7), "2.70");
        assert_eq!(fmt_secs(294.4), "294.4");
    }
}
