//! Workload construction for the experiments.
//!
//! Codec experiments need *realistic* state-vector data: amplitudes of real
//! circuits captured mid-execution, not synthetic ramps. This module runs
//! library circuits on the dense simulator and snapshots their states.

use mq_circuit::{library, Circuit};
use mq_statevec::{run_circuit, CpuConfig};

/// A named f64 buffer used as compressor input.
#[derive(Debug, Clone)]
pub struct CodecWorkload {
    /// Display name.
    pub name: String,
    /// Real/imaginary planes of a mid-circuit state (the layout the store
    /// compresses).
    pub data: Vec<f64>,
}

/// Snapshots the final state of `circuit` as re/im planes.
pub fn state_planes(circuit: &Circuit) -> Vec<f64> {
    let state = run_circuit(circuit, &CpuConfig::default());
    let amps = state.amplitudes();
    let n = amps.len();
    let mut planes = vec![0.0f64; 2 * n];
    for (i, z) in amps.iter().enumerate() {
        planes[i] = z.re;
        planes[n + i] = z.im;
    }
    planes
}

/// The standard codec workload set at `n` qubits: spans sparse (GHZ),
/// structured (QFT, QAOA), and adversarial (random) amplitude statistics.
pub fn codec_workloads(n: u32) -> Vec<CodecWorkload> {
    let circuits: Vec<Circuit> = vec![
        library::ghz(n),
        library::w_state(n),
        library::qft(n),
        library::qaoa_maxcut(n, &library::ring_graph(n), &[0.4, 0.8], &[0.3, 0.6]),
        library::random_circuit(n, 12, 1234),
    ];
    circuits
        .into_iter()
        .map(|c| CodecWorkload {
            name: c.name().to_string(),
            data: state_planes(&c),
        })
        .collect()
}

/// The circuit suite used by end-to-end experiments (named circuits at a
/// given width).
pub fn circuit_suite(n: u32) -> Vec<Circuit> {
    library::standard_suite(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_have_twice_the_amplitude_count() {
        let p = state_planes(&library::ghz(5));
        assert_eq!(p.len(), 2 * 32);
        // GHZ: exactly two nonzero reals, no imaginaries.
        let nonzero = p.iter().filter(|x| x.abs() > 1e-12).count();
        assert_eq!(nonzero, 2);
    }

    #[test]
    fn workload_set_is_diverse() {
        let ws = codec_workloads(6);
        assert_eq!(ws.len(), 5);
        let sparsity = |w: &CodecWorkload| {
            w.data.iter().filter(|x| x.abs() < 1e-12).count() as f64 / w.data.len() as f64
        };
        // GHZ nearly all zeros; random circuit nearly none.
        assert!(sparsity(&ws[0]) > 0.9);
        assert!(sparsity(&ws[4]) < 0.1);
    }
}
