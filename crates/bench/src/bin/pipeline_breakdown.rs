//! **Experiment F2 — Figure 2: the data-management pipeline.**
//!
//! Breaks a hybrid run into the paper's six steps (decompress, H2D, device
//! kernels, D2H, CPU-side updates, recompress) and compares the pipelined
//! execution against the serial ablation. Because this host has a single
//! CPU core, the overlap benefit is reported on the *modeled* clock (the
//! deterministic device/cost model), alongside measured wall time.
//!
//! Usage: `cargo run -p mq-bench --release --bin pipeline_breakdown
//!         [--qubits 16] [--chunk-bits 12]`

use memqsim_core::{build_store, engine::hybrid, Counter, MemQSimConfig};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceSpec};
use std::time::Duration;

fn fmt(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 16u32);
    let chunk_bits: u32 = args.get("chunk-bits", 12u32);

    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-10 },
        workers: 1,
        ..Default::default()
    };

    println!("# F2 — pipeline breakdown (qft{n}, chunks of 2^{chunk_bits} amps)\n");

    let circuit = library::qft(n);
    // Residency-cache budget for the cached mode: half the working set
    // (dense state + one group staging buffer).
    let cache_bytes = ((1usize << n) * 16 + (1usize << (chunk_bits + 2)) * 16) / 2;
    let mut rows = Vec::new();
    for (key, label, pipelined, dual_stream, cache) in [
        ("serial", "serial (no overlap)", false, false, 0),
        ("pipelined", "pipelined (Fig. 2)", true, false, 0),
        ("dual_stream", "pipelined + dual-stream", true, true, 0),
        (
            "cached",
            "pipelined + residency cache",
            true,
            false,
            cache_bytes,
        ),
    ] {
        let cfg = MemQSimConfig {
            dual_stream,
            cache_bytes: cache,
            ..cfg
        };
        let store = build_store(n, &cfg).expect("store construction failed");
        let device = Device::new(DeviceSpec::pcie_gen3());
        let r = hybrid::run(&store, &circuit, &cfg, &device, pipelined).expect("hybrid run failed");
        rows.push((key, label, r));
    }

    let mut t = Table::new(&[
        "mode",
        "decompress",
        "H2D (model)",
        "kernels (model)",
        "D2H (model)",
        "recompress",
        "modeled serial",
        "modeled overlapped",
        "wall",
    ]);
    for (_, label, r) in &rows {
        t.row(&[
            label.to_string(),
            fmt(r.decompress),
            fmt(r.device.modeled_h2d),
            fmt(r.device.modeled_kernel),
            fmt(r.device.modeled_d2h),
            fmt(r.compress),
            fmt(r.modeled_serial),
            fmt(r.modeled_overlapped),
            fmt(r.wall),
        ]);
    }
    println!("{t}");

    // Measured role timeline, straight from the mq-telemetry span record:
    // the union of busy intervals is what actually ran concurrently.
    let mut measured = Table::new(&[
        "mode",
        "busy sum",
        "busy union",
        "measured overlap",
        "roles overlap?",
        "H2D bytes",
        "D2H bytes",
        "kernel launches",
        "decompressed",
        "cache hits",
    ]);
    for (_, label, r) in &rows {
        let t = &r.telemetry;
        measured.row(&[
            label.to_string(),
            fmt(t.serial_sum()),
            fmt(t.union_busy()),
            fmt(t.overlap()),
            t.has_role_overlap().to_string(),
            t.counter(Counter::BytesH2d).to_string(),
            t.counter(Counter::BytesD2h).to_string(),
            t.counter(Counter::KernelLaunches).to_string(),
            t.counter(Counter::BytesDecompressed).to_string(),
            t.counter(Counter::CacheHits).to_string(),
        ]);
    }
    println!("Measured role timeline (mq-telemetry):\n\n{measured}");
    let cached = &rows[3].2.telemetry;
    let uncached = &rows[1].2.telemetry;
    println!(
        "Residency cache: {} of {} chunk visits served without the codec; \
         decompression {} -> {} bytes.",
        cached.counter(Counter::CacheHits),
        cached.counter(Counter::ChunkVisits),
        uncached.counter(Counter::BytesDecompressed),
        cached.counter(Counter::BytesDecompressed),
    );

    let dual = &rows[2].2;
    let single = &rows[1].2;
    let dual_busy = dual.device.modeled_h2d
        + dual.device.modeled_d2h
        + dual.device.modeled_kernel
        + dual.device.modeled_scatter;
    println!(
        "\nDual-stream device overlap: end {:.2} ms vs busy sum {:.2} ms ({:.2}x hidden)",
        dual.device.modeled.as_secs_f64() * 1e3,
        dual_busy.as_secs_f64() * 1e3,
        dual_busy.as_secs_f64() / dual.device.modeled.as_secs_f64().max(1e-12)
    );
    let r = single;
    let overlap_gain =
        r.modeled_serial.as_secs_f64() / r.modeled_overlapped.as_secs_f64().max(1e-12);
    println!(
        "\nSteps executed: {} stages, {} device groups, {} CPU groups.",
        r.stages, r.groups_device, r.groups_cpu
    );
    println!(
        "Staging: {} pinned + {} device buffer bytes.",
        r.pinned_bytes, r.device_buffer_bytes
    );
    println!("\nModeled overlap gain (serial / overlapped): {overlap_gain:.2}x");
    println!("(Perfect double-buffering hides the smaller of CPU-side and device-side time;");
    println!("the paper's Fig. 2 pipelines decompression, transfer and kernels the same way.)");

    // Shape checks. The serial ablation's stage barrier makes role overlap
    // structurally impossible; the pipelined runs must show *measured*
    // overlap (busy union strictly below the busy sum) — but only when the
    // workload offers any (more than one group per stage; a single-chunk
    // degenerate run has nothing to pipeline).
    let serial = &rows[0].2;
    let model_ok = r.modeled_overlapped <= r.modeled_serial;
    let serial_ok = !serial.telemetry.has_role_overlap();
    let pipelinable = r.groups_device + r.groups_cpu > r.stages;
    // The cached mode is excluded: cache hits remove most of the decompress
    // work, so there may legitimately be nothing left to overlap.
    let piped_ok = !pipelinable
        || rows[1..3]
            .iter()
            .all(|(_, _, r)| r.telemetry.union_busy() < r.telemetry.serial_sum());
    let cache_ok =
        cached.counter(Counter::BytesDecompressed) < uncached.counter(Counter::BytesDecompressed);
    println!(
        "\nShape {} — overlapped <= serial (model).",
        if model_ok { "[OK]" } else { "[FAIL]" }
    );
    println!(
        "Shape {} — serial run measured no role overlap.",
        if serial_ok { "[OK]" } else { "[FAIL]" }
    );
    println!(
        "Shape {} — pipelined runs measured real overlap (union < sum).",
        if !pipelinable {
            "[n/a: one group per stage]"
        } else if piped_ok {
            "[OK]"
        } else {
            "[FAIL]"
        }
    );
    println!(
        "Shape {} — residency cache cut decompression traffic.",
        if cache_ok { "[OK]" } else { "[FAIL]" }
    );

    let modes = rows
        .iter()
        .map(|(key, _, r)| format!("    \"{key}\": {}", r.telemetry.to_json(false)))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"pipeline_breakdown\",\n  \"circuit\": \"qft{n}\",\n  \
         \"chunk_bits\": {chunk_bits},\n  \"cache_bytes\": {cache_bytes},\n  \
         \"checks\": {{\"model_overlap\": {model_ok}, \
         \"serial_no_overlap\": {serial_ok}, \"pipelined_overlap\": {piped_ok}, \
         \"cache_traffic_cut\": {cache_ok}}},\n  \
         \"modes\": {{\n{modes}\n  }}\n}}"
    );
    match write_results_json("telemetry_pipeline_breakdown", &json) {
        Ok(path) => println!("\nTelemetry written to {}.", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if !(model_ok && serial_ok && piped_ok && cache_ok) {
        std::process::exit(1);
    }
}
