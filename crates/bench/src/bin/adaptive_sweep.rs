//! **Experiment A6 — adaptive per-chunk codec selection under a fidelity
//! budget.**
//!
//! `CodecSpec::Auto` probes every chunk at encode time and picks the
//! backend (zero-RLE / FPC / shuffle-LZSS / SZ, f64 or packed f32) that
//! stores it smallest within the stage's slice of a run-level error
//! budget. This harness runs the workload suite at one fidelity target and
//! compares Auto's total stored+link bytes against every *static* codec at
//! the same target (SZ gets the same budget spread uniformly across
//! stages), pinning four claims:
//!
//! * Auto never loses to the best static codec by more than the 2% payload
//!   header overhead, and beats every static outright on >= 3 workloads;
//! * the per-stage error ledger sums within the run budget;
//! * end-state fidelity against the lossless reference meets the target;
//! * when only lossless backends were picked, parity is bit-exact.
//!
//! Results land in `results/BENCH_adaptive.json`.
//!
//! Usage: `cargo run -p mq-bench --release --bin adaptive_sweep
//!         [--qubits 12] [--target 0.999] [--check]`
//!
//! `--check` exits non-zero if any gate fails — the CI smoke gate.

use memqsim_core::{build_store, MemQSimConfig, Precision, RunReport, TransferMode};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceSpec};
use mq_num::metrics::{fidelity, max_amp_err};
use mq_num::Complex64;
use mq_telemetry::Counter;

fn run_once(circuit: &Circuit, cfg: &MemQSimConfig) -> (Vec<Complex64>, RunReport) {
    let store = build_store(circuit.n_qubits(), cfg).expect("store construction failed");
    let device = Device::new(DeviceSpec::pcie_gen3());
    let report = memqsim_core::engine::hybrid::run(&store, circuit, cfg, &device, true)
        .expect("engine run failed");
    (store.to_dense().expect("store is readable"), report)
}

/// The bytes a codec choice is accountable for: peak resident compressed
/// state plus everything shipped over the link both ways.
fn total_bytes(r: &RunReport) -> usize {
    r.peak_compressed_bytes + r.device.bytes_h2d + r.device.bytes_d2h
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 12u32);
    let target: f64 = args.get("target", 0.999f64);
    let check = args.has("check");
    let chunk_bits = (n / 2).clamp(3, 8);

    println!("# A6 — adaptive codec selection at fidelity target {target} ({n} qubits)\n");

    let base = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        workers: 1,
        transfer_mode: TransferMode::Compressed,
        ..Default::default()
    };

    let mut failures = Vec::new();
    let mut json_rows = Vec::new();
    let mut strict_wins = 0usize;
    for circuit in library::standard_suite(n) {
        // Lossless reference for parity and fidelity, and the stage count
        // that turns the run budget into the static SZ competitor's
        // per-stage bound (stages depend on the plan, not the codec).
        let reference_cfg = MemQSimConfig {
            codec: CodecSpec::Auto { eb: None },
            ..base
        };
        let (reference, lossless_run) = run_once(&circuit, &reference_cfg);
        let stages = lossless_run.stages.max(1);
        let budget = memqsim_core::engine::stage_error_bounds(
            &MemQSimConfig {
                fidelity_budget: Some(target),
                ..reference_cfg
            },
            circuit.n_qubits(),
            stages,
        )
        .expect("budget configured")
        .iter()
        .sum::<f64>();
        let sz_eb = budget / stages as f64;

        let auto_cfg = MemQSimConfig {
            codec: CodecSpec::Auto { eb: None },
            fidelity_budget: Some(target),
            precision: Precision::Adaptive,
            ..base
        };
        let (auto_state, auto) = run_once(&circuit, &auto_cfg);

        let mut t = Table::new(&["codec", "total bytes", "vs auto", "fidelity >= target"]);
        let auto_bytes = total_bytes(&auto);
        let auto_fid = fidelity(&reference, &auto_state);
        t.row(&[
            "auto".to_string(),
            auto_bytes.to_string(),
            "baseline".to_string(),
            format!("{auto_fid:.6}"),
        ]);

        let mut best_static: Option<(CodecSpec, usize)> = None;
        for spec in [
            CodecSpec::ZeroRle,
            CodecSpec::Fpc,
            CodecSpec::ShuffleLzss,
            CodecSpec::Sz { eb: sz_eb },
        ] {
            let (state, r) = run_once(
                &circuit,
                &MemQSimConfig {
                    codec: spec,
                    ..base
                },
            );
            let bytes = total_bytes(&r);
            let fid = fidelity(&reference, &state);
            if fid < target {
                failures.push(format!(
                    "{} {spec}: static fidelity {fid:.9} below target",
                    circuit.name()
                ));
            }
            if best_static.as_ref().is_none_or(|&(_, b)| bytes < b) {
                best_static = Some((spec, bytes));
            }
            t.row(&[
                spec.to_string(),
                bytes.to_string(),
                format!("{:.2}x", bytes as f64 / auto_bytes.max(1) as f64),
                format!("{fid:.6}"),
            ]);
            json_rows.push(format!(
                "    {{\"workload\": \"{}\", \"codec\": \"{spec}\", \
                 \"total_bytes\": {bytes}, \"fidelity\": {fid:.9}}}",
                circuit.name()
            ));
        }
        let (best_spec, best_bytes) = best_static.expect("static codecs ran");

        // Gate: Auto may pay the 1-byte/chunk self-describing header (2%
        // slack) but must never lose meaningfully to the best static pick.
        if auto_bytes as f64 > best_bytes as f64 * 1.02 {
            failures.push(format!(
                "{}: auto {auto_bytes} bytes loses to {best_spec} ({best_bytes})",
                circuit.name()
            ));
        }
        let strict = auto_bytes < best_bytes;
        if strict {
            strict_wins += 1;
        }

        // Gate: the ledger exhausts and never overdraws the budget.
        let spent = auto.error_spent;
        if spent > auto.error_budget {
            failures.push(format!(
                "{}: error spent {spent:e} exceeds budget {:e}",
                circuit.name(),
                auto.error_budget
            ));
        }
        if auto.telemetry.error_spend().len() != auto.stages {
            failures.push(format!("{}: ledger/stage count mismatch", circuit.name()));
        }

        // Gate: fidelity target met; bit-exact when nothing lossy ran.
        if auto_fid < target {
            failures.push(format!(
                "{}: auto fidelity {auto_fid:.9} below target {target}",
                circuit.name()
            ));
        }
        let lossy = auto.telemetry.counter(Counter::LossyEncodes);
        let err = max_amp_err(&reference, &auto_state);
        if lossy == 0 && auto_state != reference {
            failures.push(format!(
                "{}: no lossy encodes but state differs from lossless reference \
                 (max err {err:.2e})",
                circuit.name()
            ));
        }

        println!(
            "## {} ({stages} stages, sz eb {sz_eb:.2e})\n",
            circuit.name()
        );
        println!("{t}");
        println!(
            "auto: best static {best_spec} ({best_bytes} B) — {} | \
             picks rle/fpc/lzss/sz {}/{}/{}/{} | f32 chunks {} | \
             spent {spent:.2e} of {:.2e}\n",
            if strict {
                "auto wins"
            } else {
                "within header slack"
            },
            auto.telemetry.counter(Counter::CodecPicksZeroRle),
            auto.telemetry.counter(Counter::CodecPicksFpc),
            auto.telemetry.counter(Counter::CodecPicksShuffleLzss),
            auto.telemetry.counter(Counter::CodecPicksSz),
            auto.telemetry.counter(Counter::MixedPrecisionChunks),
            auto.error_budget,
        );
        json_rows.push(format!(
            "    {{\"workload\": \"{}\", \"codec\": \"auto\", \"total_bytes\": {auto_bytes}, \
             \"fidelity\": {auto_fid:.9}, \"strict_win\": {strict}, \
             \"best_static\": \"{best_spec}\", \"best_static_bytes\": {best_bytes}, \
             \"error_budget\": {:e}, \"error_spent\": {spent:e}, \
             \"picks\": {{\"zero_rle\": {}, \"fpc\": {}, \"shuffle_lzss\": {}, \"sz\": {}}}, \
             \"mixed_precision_chunks\": {}, \"lossy_encodes\": {lossy}, \
             \"parity_max_err\": {err:.3e}}}",
            circuit.name(),
            auto.error_budget,
            auto.telemetry.counter(Counter::CodecPicksZeroRle),
            auto.telemetry.counter(Counter::CodecPicksFpc),
            auto.telemetry.counter(Counter::CodecPicksShuffleLzss),
            auto.telemetry.counter(Counter::CodecPicksSz),
            auto.telemetry.counter(Counter::MixedPrecisionChunks),
        ));
    }

    if strict_wins < 3 {
        failures.push(format!(
            "auto beat every static codec on only {strict_wins} workload(s) (need >= 3)"
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"adaptive\",\n  \"qubits\": {n},\n  \
         \"fidelity_target\": {target},\n  \"strict_wins\": {strict_wins},\n  \
         \"gates\": {{\"auto_not_worse_than_best_static\": true, \
         \"strict_wins_ge_3\": true, \"spend_within_budget\": true, \
         \"fidelity_target_met\": true, \"pass\": {}}},\n  \"sweep\": [\n{}\n  ]\n}}",
        failures.is_empty(),
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_adaptive", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nAdaptive selection: never worse than the best static codec, strictly \
             better on {strict_wins} workloads, error spend within budget. [OK]"
        );
    } else {
        eprintln!("\nadaptive sweep failures:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
