//! **Experiment A4 — lossy error bound vs result quality.**
//!
//! Every recompression injects up to `eb` of pointwise error; this harness
//! measures how that accumulates into end-of-circuit infidelity across the
//! workload suite and a sweep of error bounds, against the exact dense
//! reference.
//!
//! Usage: `cargo run -p mq-bench --release --bin fidelity_sweep [--qubits 10]`

use memqsim_core::fidelity::compare_to_dense;
use memqsim_core::{CompressedCpuBackend, MemQSimConfig};
use mq_bench::{Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;

/// Where log-infidelity readings are capped: 1-F below ~1e-15 is f64
/// rounding noise in the fidelity sum, not signal.
const LOG_INFID_CAP: f64 = 15.0;

/// `-log10(1 - F)`, capped at [`LOG_INFID_CAP`] ("how many nines").
fn log_infidelity(fidelity: f64) -> f64 {
    let infid = (1.0 - fidelity).max(0.0);
    if infid < 10f64.powf(-LOG_INFID_CAP) {
        LOG_INFID_CAP
    } else {
        -infid.log10()
    }
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 10u32);

    println!("# A4 — error bound vs result quality ({n} qubits, exact dense reference)\n");

    let bounds = [1e-3, 1e-5, 1e-7, 1e-9, 1e-12];
    for circuit in library::standard_suite(n) {
        println!("## {} ({} gates)\n", circuit.name(), circuit.len());
        let mut t = Table::new(&[
            "error bound",
            "fidelity",
            "-log10(1-F)",
            "max amp err",
            "norm drift",
            "total variation",
        ]);
        let mut last_log_infid = f64::NEG_INFINITY;
        let mut monotone = true;
        for &eb in &bounds {
            let backend = CompressedCpuBackend::new(MemQSimConfig {
                chunk_bits: (n / 2).max(3),
                max_high_qubits: 2,
                codec: CodecSpec::Sz { eb },
                workers: 1,
                ..Default::default()
            });
            let q = compare_to_dense(&circuit, &backend).expect("run failed");
            // The fidelity column saturates at 1.000000000 long before the
            // sweep bottoms out, so report log-infidelity alongside: the
            // digits keep moving down to the f64 noise floor, where we cap.
            let log_infid = log_infidelity(q.fidelity);
            // Tighter bounds must not lose more fidelity. Comparing on the
            // log scale keeps the check meaningful after the linear column
            // saturates; half a decade of slack absorbs rounding noise.
            if log_infid + 0.5 < last_log_infid && log_infid < LOG_INFID_CAP {
                monotone = false;
            }
            last_log_infid = log_infid;
            t.row(&[
                format!("{eb:.0e}"),
                format!("{:.9}", q.fidelity),
                if log_infid >= LOG_INFID_CAP {
                    format!(">{LOG_INFID_CAP:.1}")
                } else {
                    format!("{log_infid:.2}")
                },
                format!("{:.2e}", q.max_amp_err),
                format!("{:+.2e}", q.norm - 1.0),
                format!("{:.2e}", q.total_variation),
            ]);
        }
        println!("{t}");
        println!(
            "Log-infidelity improves monotonically with tighter bounds: {}\n",
            if monotone {
                "[OK]"
            } else {
                "[WARN — noise-level non-monotonicity]"
            }
        );
    }
    println!("Reading: bounds <= 1e-7 keep fidelity > 0.9999 across the suite — lossy");
    println!("compression at sensible bounds does not disturb results, the premise of");
    println!("extending SZ-style compression to state vectors.");
}
