//! **Experiment A4 — lossy error bound vs result quality.**
//!
//! Every recompression injects up to `eb` of pointwise error; this harness
//! measures how that accumulates into end-of-circuit infidelity across the
//! workload suite and a sweep of error bounds, against the exact dense
//! reference.
//!
//! Usage: `cargo run -p mq-bench --release --bin fidelity_sweep [--qubits 10]`

use memqsim_core::fidelity::compare_to_dense;
use memqsim_core::{CompressedCpuBackend, MemQSimConfig};
use mq_bench::{Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 10u32);

    println!("# A4 — error bound vs result quality ({n} qubits, exact dense reference)\n");

    let bounds = [1e-3, 1e-5, 1e-7, 1e-9, 1e-12];
    for circuit in library::standard_suite(n) {
        println!("## {} ({} gates)\n", circuit.name(), circuit.len());
        let mut t = Table::new(&[
            "error bound",
            "fidelity",
            "max amp err",
            "norm drift",
            "total variation",
        ]);
        let mut last_fid = 0.0;
        let mut monotone = true;
        for &eb in &bounds {
            let backend = CompressedCpuBackend::new(MemQSimConfig {
                chunk_bits: (n / 2).max(3),
                max_high_qubits: 2,
                codec: CodecSpec::Sz { eb },
                workers: 1,
                ..Default::default()
            });
            let q = compare_to_dense(&circuit, &backend).expect("run failed");
            if q.fidelity + 1e-9 < last_fid {
                monotone = false;
            }
            last_fid = q.fidelity;
            t.row(&[
                format!("{eb:.0e}"),
                format!("{:.9}", q.fidelity),
                format!("{:.2e}", q.max_amp_err),
                format!("{:+.2e}", q.norm - 1.0),
                format!("{:.2e}", q.total_variation),
            ]);
        }
        println!("{t}");
        println!(
            "Fidelity improves monotonically with tighter bounds: {}\n",
            if monotone {
                "[OK]"
            } else {
                "[WARN — noise-level non-monotonicity]"
            }
        );
    }
    println!("Reading: bounds <= 1e-7 keep fidelity > 0.9999 across the suite — lossy");
    println!("compression at sensible bounds does not disturb results, the premise of");
    println!("extending SZ-style compression to state vectors.");
}
