//! **Experiment C3 — the "+5 qubits" claim.**
//!
//! "By employing the state-of-the-art data compressor, we extrapolate that
//! on average 5 more qubits to simulate can be achieved without slowing
//! down the original quantum circuit simulation."
//!
//! For a fixed memory budget, this harness finds the largest register each
//! representation can simulate: dense needs `2^n * 16` bytes; MEMQSIM needs
//! its *peak* resident compressed bytes plus working buffers (measured by
//! actually running each circuit). The per-workload extension and its mean
//! reproduce the claim's shape: large for structured states, ~0 for
//! Porter–Thomas random states, ~5 on average across a realistic mix.
//!
//! Chunk size matters: the transient group buffer is `2^(chunk_bits +
//! max_high)` amplitudes, so chunks must be small relative to the budget —
//! the default 2^10 keeps the working set at 64 KiB.
//!
//! Usage: `cargo run -p mq-bench --release --bin qubit_extension
//!         [--budget-mib 1] [--cap 24] [--chunk-bits 10] [--eb 1e-10]
//!         [--relative]`
//!
//! `--relative` interprets `--eb` as a bound *relative to the natural
//! amplitude scale* `2^(-n/2)` (SZ is typically run with value-range-relative
//! bounds); the absolute default is the strictest possible reading of the
//! claim.

use memqsim_core::{build_store, Granularity, MemQSimConfig};
use mq_bench::{Args, Table};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;

struct Workload {
    name: &'static str,
    build: fn(u32) -> Circuit,
    /// Cap to keep single-core runtime sane (structured circuits are cheap
    /// to push further; dense random ones are not).
    cap: u32,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "ghz",
            build: library::ghz,
            cap: 26,
        },
        Workload {
            name: "w-state",
            build: library::w_state,
            cap: 25,
        },
        Workload {
            name: "bernstein-vazirani",
            build: |n| library::bernstein_vazirani(n - 1, 0b1011_0110_1011 & ((1 << (n - 1)) - 1)),
            cap: 24,
        },
        Workload {
            name: "qaoa-ring(p=1)",
            build: |n| library::qaoa_maxcut(n, &library::ring_graph(n), &[0.5], &[0.4]),
            cap: 21,
        },
        Workload {
            name: "qft",
            build: library::qft,
            cap: 19,
        },
        Workload {
            name: "random",
            build: |n| library::random_circuit(n, 8, 7),
            cap: 17,
        },
    ]
}

/// Peak MEMQSIM footprint (compressed store peak + working buffers) for one
/// run, in bytes — and the wall time, for the "without slowing down" check.
fn memqsim_peak(circuit: &Circuit, cfg: &MemQSimConfig) -> (usize, std::time::Duration) {
    let store = build_store(circuit.n_qubits(), cfg).expect("store construction failed");
    let report = memqsim_core::engine::cpu::run(&store, circuit, cfg, Granularity::Staged)
        .expect("engine run failed");
    (
        report.peak_compressed_bytes + report.peak_buffer_bytes,
        report.wall,
    )
}

fn main() {
    let args = Args::capture();
    let budget_mib: usize = args.get("budget-mib", 1usize);
    let cap: u32 = args.get("cap", 24u32);
    let chunk_bits: u32 = args.get("chunk-bits", 10u32);
    let eb: f64 = args.get("eb", 1e-10f64);
    let relative = args.has("relative");
    let budget = budget_mib << 20;

    // Dense limit: the largest n with 2^n * 16 <= budget.
    let dense_max = (0..64u32)
        .take_while(|&n| (1usize << n) * 16 <= budget)
        .last()
        .expect("budget too small for even 1 qubit");

    println!("# C3 — qubit extension under a {budget_mib} MiB state budget\n");
    println!(
        "Dense state vector fits at most **{dense_max} qubits** ({} bytes/amp).\n",
        16
    );
    if relative {
        println!("MEMQSIM codec: sz with eb = {eb:e} x 2^(-n/2) (amplitude-relative);");
    } else {
        println!("MEMQSIM codec: sz:{eb:e} (absolute);");
    }
    println!("chunk = 2^{chunk_bits} amps; peak = store peak + working buffers.\n");

    let cfg_for = |n: u32| MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Sz {
            eb: if relative {
                eb * f64::powi(2.0, -(n as i32) / 2)
            } else {
                eb
            },
        },
        workers: 1,
        ..Default::default()
    };

    let mut table = Table::new(&[
        "workload",
        "dense max",
        "memqsim max",
        "extension",
        "peak@max",
        "slowdown@dense-max",
    ]);
    let mut extensions = Vec::new();

    for w in workloads() {
        let w_cap = cap.min(w.cap);
        let mut best = None;
        let mut peak_at_best = 0usize;
        let mut n = dense_max.saturating_sub(2).max(3);
        while n <= w_cap {
            let circuit = (w.build)(n);
            let (peak, _) = memqsim_peak(&circuit, &cfg_for(n));
            if peak <= budget {
                best = Some(n);
                peak_at_best = peak;
                n += 1;
            } else {
                break;
            }
        }
        // Slowdown check at the dense-max size: compressed wall / dense wall.
        let check_circuit = (w.build)(dense_max.min(w_cap));
        let t0 = std::time::Instant::now();
        let _ = mq_statevec::run_circuit(&check_circuit, &mq_statevec::CpuConfig::default());
        let dense_wall = t0.elapsed();
        let (_, comp_wall) = memqsim_peak(&check_circuit, &cfg_for(check_circuit.n_qubits()));
        let slowdown = comp_wall.as_secs_f64() / dense_wall.as_secs_f64().max(1e-9);

        let best_n = best.unwrap_or(0);
        let capped = best_n == w_cap;
        extensions.push((best_n as i64 - dense_max as i64) as f64);
        table.row(&[
            w.name.to_string(),
            dense_max.to_string(),
            format!("{}{}", best_n, if capped { "+ (capped)" } else { "" }),
            format!("{:+}", best_n as i64 - dense_max as i64),
            mq_num::stats::format_bytes(peak_at_best),
            format!("{slowdown:.2}x"),
        ]);
    }
    println!("{table}");

    let mean = extensions.iter().sum::<f64>() / extensions.len() as f64;
    println!("\nMean extension: **{mean:+.1} qubits** (paper extrapolates ~+5 on average).");
    println!(
        "Shape check: structured workloads extend by >= 3, random by <= 2 — {}",
        if extensions[0] >= 3.0 && *extensions.last().expect("nonempty") <= 2.0 {
            "[OK]"
        } else {
            "[FAIL]"
        }
    );
    println!("\nNote on \"without slowing down\": on this host both engines run on one CPU");
    println!("core, so compression work is serialized with simulation (the wall-clock");
    println!("slowdown column). In the paper's design the (de)compression overlaps GPU");
    println!("kernels across idle cores — see `pipeline_breakdown` for the modeled overlap.");
}
