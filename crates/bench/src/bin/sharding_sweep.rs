//! **Experiment D1 — multi-device sharded execution.**
//!
//! Chunk groups within a stage touch disjoint chunk sets, so a stage's
//! groups can scatter across an N-device fleet with zero coordination
//! beyond the stage barrier. This sweep pins the two claims that make
//! sharding worth having:
//!
//! * bit-exact parity: the N-device state is *identical* to the 1-device
//!   state (and the accounting columns match), for every workload;
//! * near-linear modeled scaling: the fleet makespan (max over device
//!   lanes) shrinks ≥ 3.0x at 4 devices on at least one workload, and the
//!   measured load imbalance stays close to 1 under the default
//!   chunk-affinity shard policy.
//!
//! Workloads are the qubit_extension mix (GHZ, W state, BV, QAOA ring,
//! QFT, random) at a sweep-friendly register size. Everything lands in
//! `results/BENCH_sharding.json`.
//!
//! Usage: `cargo run -p mq-bench --release --bin sharding_sweep
//!         [--qubits 12] [--chunk-bits 6] [--check]`
//!
//! `--check` exits non-zero if any gate fails — the CI smoke gate.

use memqsim_core::{build_store, MemQSimConfig, RunReport, ShardPolicy};
use mq_bench::{fmt_secs, write_results_json, Args, Table};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{DeviceSpec, DeviceTopology};
use mq_num::Complex64;

fn workloads(n: u32) -> Vec<(&'static str, Circuit)> {
    vec![
        ("ghz", library::ghz(n)),
        ("w-state", library::w_state(n)),
        (
            "bernstein-vazirani",
            library::bernstein_vazirani(n - 1, 0b1011_0110_1011 & ((1 << (n - 1)) - 1)),
        ),
        (
            "qaoa-ring(p=1)",
            library::qaoa_maxcut(n, &library::ring_graph(n), &[0.5], &[0.4]),
        ),
        ("qft", library::qft(n)),
        ("random", library::random_circuit(n, 8, 7)),
    ]
}

fn run_fleet(circuit: &Circuit, chunk_bits: u32, devices: usize) -> (Vec<Complex64>, RunReport) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc,
        workers: 1,
        devices,
        shard_policy: ShardPolicy::ChunkAffinity,
        ..Default::default()
    };
    let store = build_store(circuit.n_qubits(), &cfg).expect("store construction failed");
    let fleet = DeviceTopology::homogeneous(devices, DeviceSpec::pcie_gen3()).build();
    let report = memqsim_core::engine::hybrid::run_fleet(&store, circuit, &cfg, &fleet, true)
        .expect("engine run failed");
    (store.to_dense().expect("store is readable"), report)
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 12u32);
    let chunk_bits: u32 = args.get("chunk-bits", 6u32);
    let check = args.has("check");

    println!("# D1 — multi-device sharding sweep ({n} qubits, cb{chunk_bits}, pcie_gen3 fleet)\n");

    let mut failures = Vec::new();
    let mut json_rows = Vec::new();
    let mut best_4dev_speedup = 0.0f64;
    for (workload, circuit) in workloads(n) {
        let (one_state, one) = run_fleet(&circuit, chunk_bits, 1);
        let base_modeled = one.device.modeled.as_secs_f64();
        let mut t = Table::new(&[
            "devices",
            "makespan",
            "speedup",
            "imbalance",
            "groups/dev",
            "parity",
        ]);
        t.row(&[
            "1".to_string(),
            fmt_secs(base_modeled),
            "1.0x".to_string(),
            format!("{:.3}", one.telemetry.load_imbalance()),
            one.groups_device.to_string(),
            "exact".to_string(),
        ]);
        for devices in [2usize, 4] {
            let (state, r) = run_fleet(&circuit, chunk_bits, devices);
            let bit_identical = state == one_state;
            let makespan = r.device.modeled.as_secs_f64();
            let speedup = base_modeled / makespan.max(f64::MIN_POSITIVE);
            let imbalance = r.telemetry.load_imbalance();
            if devices == 4 {
                best_4dev_speedup = best_4dev_speedup.max(speedup);
            }
            if !bit_identical {
                failures.push(format!(
                    "{workload} x{devices}: state diverged from 1-device"
                ));
            }
            for (col, a, b) in [
                ("gates", r.gates_applied, one.gates_applied),
                ("scalars", r.scalars_applied, one.scalars_applied),
                ("visits", r.chunk_visits, one.chunk_visits),
                ("stages", r.stages, one.stages),
                ("groups_device", r.groups_device, one.groups_device),
            ] {
                if a != b {
                    failures.push(format!("{workload} x{devices}: {col} {a} != 1-device {b}"));
                }
            }
            let lane_sum: u64 = r.telemetry.device_lanes().iter().map(|l| l.groups).sum();
            if lane_sum as usize != r.groups_device {
                failures.push(format!(
                    "{workload} x{devices}: lane groups {lane_sum} != total {}",
                    r.groups_device
                ));
            }
            let per_dev: Vec<String> = r
                .telemetry
                .device_lanes()
                .iter()
                .map(|l| l.groups.to_string())
                .collect();
            t.row(&[
                devices.to_string(),
                fmt_secs(makespan),
                format!("{speedup:.2}x"),
                format!("{imbalance:.3}"),
                per_dev.join("/"),
                if bit_identical {
                    "exact".to_string()
                } else {
                    "DIVERGED".to_string()
                },
            ]);
            json_rows.push(format!(
                "    {{\"workload\": \"{workload}\", \"devices\": {devices}, \
                 \"makespan_s\": {makespan:.9}, \"one_device_s\": {base_modeled:.9}, \
                 \"speedup\": {speedup:.4}, \"load_imbalance\": {imbalance:.4}, \
                 \"groups_device\": {}, \"bit_identical\": {bit_identical}}}",
                r.groups_device
            ));
        }
        println!("## {workload}{n}\n\n{t}");
    }

    if best_4dev_speedup < 3.0 {
        failures.push(format!(
            "best 4-device speedup {best_4dev_speedup:.2}x < 3.0x on every workload"
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"sharding\",\n  \"qubits\": {n},\n  \
         \"chunk_bits\": {chunk_bits},\n  \
         \"gates\": {{\"parity_exact\": true, \"accounting_identity\": true, \
         \"speedup_4dev_3x\": true, \"pass\": {}}},\n  \
         \"best_4dev_speedup\": {best_4dev_speedup:.4},\n  \"sweep\": [\n{}\n  ]\n}}",
        failures.is_empty(),
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_sharding", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nSharding: {best_4dev_speedup:.2}x best modeled speedup at 4 devices, \
             states bit-identical to 1-device, accounting identical. [OK]"
        );
    } else {
        eprintln!("\nsharding sweep failures:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
