//! **Experiment A2 — design challenge (3): algorithm access patterns.**
//!
//! "Different quantum algorithms' behaviors affect the access pattern on
//! the state vector." This harness quantifies the locality of each workload
//! family against chunk size: the fraction of chunk-local gates, the stage
//! count the planner needs, and the traffic saving stage fusion achieves.
//! Pure static analysis — no simulation — so it runs at full paper scale.
//!
//! Usage: `cargo run -p mq-bench --release --bin access_patterns
//!         [--qubits 24] [--chunk-bits 16]`

use mq_bench::{Args, Table};
use mq_circuit::analysis::locality_profile;
use mq_circuit::library;

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 24u32);
    let chunk_bits: u32 = args.get("chunk-bits", 16u32);

    println!("# A2 — access patterns at {n} qubits, chunks of 2^{chunk_bits} amps\n");

    let circuits = vec![
        library::ghz(n),
        library::w_state(n),
        library::bernstein_vazirani(n - 1, (1u64 << (n - 1)) - 1),
        library::qaoa_maxcut(n, &library::ring_graph(n), &[0.4, 0.7], &[0.3, 0.6]),
        library::qft(n),
        library::hardware_efficient_ansatz(n, 2, 7),
        library::random_circuit(n, 16, 11),
    ];

    let mut t = Table::new(&[
        "workload",
        "gates",
        "diagonal",
        "chunk-local",
        "stages",
        "staged visits",
        "greedy-layout visits",
        "per-gate visits",
        "fusion gain",
        "layout gain",
    ]);
    for c in &circuits {
        let p = locality_profile(c, chunk_bits);
        t.row(&[
            p.name.clone(),
            p.gates.to_string(),
            format!(
                "{:.0}%",
                100.0 * p.diagonal_gates as f64 / p.gates.max(1) as f64
            ),
            format!("{:.0}%", 100.0 * p.local_fraction()),
            p.stages.to_string(),
            p.staged_chunk_visits.to_string(),
            p.greedy_chunk_visits.to_string(),
            p.per_gate_chunk_visits.to_string(),
            format!("{:.1}x", p.staging_gain()),
            format!("{:.1}x", p.layout_gain()),
        ]);
    }
    println!("{t}");

    println!("\n## Locality vs chunk size (qft{n})\n");
    let qft = library::qft(n);
    let mut t = Table::new(&[
        "chunk bits",
        "chunk-local gates",
        "stages",
        "fusion gain",
        "layout gain",
    ]);
    for cb in (8..=n.min(22)).step_by(2) {
        let p = locality_profile(&qft, cb);
        t.row(&[
            cb.to_string(),
            format!("{:.0}%", 100.0 * p.local_fraction()),
            p.stages.to_string(),
            format!("{:.1}x", p.staging_gain()),
            format!("{:.1}x", p.layout_gain()),
        ]);
    }
    println!("{t}");
    println!("\nReading: GHZ/QAOA are nearly chunk-local (cheap for MEMQSIM); QFT's");
    println!("controlled-phase cascade is diagonal (control-only, no pairing) so even it");
    println!("stages well; unstructured random circuits are the worst case — exactly the");
    println!("algorithm-dependence the paper calls out. The layout column is the further");
    println!("cut a greedy logical->physical remap takes off the staged plan (QFT's tail");
    println!("swap network is absorbed outright; workloads the layout cannot help stay");
    println!("at 1.0x because the planner falls back to the fixed plan).");
}
