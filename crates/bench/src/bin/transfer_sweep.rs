//! **Experiment A5 — compressed H2D transfers.**
//!
//! The device-side codec path: under `TransferMode::Compressed` the engine
//! ships each chunk's stored codec payload over the link as-is and a
//! modeled decode kernel inflates it on-device (mirroring the staged GPU
//! codecs of SNIPPETS.md §1–2); the way back runs a device encode that
//! folds in the group scalar, so the stored payloads — and the final state
//! — are *bit-identical* to the raw path.
//!
//! Sweeps codec × chunk_bits ∈ {6, 7, 8} on a sparse workload (GHZ) and a
//! dense one (QFT), pinning three claims per configuration:
//!
//! * state parity: compressed vs raw final state identical (< 1e-12);
//! * link-byte cut: `bytes_h2d` drops ≥ 3x on ≥ 2 codecs (GHZ);
//! * on-stream charging: `device_decode_time_ns` > 0 in the run telemetry.
//!
//! The modeled-time crossover — compressed effective H2D (link + decode
//! kernel) vs raw link time — is reported per codec so the
//! bandwidth/throughput trade is visible, and everything lands in
//! `results/BENCH_transfer.json`.
//!
//! Usage: `cargo run -p mq-bench --release --bin transfer_sweep
//!         [--qubits 12] [--check]`
//!
//! `--check` exits non-zero if any gate fails — the CI smoke gate.

use memqsim_core::{build_store, MemQSimConfig, RunReport, TransferMode};
use mq_bench::{fmt_secs, write_results_json, Args, Table};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceSpec};
use mq_num::Complex64;
use mq_telemetry::Counter;

fn codecs() -> Vec<CodecSpec> {
    vec![
        CodecSpec::ZeroRle,
        CodecSpec::Fpc,
        CodecSpec::ShuffleLzss,
        CodecSpec::Sz { eb: 1e-10 },
    ]
}

fn run_once(
    circuit: &Circuit,
    chunk_bits: u32,
    codec: CodecSpec,
    mode: TransferMode,
) -> (Vec<Complex64>, RunReport) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec,
        workers: 1,
        transfer_mode: mode,
        ..Default::default()
    };
    let store = build_store(circuit.n_qubits(), &cfg).expect("store construction failed");
    let device = Device::new(DeviceSpec::pcie_gen3());
    let report = memqsim_core::engine::hybrid::run(&store, circuit, &cfg, &device, true)
        .expect("engine run failed");
    (store.to_dense().expect("store is readable"), report)
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 12u32);
    let check = args.has("check");

    println!("# A5 — compressed H2D transfer sweep ({n} qubits, pcie_gen3)\n");

    let mut failures = Vec::new();
    let mut json_rows = Vec::new();
    for (workload, circuit, gate_cut) in [
        ("ghz", library::ghz(n), true),
        ("qft", library::qft(n), false),
    ] {
        println!("## {workload}{n}\n");
        for chunk_bits in [6u32, 7, 8] {
            let mut t = Table::new(&[
                "codec",
                "raw H2D bytes",
                "comp H2D bytes",
                "cut",
                "raw H2D model",
                "comp H2D+decode",
                "crossover",
                "parity",
            ]);
            let mut cuts_over_3 = 0usize;
            for codec in codecs() {
                let (raw_state, raw) = run_once(&circuit, chunk_bits, codec, TransferMode::Raw);
                let (comp_state, comp) =
                    run_once(&circuit, chunk_bits, codec, TransferMode::Compressed);
                let max_err = raw_state
                    .iter()
                    .zip(&comp_state)
                    .map(|(a, b)| (*a - *b).norm())
                    .fold(0.0f64, f64::max);
                let bit_identical = raw_state == comp_state;
                let cut = raw.device.bytes_h2d as f64 / comp.device.bytes_h2d.max(1) as f64;
                if cut >= 3.0 {
                    cuts_over_3 += 1;
                }
                // Effective H2D: what the stream actually charged for
                // getting state onto the device — link time plus (in
                // compressed mode) the decode kernel train.
                let raw_eff = raw.device.modeled_h2d.as_secs_f64();
                let comp_eff = (comp.device.modeled_h2d + comp.device.modeled_decode).as_secs_f64();
                let decode_ns = comp.telemetry.counter(Counter::DeviceDecodeTime);
                if max_err >= 1e-12 {
                    failures.push(format!(
                        "{workload} cb{chunk_bits} {codec}: parity {max_err:.2e} >= 1e-12"
                    ));
                }
                if decode_ns == 0 {
                    failures.push(format!(
                        "{workload} cb{chunk_bits} {codec}: no decode time charged on-stream"
                    ));
                }
                if comp.telemetry.counter(Counter::BytesH2dCompressed)
                    != comp.device.bytes_h2d_compressed as u64
                {
                    failures.push(format!(
                        "{workload} cb{chunk_bits} {codec}: counter/stat mismatch"
                    ));
                }
                t.row(&[
                    codec.to_string(),
                    raw.device.bytes_h2d.to_string(),
                    comp.device.bytes_h2d.to_string(),
                    format!("{cut:.1}x"),
                    fmt_secs(raw_eff),
                    fmt_secs(comp_eff),
                    if comp_eff < raw_eff {
                        "comp wins"
                    } else {
                        "raw wins"
                    }
                    .to_string(),
                    if bit_identical {
                        "exact".to_string()
                    } else {
                        format!("{max_err:.1e}")
                    },
                ]);
                json_rows.push(format!(
                    "    {{\"workload\": \"{workload}\", \"chunk_bits\": {chunk_bits}, \
                     \"codec\": \"{codec}\", \"raw_bytes_h2d\": {}, \"comp_bytes_h2d\": {}, \
                     \"cut\": {cut:.4}, \"raw_h2d_model_s\": {raw_eff:.9}, \
                     \"comp_h2d_plus_decode_s\": {comp_eff:.9}, \"decode_ns\": {decode_ns}, \
                     \"parity_max_err\": {max_err:.3e}, \"bit_identical\": {bit_identical}}}",
                    raw.device.bytes_h2d, comp.device.bytes_h2d
                ));
            }
            println!("{t}");
            if gate_cut && cuts_over_3 < 2 {
                failures.push(format!(
                    "{workload} cb{chunk_bits}: only {cuts_over_3} codec(s) cut bytes_h2d >= 3x"
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"transfer\",\n  \"qubits\": {n},\n  \
         \"gates\": {{\"cut_3x_on_2_codecs\": true, \"parity_1e12\": true, \
         \"decode_on_stream\": true, \"pass\": {}}},\n  \"sweep\": [\n{}\n  ]\n}}",
        failures.is_empty(),
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_transfer", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nCompressed transfers: bytes cut >= 3x on >= 2 codecs (sparse workload), \
             states bit-identical to raw, decode charged on-stream. [OK]"
        );
    } else {
        eprintln!("\ntransfer sweep failures:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
