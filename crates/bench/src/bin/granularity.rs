//! **Experiment A1 — design challenge (2): compression frequency &
//! granularity.**
//!
//! "Excessive compression/decompression could result in substantial
//! overhead ... a coarser granularity could precipitate a significant
//! memory footprint issue, while excessively fine granularity could lead to
//! a lower compression ratio."
//!
//! Two sweeps on the compressed CPU engine:
//! 1. **frequency** — MEMQSIM's per-stage scheduling vs the per-gate
//!    baseline (Wu et al.\[6\]): chunk visits and wall time;
//! 2. **granularity** — chunk size sweep: compression ratio vs working-set
//!    footprint.
//!
//! Usage: `cargo run -p mq-bench --release --bin granularity [--qubits 16]`

use memqsim_core::{build_store, ChunkStore, Counter, Granularity, MemQSimConfig};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;
use mq_num::stats::format_bytes;

fn run_once(
    n: u32,
    chunk_bits: u32,
    granularity: Granularity,
) -> (memqsim_core::engine::RunReport, f64) {
    run_once_with(n, chunk_bits, granularity, false, 0)
}

/// Half the working set (dense state + one group staging buffer) — the
/// residency-cache budget used by the cache sweep.
fn half_working_set(n: u32, chunk_bits: u32) -> usize {
    ((1usize << n) * 16 + (1usize << (chunk_bits + 2)) * 16) / 2
}

fn run_once_with(
    n: u32,
    chunk_bits: u32,
    granularity: Granularity,
    reorder: bool,
    cache_bytes: usize,
) -> (memqsim_core::engine::RunReport, f64) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-10 },
        workers: 1,
        reorder,
        cache_bytes,
        ..Default::default()
    };
    let circuit = library::qft(n);
    let store = build_store(n, &cfg).expect("store construction failed");
    let report = memqsim_core::engine::cpu::run(&store, &circuit, &cfg, granularity)
        .expect("engine run failed");
    (report, store.current_ratio())
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 16u32);

    println!("# A1 — compression frequency & granularity (qft{n})\n");

    // Sweep 1: per-stage vs per-gate at a fixed chunk size.
    let chunk_bits = (n - 4).min(12);
    println!("## Scheduling frequency (chunks of 2^{chunk_bits} amps)\n");
    let mut t = Table::new(&[
        "scheduling",
        "stages",
        "chunk visits",
        "wall",
        "decompress",
        "compress",
    ]);
    let mut visits = Vec::new();
    for (label, g) in [
        ("per-stage (MEMQSIM)", Granularity::Staged),
        ("per-gate (Wu et al. [6])", Granularity::PerGate),
    ] {
        let (r, _) = run_once(n, chunk_bits, g);
        visits.push(r.chunk_visits);
        t.row(&[
            label.to_string(),
            r.stages.to_string(),
            r.chunk_visits.to_string(),
            format!("{:.1} ms", r.wall.as_secs_f64() * 1e3),
            format!("{:.1} ms", r.decompress.as_secs_f64() * 1e3),
            format!("{:.1} ms", r.compress.as_secs_f64() * 1e3),
        ]);
    }
    println!("{t}");
    let reduction = visits[1] as f64 / visits[0] as f64;
    println!(
        "\nStage fusion reduces decompress/recompress rounds by {reduction:.1}x. [{}]",
        if reduction > 1.5 { "OK" } else { "FAIL" }
    );

    // Sweep 2: chunk-size granularity.
    println!("\n## Chunk-size granularity (per-stage scheduling)\n");
    let mut t = Table::new(&[
        "chunk amps",
        "chunks",
        "ratio",
        "working set/group",
        "chunk visits",
        "wall",
    ]);
    for cb in [6u32, 8, 10, 12, n.min(14)] {
        let (r, ratio) = run_once(n, cb, Granularity::Staged);
        t.row(&[
            format!("2^{cb}"),
            format!("2^{}", n - cb),
            format!("{ratio:.1}x"),
            format_bytes((1usize << (cb + 2)) * 16),
            r.chunk_visits.to_string(),
            format!("{:.1} ms", r.wall.as_secs_f64() * 1e3),
        ]);
    }
    println!("{t}");

    // Sweep 3: the hot-chunk residency cache across the same chunk sizes —
    // codec traffic with the cache off vs sized for half the working set.
    println!("\n## Residency cache (per-stage scheduling, budget = half working set)\n");
    let mut t = Table::new(&[
        "chunk amps",
        "cache",
        "wall",
        "decompressed",
        "compressed",
        "hits",
        "misses",
        "skipped",
    ]);
    let mut json_rows = Vec::new();
    for cb in [6u32, 8, 10, 12] {
        for cached in [false, true] {
            let cache_bytes = if cached { half_working_set(n, cb) } else { 0 };
            let (r, _) = run_once_with(n, cb, Granularity::Staged, false, cache_bytes);
            t.row(&[
                format!("2^{cb}"),
                if cached {
                    format_bytes(cache_bytes)
                } else {
                    "off".to_string()
                },
                format!("{:.1} ms", r.wall.as_secs_f64() * 1e3),
                format_bytes(r.telemetry.counter(Counter::BytesDecompressed) as usize),
                format_bytes(r.telemetry.counter(Counter::BytesCompressed) as usize),
                r.telemetry.counter(Counter::CacheHits).to_string(),
                r.telemetry.counter(Counter::CacheMisses).to_string(),
                r.telemetry.counter(Counter::RecompressSkipped).to_string(),
            ]);
            json_rows.push(format!(
                "    {{\"chunk_bits\": {cb}, \"cache_bytes\": {cache_bytes}, \
                 \"seconds\": {:.6}, \"telemetry\": {}}}",
                r.wall.as_secs_f64(),
                r.telemetry.to_json(false)
            ));
        }
    }
    println!("{t}");
    let json = format!(
        "{{\n  \"experiment\": \"granularity\",\n  \"circuit\": \"qft{n}\",\n  \
         \"sweep\": [\n{}\n  ]\n}}",
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_granularity", &json) {
        Ok(path) => println!("\nCache sweep written to {}.", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    // Sweep 4: commutation-aware reordering (vqe's interleaved rotation +
    // ladder layers benefit; see mq_circuit::reorder).
    println!("\n## Commutation-aware reordering (vqe ansatz, per-stage)\n");
    let mut t = Table::new(&["reorder", "stages", "chunk visits", "wall"]);
    for (label, reorder) in [("off", false), ("on", true)] {
        let cfg = MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb: 1e-10 },
            workers: 1,
            reorder,
            ..Default::default()
        };
        let circuit = mq_circuit::library::hardware_efficient_ansatz(n, 2, 7);
        let store = build_store(n, &cfg).expect("store construction failed");
        let r = memqsim_core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged)
            .expect("engine run failed");
        t.row(&[
            label.to_string(),
            r.stages.to_string(),
            r.chunk_visits.to_string(),
            format!("{:.1} ms", r.wall.as_secs_f64() * 1e3),
        ]);
    }
    println!("{t}");
    println!("\nCoarser chunks: fewer visits & bigger transient working set;");
    println!("finer chunks: more per-chunk overhead and lower ratio — the paper's");
    println!("granularity trade-off, quantified.");
}
