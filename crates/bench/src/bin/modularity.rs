//! **Experiment F1 — Figure 1: modularized simulation.**
//!
//! The paper's Figure 1 shows the compression layer sitting between the
//! quantum algorithm and interchangeable simulator backends. This harness
//! demonstrates exactly that: the same circuits run unchanged on the dense
//! CPU backend, the compressed CPU backend (two compression granularities)
//! and the hybrid CPU+device backend, all behind one `Backend` trait, and
//! the results agree amplitude-by-amplitude.
//!
//! Usage: `cargo run -p mq-bench --release --bin modularity [--qubits 10]`

use memqsim_core::{
    backend::run_on_all, Backend, CompressedCpuBackend, DenseCpuBackend, Granularity,
    HybridBackend, MemQSimConfig,
};
use mq_bench::{Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;
use mq_device::DeviceSpec;
use mq_num::stats::format_bytes;

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 10u32);

    let cfg = MemQSimConfig {
        chunk_bits: (n / 2).max(3),
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-11 },
        workers: 1,
        cpu_share: 0.25,
        ..Default::default()
    };

    let dense = DenseCpuBackend::default();
    let compressed = CompressedCpuBackend::new(cfg);
    let per_gate = CompressedCpuBackend {
        cfg,
        granularity: Granularity::PerGate,
    };
    let hybrid = HybridBackend::new(cfg, DeviceSpec::pcie_gen3());
    let backends: Vec<&dyn Backend> = vec![&dense, &compressed, &per_gate, &hybrid];

    println!("# F1 — backend modularity at {n} qubits\n");
    println!("One `Backend` trait; the compression layer is independent of both the");
    println!("algorithm and the compute backend (paper Fig. 1).\n");

    for circuit in library::standard_suite(n) {
        // Divergence comes back as a typed error naming both backends, so a
        // failed modularity check reads as a diagnosis, not a panic.
        let runs = run_on_all(&circuit, &backends, 1e-6).unwrap_or_else(|e| {
            eprintln!("{}: {e}", circuit.name());
            std::process::exit(1);
        });
        println!("## {} ({} gates)\n", circuit.name(), circuit.len());
        let mut t = Table::new(&["backend", "wall", "peak state", "peak working", "detail"]);
        for (b, r) in backends.iter().zip(&runs) {
            t.row(&[
                b.name(),
                format!("{:.2} ms", r.wall.as_secs_f64() * 1e3),
                format_bytes(r.peak_state_bytes),
                format_bytes(r.peak_working_bytes),
                r.detail.clone(),
            ]);
        }
        println!("{t}");
        println!("All backends agree within 1e-6 max amplitude error. [OK]\n");
    }
}
