//! **Experiment A3 — compressor comparison.**
//!
//! The paper claims MEMQSIM is "adaptable to accommodate various
//! compression algorithms". This harness sweeps every codec in the registry
//! over mid-circuit state-vector snapshots (the actual data the store
//! compresses) and reports ratio, throughput and worst-case error.
//!
//! Usage: `cargo run -p mq-bench --release --bin codec_sweep [--qubits 16]`

use mq_bench::workloads::codec_workloads;
use mq_bench::{Args, Table};
use mq_compress::CodecSpec;
use mq_num::stats::format_throughput;
use std::time::Instant;

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 16u32);

    println!("# A3 — codec sweep over mid-circuit state vectors ({n} qubits)\n");

    for w in codec_workloads(n) {
        let raw_bytes = w.data.len() * 8;
        println!("## workload: {} ({} doubles)\n", w.name, w.data.len());
        let mut t = Table::new(&[
            "codec",
            "ratio",
            "compress",
            "decompress",
            "max |err|",
            "bound",
        ]);
        for spec in CodecSpec::sweep_set() {
            let codec = spec.build();
            let t0 = Instant::now();
            let bytes = codec.compress(&w.data);
            let t_c = t0.elapsed().as_secs_f64();
            let mut out = vec![0.0f64; w.data.len()];
            let t0 = Instant::now();
            codec
                .decompress(&bytes, &mut out)
                .expect("round trip failed");
            let t_d = t0.elapsed().as_secs_f64();
            let max_err = mq_num::metrics::max_abs_err(&w.data, &out);
            let bound = codec.error_bound();
            if let Some(b) = bound {
                assert!(max_err <= b, "{spec}: bound violated ({max_err} > {b})");
            } else {
                assert_eq!(max_err, 0.0, "{spec}: lossless codec lost data");
            }
            t.row(&[
                spec.to_string(),
                format!("{:.2}x", raw_bytes as f64 / bytes.len() as f64),
                format_throughput(raw_bytes, t_c),
                format_throughput(raw_bytes, t_d),
                format!("{max_err:.1e}"),
                bound
                    .map(|b| format!("{b:.0e}"))
                    .unwrap_or_else(|| "exact".into()),
            ]);
        }
        println!("{t}\n");
    }
    println!("Reading: sparse/structured states compress by orders of magnitude (GHZ, W);");
    println!("smooth superpositions favor the SZ-style predictor; Porter–Thomas random");
    println!("states barely compress — the compressibility spectrum behind the paper's");
    println!("\"on average\" qubit-extension phrasing.");
}
