//! **Experiment A5 — fused, cache-blocked gate application.**
//!
//! Sweeps `FusionLevel::{Off, Runs1q, Blocks2q}` on the compressed CPU
//! engine (lossless codec, per-stage scheduling) and reports, per circuit
//! and level: gates removed by plan-level fusion, amplitude-buffer passes
//! avoided by the blocked apply driver, and the resulting pass and
//! wall-time ratios against the unfused baseline. Parity with `Off` is
//! checked (< 1e-12) on every run, so the ratios compare equal results.
//!
//! Usage: `cargo run -p mq-bench --release --bin fusion_sweep [--qubits 12]
//!         [--codec fpc]`

use memqsim_core::{build_store, ChunkStore, FusionLevel, Granularity, MemQSimConfig};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::library;
use mq_circuit::Circuit;
use mq_compress::CodecSpec;
use mq_num::metrics::max_amp_err;
use mq_num::Complex64;

struct Row {
    report: memqsim_core::engine::RunReport,
    state: Vec<Complex64>,
    seconds: f64,
}

fn run_once(circuit: &Circuit, chunk_bits: u32, codec: CodecSpec, fusion: FusionLevel) -> Row {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec,
        workers: 1,
        fusion,
        ..Default::default()
    };
    let store = build_store(circuit.n_qubits(), &cfg).expect("store construction failed");
    let report = memqsim_core::engine::cpu::run(&store, circuit, &cfg, Granularity::Staged)
        .expect("engine run failed");
    let seconds = report.wall.as_secs_f64();
    Row {
        report,
        state: store.to_dense().expect("dense readback failed"),
        seconds,
    }
}

/// Amplitude-buffer passes per the run's own accounting: every applied gate
/// and scalar is one pass, minus what the blocked driver saved.
fn buffer_passes(r: &memqsim_core::engine::RunReport) -> usize {
    r.gates_applied + r.scalars_applied - r.apply_passes_saved
}

fn level_name(level: FusionLevel) -> &'static str {
    match level {
        FusionLevel::Off => "off",
        FusionLevel::Runs1q => "runs1q",
        FusionLevel::Blocks2q => "blocks2q",
    }
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 12u32);
    // Parity is checked against the unfused baseline, so the codec must be
    // lossless (or adaptive without an error bound) for the 1e-12 gate.
    let codec: CodecSpec = args.get("codec", CodecSpec::Fpc);
    let chunk_bits = (n / 2).clamp(3, 10);

    println!("# A5 — fused, cache-blocked gate application (chunks of 2^{chunk_bits} amps)\n");

    let circuits = [
        library::qft(n),
        library::random_circuit(n, 2 * n, 7),
        library::hardware_efficient_ansatz(n, 2, 5),
    ];
    let levels = [FusionLevel::Off, FusionLevel::Runs1q, FusionLevel::Blocks2q];

    let mut json_rows = Vec::new();
    let mut all_ok = true;
    for circuit in &circuits {
        println!("## {}\n", circuit.name());
        let mut t = Table::new(&[
            "fusion",
            "gates applied",
            "fused away",
            "passes",
            "passes/visit",
            "passes vs off",
            "wall",
            "wall vs off",
            "err vs off",
        ]);
        let base = run_once(circuit, chunk_bits, codec, FusionLevel::Off);
        for level in levels {
            let row = if level == FusionLevel::Off {
                Row {
                    report: base.report.clone(),
                    state: base.state.clone(),
                    seconds: base.seconds,
                }
            } else {
                run_once(circuit, chunk_bits, codec, level)
            };
            let err = max_amp_err(&base.state, &row.state);
            all_ok &= err < 1e-12;
            let passes = buffer_passes(&row.report);
            let passes_ratio = buffer_passes(&base.report) as f64 / passes.max(1) as f64;
            let wall_ratio = base.seconds / row.seconds.max(1e-12);
            t.row(&[
                level_name(level).to_string(),
                row.report.gates_applied.to_string(),
                row.report.gates_fused.to_string(),
                passes.to_string(),
                format!(
                    "{:.2}",
                    passes as f64 / row.report.chunk_visits.max(1) as f64
                ),
                format!("{passes_ratio:.2}x"),
                format!("{:.1} ms", row.seconds * 1e3),
                format!("{wall_ratio:.2}x"),
                format!("{err:.1e}"),
            ]);
            json_rows.push(format!(
                "    {{\"circuit\": \"{}\", \"fusion\": \"{}\", \"seconds\": {:.6}, \
                 \"gates_applied\": {}, \"scalars_applied\": {}, \"gates_fused\": {}, \
                 \"apply_passes_saved\": {}, \"chunk_visits\": {}, \"buffer_passes\": {}, \
                 \"passes_ratio_vs_off\": {passes_ratio:.4}, \
                 \"wall_ratio_vs_off\": {wall_ratio:.4}, \"max_amp_err_vs_off\": {err:.3e}}}",
                circuit.name(),
                level_name(level),
                row.seconds,
                row.report.gates_applied,
                row.report.scalars_applied,
                row.report.gates_fused,
                row.report.apply_passes_saved,
                row.report.chunk_visits,
                passes,
            ));
        }
        println!("{t}\n");
    }
    println!(
        "Parity vs off on every run: [{}]",
        if all_ok { "OK" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"experiment\": \"fusion\",\n  \"qubits\": {n},\n  \
         \"chunk_bits\": {chunk_bits},\n  \"sweep\": [\n{}\n  ]\n}}",
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_fusion", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
    assert!(all_ok, "fused runs diverged from the unfused baseline");
}
