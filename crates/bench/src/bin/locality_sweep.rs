//! **Experiment L1 — qubit-layout locality sweep.**
//!
//! `LayoutPolicy::Greedy` lets the planner *move* hot cross-chunk qubits
//! below the chunk boundary instead of repeatedly paying cross-chunk
//! stages for them. This sweep pins the three claims that make the layout
//! machinery worth having:
//!
//! * safety: the greedy plan never visits more chunks than the fixed plan
//!   (the planner falls back to fixed whenever remapping would not
//!   strictly win), and the greedy state is bit-identical to the
//!   reorder-only state it extends;
//! * a real win: on at least one random/QAOA workload the greedy layout
//!   cuts chunk visits ≥ 1.5x below the *reorder-only* baseline — gains
//!   commutation-aware gate reordering cannot reach, because the hot
//!   targets share one non-diagonal control;
//! * free transpositions: high-high remaps (QFT's absorbed tail swap
//!   network) exchange whole compressed payloads — the remap pass adds
//!   zero chunk visits, so no decode is ever charged for it.
//!
//! Workloads: a seeded random circuit, a random circuit with rotating hot
//! high targets, a QAOA ring, and QFT, each at chunk_bits 6–8. Everything
//! lands in `results/BENCH_locality.json`.
//!
//! Usage: `cargo run -p mq-bench --release --bin locality_sweep
//!         [--qubits 16] [--check]`
//!
//! `--check` exits non-zero if any gate fails — the CI smoke gate.

use memqsim_core::engine::{cpu, Granularity};
use memqsim_core::{build_store, LayoutPolicy, MemQSimConfig, RunReport};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_num::metrics::max_amp_err;
use mq_num::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random circuit whose two-qubit gates keep hitting the top three qubits
/// under one shared low control. The shared non-diagonal control defeats
/// commutation-aware reordering (no two CX gates commute), while one remap
/// pass drops the targets below the chunk boundary for the whole body.
fn random_hot_targets(n: u32, blocks: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    c.h(0);
    for _ in 0..blocks {
        for t in [n - 1, n - 2, n - 3] {
            c.cx(0, t);
            let q = rng.gen_range(1..4u32);
            c.rz(q, rng.gen_range(0.0..std::f64::consts::PI));
        }
    }
    c
}

fn workloads(n: u32) -> Vec<(&'static str, Circuit)> {
    vec![
        ("random", library::random_circuit(n, 8, 7)),
        ("random-hot-targets", random_hot_targets(n, 10, 23)),
        (
            "qaoa-ring(p=2)",
            library::qaoa_maxcut(n, &library::ring_graph(n), &[0.4, 0.8], &[0.3, 0.6]),
        ),
        ("qft", library::qft(n)),
    ]
}

#[derive(Clone, Copy)]
enum Policy {
    Fixed,
    ReorderOnly,
    Greedy,
}

fn run(circuit: &Circuit, chunk_bits: u32, policy: Policy) -> (Vec<Complex64>, RunReport) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Fpc, // lossless: parity must be bit-exact
        workers: 1,
        reorder: !matches!(policy, Policy::Fixed),
        layout_policy: if matches!(policy, Policy::Greedy) {
            LayoutPolicy::Greedy
        } else {
            LayoutPolicy::Fixed
        },
        ..Default::default()
    };
    let store = build_store(circuit.n_qubits(), &cfg).expect("store construction failed");
    let report = cpu::run(&store, circuit, &cfg, Granularity::Staged).expect("engine run failed");
    (store.to_dense().expect("store is readable"), report)
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 16u32);
    let check = args.has("check");

    println!("# L1 — qubit-layout locality sweep ({n} qubits, chunk_bits 6-8)\n");

    let mut failures = Vec::new();
    let mut json_rows = Vec::new();
    let mut best_ratio = 0.0f64;
    let mut best_tag = String::new();
    let mut payload_swaps_proven = false;
    for (workload, circuit) in workloads(n) {
        let mut t = Table::new(&[
            "chunk_bits",
            "fixed",
            "reorder-only",
            "greedy",
            "vs reorder",
            "remaps",
            "saved",
            "parity",
        ]);
        for chunk_bits in [6u32, 7, 8] {
            let (fixed_state, fixed) = run(&circuit, chunk_bits, Policy::Fixed);
            let (reorder_state, reorder) = run(&circuit, chunk_bits, Policy::ReorderOnly);
            let (greedy_state, greedy) = run(&circuit, chunk_bits, Policy::Greedy);
            let tag = format!("{workload} cb{chunk_bits}");

            // Layout must be a bit-level no-op against the same base
            // circuit (reorder-only); the reorder pass itself changes the
            // floating-point evaluation order, so the fixed baseline is
            // held to numeric tolerance instead.
            let bit_identical = reorder_state == greedy_state;
            if !bit_identical {
                failures.push(format!("{tag}: greedy diverged from reorder-only"));
            }
            let err = max_amp_err(&fixed_state, &greedy_state);
            if err > 1e-10 {
                failures.push(format!("{tag}: greedy vs fixed err {err:.3e}"));
            }
            if greedy.chunk_visits > fixed.chunk_visits {
                failures.push(format!(
                    "{tag}: greedy visits {} > fixed {}",
                    greedy.chunk_visits, fixed.chunk_visits
                ));
            }
            if greedy.chunk_visits > reorder.chunk_visits {
                failures.push(format!(
                    "{tag}: greedy visits {} > reorder-only {}",
                    greedy.chunk_visits, reorder.chunk_visits
                ));
            }
            if greedy.remap_passes > 0 && greedy.chunk_visits_saved_by_layout == 0 {
                failures.push(format!("{tag}: remapped without saving visits"));
            }
            // QFT's absorbed tail swaps are high-high: the epilogue that
            // undoes them exchanges whole compressed payloads, so it adds
            // remap passes but ZERO chunk visits — every decode in the run
            // is a stage visit, and the totals divide exactly.
            let chunk_count = 1usize << (n - chunk_bits);
            if workload == "qft" && greedy.remap_passes > 0 {
                if greedy.chunk_visits == greedy.stages * chunk_count {
                    payload_swaps_proven = true;
                } else {
                    failures.push(format!(
                        "{tag}: high-high remap decoded chunks (visits {} != stages {} x {chunk_count})",
                        greedy.chunk_visits, greedy.stages
                    ));
                }
            }

            let ratio = reorder.chunk_visits as f64 / greedy.chunk_visits.max(1) as f64;
            if (workload.starts_with("random") || workload.starts_with("qaoa"))
                && ratio > best_ratio
            {
                best_ratio = ratio;
                best_tag = tag.clone();
            }
            t.row(&[
                chunk_bits.to_string(),
                fixed.chunk_visits.to_string(),
                reorder.chunk_visits.to_string(),
                greedy.chunk_visits.to_string(),
                format!("{ratio:.2}x"),
                greedy.remap_passes.to_string(),
                greedy.chunk_visits_saved_by_layout.to_string(),
                if bit_identical {
                    "exact".to_string()
                } else {
                    "DIVERGED".to_string()
                },
            ]);
            json_rows.push(format!(
                "    {{\"workload\": \"{workload}\", \"chunk_bits\": {chunk_bits}, \
                 \"fixed_visits\": {}, \"reorder_only_visits\": {}, \
                 \"greedy_visits\": {}, \"reduction_vs_reorder\": {ratio:.4}, \
                 \"remap_passes\": {}, \"visits_saved\": {}, \
                 \"bit_identical\": {bit_identical}}}",
                fixed.chunk_visits,
                reorder.chunk_visits,
                greedy.chunk_visits,
                greedy.remap_passes,
                greedy.chunk_visits_saved_by_layout
            ));
        }
        println!("## {workload}{n}\n\n{t}");
    }

    if best_ratio < 1.5 {
        failures.push(format!(
            "best greedy-vs-reorder reduction {best_ratio:.2}x < 1.5x on every random/QAOA workload"
        ));
    }
    if !payload_swaps_proven {
        failures.push("no qft config exercised a payload-moving high-high remap".to_string());
    }

    let json = format!(
        "{{\n  \"experiment\": \"locality\",\n  \"qubits\": {n},\n  \
         \"gates\": {{\"parity_exact\": true, \"greedy_never_worse\": true, \
         \"reduction_1_5x_vs_reorder\": true, \"payload_swaps_no_decode\": true, \
         \"pass\": {}}},\n  \
         \"best_reduction_vs_reorder\": {best_ratio:.4},\n  \
         \"best_reduction_workload\": \"{best_tag}\",\n  \"sweep\": [\n{}\n  ]\n}}",
        failures.is_empty(),
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_locality", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nLocality: {best_ratio:.2}x best chunk-visit reduction vs reorder-only \
             ({best_tag}), greedy never worse than fixed, states bit-identical, \
             high-high remaps moved payloads without decode. [OK]"
        );
    } else {
        eprintln!("\nlocality sweep failures:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
