//! **Experiment A4 — overlapped CPU chunk pipeline.**
//!
//! The paper's pipelining claim on the pure-CPU path: with decode, apply
//! and encode running in separate worker pools behind a bounded in-flight
//! window, chunk `k+1`'s decompress overlaps chunk `k`'s apply/recompress.
//! In the codec-dominated regime (qft16 at chunk_bits 6–8, SZ codec)
//! decompress+recompress are ~85% of busy time, so overlap is where the
//! wall-clock goes.
//!
//! Sweeps `pipeline_depth` ∈ {1, 2, 4, 8} at each chunk size, checks
//! telemetry records real role overlap, and emits
//! `results/BENCH_pipeline.json` comparing depth 1 against the best depth.
//!
//! Usage: `cargo run -p mq-bench --release --bin pipeline_sweep
//!         [--qubits 16] [--codec sz:1e-10] [--check]`
//!
//! `--check` exits non-zero if any pipelined run fails to overlap roles or
//! beat the serial wall-clock — the CI smoke gate.

use memqsim_core::{build_store, Granularity, MemQSimConfig};
use mq_bench::{write_results_json, Args, Table};
use mq_circuit::library;
use mq_compress::CodecSpec;

const DEPTHS: [usize; 4] = [1, 2, 4, 8];

fn run_once(
    n: u32,
    chunk_bits: u32,
    codec: CodecSpec,
    depth: usize,
) -> memqsim_core::engine::RunReport {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec,
        workers: 1,
        pipeline_depth: depth,
        ..Default::default()
    };
    let circuit = library::qft(n);
    let store = build_store(n, &cfg).expect("store construction failed");
    memqsim_core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged)
        .expect("engine run failed")
}

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("qubits", 16u32);
    let codec: CodecSpec = args.get("codec", CodecSpec::Sz { eb: 1e-10 });
    let check = args.has("check");
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!("# A4 — CPU pipeline depth sweep (qft{n}, {codec}, {cpus} cpu)\n");

    let mut failures = Vec::new();
    let mut json_rows = Vec::new();
    for chunk_bits in [6u32, 7, 8] {
        println!("## chunk_bits = {chunk_bits}\n");
        let mut t = Table::new(&[
            "depth",
            "wall",
            "speedup vs serial",
            "overlap",
            "role_overlap",
            "buffer peak",
        ]);
        let mut serial_wall = 0.0f64;
        let mut best: Option<(usize, f64)> = None;
        for depth in DEPTHS {
            let mut r = run_once(n, chunk_bits, codec, depth);
            // Whether two roles' spans interleave on a loaded or single-CPU
            // host depends on where the OS preempts; one non-overlapping run
            // is scheduler noise, three in a row is a real regression.
            let mut tries = 1;
            while depth > 1 && !r.telemetry.has_role_overlap() && tries < 3 {
                r = run_once(n, chunk_bits, codec, depth);
                tries += 1;
            }
            let wall = r.wall.as_secs_f64();
            if depth == 1 {
                serial_wall = wall;
            }
            let overlapped = r.telemetry.has_role_overlap();
            if depth > 1 {
                if !overlapped {
                    failures.push(format!(
                        "cb{chunk_bits} depth {depth}: role_overlap false in {tries} runs"
                    ));
                }
                if best.is_none_or(|(_, w)| wall < w) {
                    best = Some((depth, wall));
                }
            }
            t.row(&[
                depth.to_string(),
                format!("{:.1} ms", wall * 1e3),
                if depth == 1 {
                    "baseline".to_string()
                } else {
                    format!("{:.2}x", serial_wall / wall)
                },
                format!("{:.1} ms", r.telemetry.overlap().as_secs_f64() * 1e3),
                overlapped.to_string(),
                format!("{} KiB", r.peak_buffer_bytes / 1024),
            ]);
            json_rows.push(format!(
                "    {{\"chunk_bits\": {chunk_bits}, \"depth\": {depth}, \
                 \"seconds\": {wall:.6}, \"telemetry\": {}}}",
                r.telemetry.to_json(false)
            ));
        }
        println!("{t}");
        let (best_depth, best_wall) = best.expect("pipelined depths ran");
        let speedup = serial_wall / best_wall;
        let parallel_host = cpus > 1;
        println!(
            "\nBest: depth {best_depth} at {:.1} ms — {speedup:.2}x over serial. [{}]\n",
            best_wall * 1e3,
            if speedup > 1.0 {
                "OK"
            } else if parallel_host {
                "FAIL"
            } else {
                "single-cpu host; overlap can't buy wall time"
            }
        );
        // On a single-CPU host the three pools timeshare one core, so the
        // wall-clock gate would measure the scheduler, not the pipeline;
        // role_overlap (above) remains a hard failure everywhere.
        if speedup <= 1.0 && parallel_host {
            failures.push(format!(
                "cb{chunk_bits}: best depth {best_depth} not faster than serial \
                 ({best_wall:.4}s vs {serial_wall:.4}s)"
            ));
        }
        json_rows.push(format!(
            "    {{\"chunk_bits\": {chunk_bits}, \"best_depth\": {best_depth}, \
             \"serial_seconds\": {serial_wall:.6}, \"best_seconds\": {best_wall:.6}, \
             \"speedup\": {speedup:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"pipeline\",\n  \"circuit\": \"qft{n}\",\n  \
         \"cpus\": {cpus},\n  \"sweep\": [\n{}\n  ]\n}}",
        json_rows.join(",\n")
    );
    match write_results_json("BENCH_pipeline", &json) {
        Ok(path) => println!("Sweep written to {}.", path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("\npipeline sweep failures:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    } else if check {
        if cpus > 1 {
            println!("\nAll pipelined runs overlapped roles and beat serial. [OK]");
        } else {
            println!("\nAll pipelined runs overlapped roles (wall gate waived: 1 cpu). [OK]");
        }
    }
}
