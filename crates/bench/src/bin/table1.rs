//! **Experiment T1 / C1 / C2 — Table 1.**
//!
//! Regenerates the paper's only numeric table: H2D/D2H transfer time in
//! seconds for the sync, async-per-element and buffered-scatter strategies
//! at 20 and 25 qubits, and checks the two derived claims (async ≈ 870x
//! sync H2D; buffer ≈ 1.03x sync).
//!
//! Usage: `cargo run -p mq-bench --release --bin table1 [--fast]`
//! (`--fast` restricts to 20 qubits to keep the run under a few seconds).

use mq_bench::{fmt_secs, write_results_json, Args, Table};
use mq_compress::{Codec, CodecSpec};
use mq_device::{
    run_compressed_transfer_experiment, run_transfer_experiment, Device, DeviceSpec,
    TransferStrategy,
};
use mq_telemetry::{Counter, Telemetry};
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    let qubit_rows: Vec<u32> = if args.has("fast") {
        vec![20]
    } else {
        vec![20, 25]
    };

    // Paper values for side-by-side comparison: (qubits, strategy) -> (h2d, d2h).
    let paper = |q: u32, s: TransferStrategy| -> (f64, f64) {
        match (q, s) {
            (20, TransferStrategy::Sync) => (0.003, 0.008),
            (20, TransferStrategy::AsyncPerElement) => (2.7, 9.2),
            (20, TransferStrategy::BufferedScatter) => (0.003, 0.004),
            (25, TransferStrategy::Sync) => (0.080, 0.233),
            (25, TransferStrategy::AsyncPerElement) => (77.9, 294.4),
            (25, TransferStrategy::BufferedScatter) => (0.110, 0.273),
            _ => (f64::NAN, f64::NAN),
        }
    };

    let device = Device::new(DeviceSpec::pcie_gen3());
    println!("# Table 1 — data transfer time H2D/D2H in seconds\n");
    println!(
        "Device model: {} ({} GiB, H2D {:.1} GB/s, D2H {:.1} GB/s, {:.1} us/call H2D)\n",
        device.spec().name,
        device.spec().memory_bytes() >> 30,
        device.spec().h2d_bandwidth / 1e9,
        device.spec().d2h_bandwidth / 1e9,
        device.spec().h2d_call_overhead * 1e6,
    );

    let mut table = Table::new(&[
        "qubits",
        "strategy",
        "H2D (model)",
        "D2H (model)",
        "H2D (paper)",
        "D2H (paper)",
        "wall",
    ]);
    let mut sync_h2d = std::collections::HashMap::new();
    let mut sync_total = std::collections::HashMap::new();
    let mut results = Vec::new();

    let mut telemetry_entries = Vec::new();
    for &q in &qubit_rows {
        for strategy in TransferStrategy::all() {
            let piece = 1usize << q; // paper moves the whole vector at once
            let telemetry = Telemetry::new();
            device.attach_telemetry(telemetry.clone());
            let r = run_transfer_experiment(&device, q, piece, strategy)
                .expect("transfer experiment failed");
            device.detach_telemetry();
            let record = telemetry.finish();
            let (ph, pd) = paper(q, strategy);
            let h2d = r.effective_h2d().as_secs_f64();
            let d2h = r.effective_d2h().as_secs_f64();
            table.row(&[
                q.to_string(),
                strategy.label().to_string(),
                fmt_secs(h2d),
                fmt_secs(d2h),
                fmt_secs(ph),
                fmt_secs(pd),
                format!("{:.1} ms", r.real_total.as_secs_f64() * 1e3),
            ]);
            if strategy == TransferStrategy::Sync {
                sync_h2d.insert(q, h2d);
                sync_total.insert(q, h2d + d2h);
            }
            results.push((q, strategy, h2d, d2h));
            telemetry_entries.push((q, strategy, h2d, d2h, record));
        }
    }
    println!("{table}");

    // Counter sanity: every strategy moves the exact same payload (the full
    // 2^q-amplitude vector, 16 bytes per amplitude) in each direction; only
    // buffered scatter performs gather/scatter passes.
    let mut counters_ok = true;
    for (q, strategy, _, _, record) in &telemetry_entries {
        let expect = (1u64 << q) * 16;
        let h2d_bytes = record.counter(Counter::BytesH2d);
        let d2h_bytes = record.counter(Counter::BytesD2h);
        let scatter = record.counter(Counter::ScatterOps);
        let uniform = h2d_bytes == expect && d2h_bytes == expect;
        let scatter_sane = (*strategy == TransferStrategy::BufferedScatter) == (scatter > 0);
        counters_ok &= uniform && scatter_sane && record.balanced();
        if !(uniform && scatter_sane) {
            println!(
                "counter mismatch at {q}q/{}: h2d {h2d_bytes} d2h {d2h_bytes} scatter {scatter}",
                strategy.label()
            );
        }
    }

    // Beyond the paper's three strategies: the compressed-transfer row —
    // ship the codec payload and decode it with the modeled device-side
    // kernel instead of moving raw amplitudes.
    println!("## Compressed transfer (device-side codec)\n");
    let mut comp_table = Table::new(&[
        "qubits",
        "codec",
        "raw bytes",
        "payload bytes",
        "cut",
        "H2D+decode",
        "D2H+encode",
        "wall",
    ]);
    let mut comp_ok = true;
    let mut comp_entries = Vec::new();
    for &q in &qubit_rows {
        for spec in [CodecSpec::ZeroRle, CodecSpec::Fpc] {
            let codec: Arc<dyn Codec> = Arc::from(spec.build());
            let piece = 1usize << q.min(22); // chunked pieces, full vector total
            let r = run_compressed_transfer_experiment(&device, q, piece, &codec)
                .expect("compressed transfer experiment failed");
            comp_ok &= r.bytes_cut() >= 3.0;
            comp_table.row(&[
                q.to_string(),
                r.codec.clone(),
                r.raw_bytes.to_string(),
                r.payload_bytes_h2d.to_string(),
                format!("{:.1}x", r.bytes_cut()),
                fmt_secs(r.effective_h2d().as_secs_f64()),
                fmt_secs(r.effective_d2h().as_secs_f64()),
                format!("{:.1} ms", r.real_total.as_secs_f64() * 1e3),
            ]);
            comp_entries.push(format!(
                "    {{\"qubits\": {q}, \"codec\": \"{}\", \"raw_bytes\": {}, \
                 \"payload_bytes_h2d\": {}, \"cut\": {:.4}, \"h2d_plus_decode_s\": {}, \
                 \"d2h_plus_encode_s\": {}}}",
                r.codec,
                r.raw_bytes,
                r.payload_bytes_h2d,
                r.bytes_cut(),
                r.effective_h2d().as_secs_f64(),
                r.effective_d2h().as_secs_f64()
            ));
        }
    }
    println!("{comp_table}");

    // Layout row: a greedy-layout remap relabels chunks where they live.
    // On the host the compressed payloads swap by pointer; the device hears
    // one bookkeeping command (a scatter-shaped pass over the pair list).
    // The alternative — realizing the permutation by re-shipping the state
    // down and back up — pays the full vector on the link twice.
    println!("## Layout remap (high-high chunk exchange) vs re-shipping the vector\n");
    let mut remap_table = Table::new(&[
        "qubits",
        "chunk pairs",
        "remap (model)",
        "re-ship (model)",
        "link bytes",
    ]);
    let mut remap_ok = true;
    let mut remap_entries = Vec::new();
    for &q in &qubit_rows {
        let chunk_bits = q - 4; // 16 chunks: one high-high transposition
        let chunk_count = 1usize << (q - chunk_bits);
        let pairs: Vec<(usize, usize)> = (0..chunk_count / 2)
            .map(|k| (k, k + chunk_count / 2))
            .collect();
        let stream = device.create_stream();
        stream.remap_chunks(pairs.clone());
        let stats = stream.synchronize().expect("remap stream failed");
        let remap_s = stats.modeled.as_secs_f64();
        let bytes = (1u64 << q) as f64 * 16.0;
        let reship_s = bytes / device.spec().d2h_bandwidth
            + bytes / device.spec().h2d_bandwidth
            + device.spec().d2h_call_overhead
            + device.spec().h2d_call_overhead;
        remap_ok &= remap_s * 100.0 < reship_s && stats.bytes_h2d == 0 && stats.bytes_d2h == 0;
        remap_table.row(&[
            q.to_string(),
            pairs.len().to_string(),
            fmt_secs(remap_s),
            fmt_secs(reship_s),
            format!("0 vs {:.0e}", 2.0 * bytes),
        ]);
        remap_entries.push(format!(
            "    {{\"qubits\": {q}, \"chunk_pairs\": {}, \"remap_model_s\": {remap_s}, \
             \"reship_model_s\": {reship_s}, \"link_bytes\": 0}}",
            pairs.len()
        ));
    }
    println!("{remap_table}");

    println!("## Claim checks\n");
    let mut ok = true;
    for &(q, strategy, h2d, d2h) in &results {
        match strategy {
            TransferStrategy::AsyncPerElement => {
                let ratio = h2d / sync_h2d[&q];
                let pass = (100.0..5000.0).contains(&ratio);
                ok &= pass;
                println!(
                    "- C1 ({q}q): async/sync H2D = {ratio:.0}x (paper: ~870x) {}",
                    if pass { "[OK]" } else { "[FAIL]" }
                );
            }
            TransferStrategy::BufferedScatter => {
                let ratio = (h2d + d2h) / sync_total[&q];
                let pass = (0.95..1.15).contains(&ratio);
                ok &= pass;
                println!(
                    "- C2 ({q}q): buffer/sync total = {ratio:.3}x (paper: ~1.03x) {}",
                    if pass { "[OK]" } else { "[FAIL]" }
                );
            }
            TransferStrategy::Sync => {}
        }
    }
    println!(
        "- counters: every strategy moved the full vector both ways, gather/scatter only \
         under buffering {}",
        if counters_ok { "[OK]" } else { "[FAIL]" }
    );
    ok &= counters_ok;

    // The paper's ordering per qubit count: async >> buffered >= sync-ish.
    // Check it on the modeled clocks the telemetry entries carry.
    let mut ordering_ok = true;
    for &q in &qubit_rows {
        let total = |s: TransferStrategy| -> f64 {
            telemetry_entries
                .iter()
                .find(|(eq, es, _, _, _)| *eq == q && *es == s)
                .map(|(_, _, h, d, _)| h + d)
                .unwrap_or(f64::NAN)
        };
        ordering_ok &= total(TransferStrategy::AsyncPerElement) > total(TransferStrategy::Sync)
            && total(TransferStrategy::AsyncPerElement) > total(TransferStrategy::BufferedScatter);
    }
    println!(
        "- ordering: async-per-element slowest at every size, as in Table 1 {}",
        if ordering_ok { "[OK]" } else { "[FAIL]" }
    );
    ok &= ordering_ok;
    println!(
        "- C3: compressed transfer moves >= 3x fewer link bytes than raw on every codec {}",
        if comp_ok { "[OK]" } else { "[FAIL]" }
    );
    ok &= comp_ok;
    println!(
        "- L1: a layout remap is >= 100x cheaper than re-shipping the vector and moves \
         zero link bytes {}",
        if remap_ok { "[OK]" } else { "[FAIL]" }
    );
    ok &= remap_ok;

    let entries = telemetry_entries
        .iter()
        .map(|(q, strategy, h2d, d2h, record)| {
            format!(
                "    {{\"qubits\": {q}, \"strategy\": \"{}\", \"h2d_model_s\": {h2d}, \
                 \"d2h_model_s\": {d2h}, \"telemetry\": {}}}",
                strategy.label(),
                record.to_json(false)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"table1\",\n  \"checks\": {{\"claims\": {}, \
         \"counters\": {counters_ok}, \"ordering\": {ordering_ok}, \
         \"compressed_cut\": {comp_ok}, \"layout_remap\": {remap_ok}}},\n  \
         \"entries\": [\n{entries}\n  ],\n  \"compressed\": [\n{}\n  ],\n  \
         \"layout_remap\": [\n{}\n  ]\n}}",
        ok && counters_ok && ordering_ok,
        comp_entries.join(",\n"),
        remap_entries.join(",\n")
    );
    match write_results_json("telemetry_table1", &json) {
        Ok(path) => println!("\nTelemetry written to {}.", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    println!(
        "\nShape {}",
        if ok {
            "reproduced."
        } else {
            "NOT reproduced — investigate!"
        }
    );
    if !ok {
        std::process::exit(1);
    }
}
