//! Minimal markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, " {:<w$} |", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["x", "1"]).row_strs(&["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["h"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
