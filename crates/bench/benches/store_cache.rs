//! Criterion bench for the store's hot-chunk residency cache: hit, miss and
//! eviction service times against the raw codec round-trip each one replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memqsim_core::{CachePolicy, CompressedStateVector};
use mq_circuit::library;
use mq_compress::CodecSpec;
use mq_num::Complex64;
use mq_statevec::{run_circuit, CpuConfig};
use std::sync::Arc;

const CHUNK_BITS: u32 = 10;

/// A realistic mid-circuit state as the store's contents.
fn qft_store() -> (CompressedStateVector, usize) {
    let state = run_circuit(&library::qft(14), &CpuConfig::default());
    let store = CompressedStateVector::from_amplitudes(
        state.amplitudes(),
        CHUNK_BITS,
        Arc::from(CodecSpec::Sz { eb: 1e-10 }.build()),
    );
    let entry_bytes = store.chunk_amps() * 16;
    (store, entry_bytes)
}

fn bench_store_cache(c: &mut Criterion) {
    let (store, entry_bytes) = qft_store();
    let chunk_amps = store.chunk_amps();
    let mut buf = vec![Complex64::ZERO; chunk_amps];

    let mut group = c.benchmark_group("store_cache");
    group.throughput(Throughput::Bytes(entry_bytes as u64));
    group.sample_size(20);

    // Baseline: every load decodes, every store encodes.
    store.set_cache(0, CachePolicy::WriteBack);
    group.bench_with_input(BenchmarkId::from_parameter("uncached_load"), &(), |b, _| {
        b.iter(|| store.load_chunk(0, &mut buf).expect("load"))
    });
    store.load_chunk(1, &mut buf).expect("load");
    group.bench_with_input(
        BenchmarkId::from_parameter("uncached_store"),
        &(),
        |b, _| b.iter(|| store.store_chunk(1, &buf)),
    );

    // Hit: the resident copy is handed back with zero codec work.
    store.set_cache(4 * entry_bytes, CachePolicy::WriteBack);
    store.load_chunk(0, &mut buf).expect("admit");
    group.bench_with_input(BenchmarkId::from_parameter("cached_hit"), &(), |b, _| {
        b.iter(|| store.load_chunk(0, &mut buf).expect("hit"))
    });

    // Dirty store into a resident entry: defers all recompression.
    group.bench_with_input(BenchmarkId::from_parameter("cached_store"), &(), |b, _| {
        b.iter(|| store.store_chunk(0, &buf))
    });

    // Miss + clean eviction churn: a 1-entry cache and two alternating
    // chunks, so every load decodes, admits, and drops the previous entry.
    store.set_cache(entry_bytes, CachePolicy::WriteBack);
    let mut i = 0usize;
    group.bench_with_input(
        BenchmarkId::from_parameter("miss_with_clean_eviction"),
        &(),
        |b, _| {
            b.iter(|| {
                i ^= 1;
                store.load_chunk(i, &mut buf).expect("miss")
            })
        },
    );

    // Dirty-eviction churn: alternating stores through the 1-entry cache;
    // every store writes back the previously dirtied chunk.
    let mut j = 0usize;
    group.bench_with_input(
        BenchmarkId::from_parameter("store_with_dirty_eviction"),
        &(),
        |b, _| {
            b.iter(|| {
                j ^= 1;
                store.store_chunk(j, &buf)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_store_cache);
criterion_main!(benches);
