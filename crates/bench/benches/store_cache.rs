//! Criterion bench for the store's hot-chunk residency cache: hit, miss and
//! eviction service times against the raw codec round-trip each one replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memqsim_core::{build_store_from_amplitudes, CachePolicy, ChunkStore, MemQSimConfig};
use mq_circuit::library;
use mq_compress::CodecSpec;
use mq_num::Complex64;
use mq_statevec::{run_circuit, CpuConfig};
use std::sync::Arc;

const CHUNK_BITS: u32 = 10;
const ENTRY_BYTES: usize = (1usize << CHUNK_BITS) * 16;

/// A realistic mid-circuit state as the store's contents, behind a stack
/// with `cache_entries` residency-cache slots (0 = bare codec tier).
fn qft_store(cache_entries: usize) -> Arc<dyn ChunkStore> {
    let state = run_circuit(&library::qft(14), &CpuConfig::default());
    let cfg = MemQSimConfig {
        chunk_bits: CHUNK_BITS,
        codec: CodecSpec::Sz { eb: 1e-10 },
        cache_bytes: cache_entries * ENTRY_BYTES,
        cache_policy: CachePolicy::WriteBack,
        ..Default::default()
    };
    build_store_from_amplitudes(state.amplitudes(), &cfg).expect("store construction failed")
}

fn bench_store_cache(c: &mut Criterion) {
    let mut buf = vec![Complex64::ZERO; 1 << CHUNK_BITS];

    let mut group = c.benchmark_group("store_cache");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    group.sample_size(20);

    // Baseline: every load decodes, every store encodes.
    let uncached = qft_store(0);
    group.bench_with_input(BenchmarkId::from_parameter("uncached_load"), &(), |b, _| {
        b.iter(|| uncached.load_chunk(0, &mut buf).expect("load"))
    });
    uncached.load_chunk(1, &mut buf).expect("load");
    group.bench_with_input(
        BenchmarkId::from_parameter("uncached_store"),
        &(),
        |b, _| b.iter(|| uncached.store_chunk(1, &buf).expect("store")),
    );

    // Hit: the resident copy is handed back with zero codec work.
    let cached = qft_store(4);
    cached.load_chunk(0, &mut buf).expect("admit");
    group.bench_with_input(BenchmarkId::from_parameter("cached_hit"), &(), |b, _| {
        b.iter(|| cached.load_chunk(0, &mut buf).expect("hit"))
    });

    // Dirty store into a resident entry: defers all recompression.
    group.bench_with_input(BenchmarkId::from_parameter("cached_store"), &(), |b, _| {
        b.iter(|| cached.store_chunk(0, &buf).expect("store"))
    });

    // Miss + clean eviction churn: a 1-entry cache and two alternating
    // chunks, so every load decodes, admits, and drops the previous entry.
    let churn = qft_store(1);
    let mut i = 0usize;
    group.bench_with_input(
        BenchmarkId::from_parameter("miss_with_clean_eviction"),
        &(),
        |b, _| {
            b.iter(|| {
                i ^= 1;
                churn.load_chunk(i, &mut buf).expect("miss")
            })
        },
    );

    // Dirty-eviction churn: alternating stores through the 1-entry cache;
    // every store writes back the previously dirtied chunk.
    let mut j = 0usize;
    group.bench_with_input(
        BenchmarkId::from_parameter("store_with_dirty_eviction"),
        &(),
        |b, _| {
            b.iter(|| {
                j ^= 1;
                churn.store_chunk(j, &buf).expect("store")
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_store_cache);
criterion_main!(benches);
