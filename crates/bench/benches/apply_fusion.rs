//! Criterion bench for the blocked apply driver: one cache-tiled sweep over
//! the buffer (`apply_all`) vs one full buffer pass per gate (`apply_gate`
//! in a loop) on the same stage-like gate lists. Also isolates the two
//! specialized single-pass kernels — a diagonal run folded into one phase
//! table and an X/SWAP run composed into one index permutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq_circuit::Gate;
use mq_num::complex::c64;
use mq_num::Complex64;
use mq_statevec::apply::{apply_all, apply_gate};

fn buffer(n: u32) -> Vec<Complex64> {
    (0..1usize << n)
        .map(|i| c64((i as f64 * 1e-4).sin(), (i as f64 * 1e-4).cos()))
        .collect()
}

/// A stage-like mix: dense 1q/2q gates, diagonals and swaps, all local to
/// the low 12 qubits (tile-local for the default 2^15-amp tile).
fn mixed_stage() -> Vec<Gate> {
    let mut gates = Vec::new();
    for k in 0..4u32 {
        gates.push(Gate::H(k));
        gates.push(Gate::Rz(k + 4, 0.3 + k as f64));
        gates.push(Gate::Cx(k, k + 4));
        gates.push(Gate::Cz(k + 1, k + 8));
        gates.push(Gate::Swap(k, k + 8));
        gates.push(Gate::T(k + 2));
    }
    gates
}

/// A pure diagonal run — folds into one phase-table pass.
fn diagonal_run() -> Vec<Gate> {
    (0..8u32)
        .flat_map(|k| [Gate::Rz(k, 0.1 * (k + 1) as f64), Gate::Cz(k, (k + 3) % 8)])
        .collect()
}

/// A pure X/SWAP run — composes into one index permutation.
fn permutation_run() -> Vec<Gate> {
    (0..8u32)
        .flat_map(|k| [Gate::X(k), Gate::Swap(k, (k + 5) % 12)])
        .collect()
}

fn bench_apply_fusion(c: &mut Criterion) {
    let n = 18u32;
    let mut state = buffer(n);
    let amps = state.len() as u64;

    let cases: Vec<(&str, Vec<Gate>)> = vec![
        ("mixed_stage_24g", mixed_stage()),
        ("diag_run_16g", diagonal_run()),
        ("perm_run_16g", permutation_run()),
    ];

    let mut group = c.benchmark_group("apply_fusion_2^18");
    group.sample_size(20);
    for (label, gates) in &cases {
        group.throughput(Throughput::Elements(amps * gates.len() as u64));
        group.bench_with_input(BenchmarkId::new("per_gate", label), gates, |b, gates| {
            b.iter(|| {
                for g in gates {
                    apply_gate(&mut state, g, 1);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", label), gates, |b, gates| {
            b.iter(|| apply_all(&mut state, gates, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply_fusion);
criterion_main!(benches);
