//! Criterion bench behind experiment A1: per-stage vs per-gate compression
//! scheduling and the chunk-size sweep, on the compressed CPU engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memqsim_core::{build_store, Granularity, MemQSimConfig};
use mq_circuit::library;
use mq_compress::CodecSpec;

fn run(n: u32, chunk_bits: u32, granularity: Granularity) {
    let cfg = MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-10 },
        workers: 1,
        ..Default::default()
    };
    let circuit = library::qft(n);
    let store = build_store(n, &cfg).expect("store construction failed");
    memqsim_core::engine::cpu::run(&store, &circuit, &cfg, granularity).expect("run failed");
}

fn bench_granularity(c: &mut Criterion) {
    let n = 12u32;
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    group.bench_function("per_stage", |b| b.iter(|| run(n, 8, Granularity::Staged)));
    group.bench_function("per_gate", |b| b.iter(|| run(n, 8, Granularity::PerGate)));
    group.finish();

    let mut group = c.benchmark_group("chunk_size");
    group.sample_size(10);
    for chunk_bits in [4u32, 6, 8, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{chunk_bits}")),
            &chunk_bits,
            |b, &cb| b.iter(|| run(n, cb, Granularity::Staged)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
