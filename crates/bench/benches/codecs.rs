//! Criterion bench behind experiment A3: codec compress/decompress
//! throughput on a realistic mid-circuit state vector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq_bench::workloads::state_planes;
use mq_circuit::library;
use mq_compress::CodecSpec;

fn bench_codecs(c: &mut Criterion) {
    let data = state_planes(&library::qft(14));
    let bytes = (data.len() * 8) as u64;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for spec in CodecSpec::sweep_set() {
        let codec = spec.build();
        group.bench_with_input(BenchmarkId::from_parameter(spec), &(), |b, _| {
            b.iter(|| codec.compress(&data))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for spec in CodecSpec::sweep_set() {
        let codec = spec.build();
        let compressed = codec.compress(&data);
        let mut out = vec![0.0f64; data.len()];
        group.bench_with_input(BenchmarkId::from_parameter(spec), &(), |b, _| {
            b.iter(|| codec.decompress(&compressed, &mut out).expect("round trip"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
