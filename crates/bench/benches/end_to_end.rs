//! End-to-end backend comparison bench: dense vs compressed vs hybrid on
//! representative workloads (the wall-clock view of experiment F1/C3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memqsim_core::{Backend, CompressedCpuBackend, DenseCpuBackend, HybridBackend, MemQSimConfig};
use mq_circuit::{library, Circuit};
use mq_compress::CodecSpec;
use mq_device::DeviceSpec;

fn cfg() -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits: 8,
        max_high_qubits: 2,
        codec: CodecSpec::Sz { eb: 1e-10 },
        workers: 1,
        ..Default::default()
    }
}

fn bench_backends(c: &mut Criterion) {
    let circuits: Vec<Circuit> = vec![library::ghz(12), library::qft(12)];
    let dense = DenseCpuBackend::default();
    let compressed = CompressedCpuBackend::new(cfg());
    let hybrid = HybridBackend::new(cfg(), DeviceSpec::tiny_test(1 << 16));

    for circuit in &circuits {
        let mut group = c.benchmark_group(format!("end_to_end/{}", circuit.name()));
        group.sample_size(10);
        let backends: Vec<(&str, &dyn Backend)> = vec![
            ("dense", &dense),
            ("compressed", &compressed),
            ("hybrid", &hybrid),
        ];
        for (label, backend) in backends {
            group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
                b.iter(|| backend.run(circuit).expect("backend run failed"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
