//! Criterion bench for the gate kernels shared by the dense backend, the
//! chunked engines and the simulated device.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq_circuit::Gate;
use mq_num::complex::c64;
use mq_num::Complex64;
use mq_statevec::apply::apply_gate;

fn buffer(n: u32) -> Vec<Complex64> {
    (0..1usize << n)
        .map(|i| c64((i as f64 * 1e-4).sin(), (i as f64 * 1e-4).cos()))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let n = 18u32;
    let mut state = buffer(n);
    let amps = state.len() as u64;

    let gates: Vec<(&str, Gate)> = vec![
        ("h_low", Gate::H(0)),
        ("h_high", Gate::H(n - 1)),
        ("rz_diag", Gate::Rz(5, 0.3)),
        ("cx", Gate::Cx(2, n - 2)),
        ("cz_diag", Gate::Cz(3, n - 3)),
        ("swap", Gate::Swap(1, n - 1)),
        ("ccx", Gate::ccx(0, 1, n - 1)),
        ("rzz_diag", Gate::Rzz(4, n - 4, 0.7)),
    ];

    let mut group = c.benchmark_group("gate_kernels_2^18");
    group.throughput(Throughput::Elements(amps));
    group.sample_size(20);
    for (label, gate) in gates {
        group.bench_with_input(BenchmarkId::from_parameter(label), &gate, |b, gate| {
            b.iter(|| apply_gate(&mut state, gate, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
