//! Criterion bench behind Table 1: wall-clock cost of the three transfer
//! strategies at a test-friendly size (the `table1` binary runs the full
//! 20/25-qubit reproduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_device::{run_transfer_experiment, Device, DeviceSpec, TransferStrategy};

fn bench_transfer(c: &mut Criterion) {
    let device = Device::new(DeviceSpec::pcie_gen3());
    let mut group = c.benchmark_group("transfer_strategies");
    group.sample_size(10);
    let n_qubits = 16u32;
    let piece = 1usize << 14;
    for strategy in TransferStrategy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    run_transfer_experiment(&device, n_qubits, piece, strategy)
                        .expect("transfer failed")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
