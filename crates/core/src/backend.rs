//! The modular backend interface — the paper's Figure 1.
//!
//! MEMQSIM's pitch is that its compressed data management is "independent of
//! quantum algorithm composition and simulation computational tasks" and
//! pluggable under different simulator backends. This module is that seam:
//! one [`Backend`] trait, three interchangeable implementations (dense CPU,
//! compressed CPU, hybrid CPU+device), one result shape.

use crate::config::MemQSimConfig;
use crate::engine::{cpu, hybrid, EngineError, Granularity};
use crate::store::build_store;
use mq_circuit::Circuit;
use mq_device::{Device, DeviceSpec};
use mq_num::Complex64;
use mq_telemetry::{Role, RunTelemetry, Telemetry};
use std::time::Duration;

/// Result of running a circuit on any backend.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Final state amplitudes (dense; callers keep registers small enough).
    pub amplitudes: Vec<Complex64>,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Peak bytes the *state representation* occupied (dense bytes, or the
    /// store's compressed peak), excluding transient working buffers.
    pub peak_state_bytes: usize,
    /// Peak transient working bytes (staging/group buffers).
    pub peak_working_bytes: usize,
    /// Modeled device busy time (zero for CPU-only backends).
    pub modeled_device: Duration,
    /// Backend-specific detail line for reports.
    pub detail: String,
    /// Per-run span/counter record (every backend produces one).
    pub telemetry: RunTelemetry,
}

impl BackendRun {
    /// Total peak footprint.
    pub fn peak_total_bytes(&self) -> usize {
        self.peak_state_bytes + self.peak_working_bytes
    }
}

/// A pluggable simulation backend.
pub trait Backend {
    /// Display name.
    fn name(&self) -> String;
    /// Runs `circuit` from `|0...0>`.
    fn run(&self, circuit: &Circuit) -> Result<BackendRun, EngineError>;
}

/// The dense CPU baseline (SV-Sim-style).
#[derive(Debug, Clone, Copy)]
pub struct DenseCpuBackend {
    /// Kernel worker threads.
    pub workers: usize,
}

impl Default for DenseCpuBackend {
    fn default() -> Self {
        DenseCpuBackend { workers: 1 }
    }
}

impl Backend for DenseCpuBackend {
    fn name(&self) -> String {
        "dense-cpu".to_string()
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, EngineError> {
        // The dense baseline is a single CPU-apply role on the timeline.
        let telemetry = Telemetry::new();
        let state = telemetry.timed(Role::CpuApply, || {
            mq_statevec::run_circuit(
                circuit,
                &mq_statevec::CpuConfig {
                    workers: self.workers,
                    fuse: false,
                },
            )
        });
        let record = telemetry.finish();
        let bytes = state.dim() * 16;
        Ok(BackendRun {
            amplitudes: state.amplitudes().to_vec(),
            wall: record.wall,
            peak_state_bytes: bytes,
            peak_working_bytes: 0,
            modeled_device: Duration::ZERO,
            detail: format!("dense, {} amplitudes", state.dim()),
            telemetry: record,
        })
    }
}

/// The compressed CPU backend (MEMQSIM without a device).
#[derive(Debug, Clone, Copy)]
pub struct CompressedCpuBackend {
    /// Engine configuration.
    pub cfg: MemQSimConfig,
    /// Compression granularity (staged vs per-gate baseline).
    pub granularity: Granularity,
}

impl CompressedCpuBackend {
    /// Staged-granularity backend with the given config.
    pub fn new(cfg: MemQSimConfig) -> Self {
        CompressedCpuBackend {
            cfg,
            granularity: Granularity::Staged,
        }
    }
}

impl Backend for CompressedCpuBackend {
    fn name(&self) -> String {
        format!(
            "compressed-cpu[{}, 2^{} chunks{}]",
            self.cfg.codec,
            self.cfg.chunk_bits,
            if self.granularity == Granularity::PerGate {
                ", per-gate"
            } else {
                ""
            }
        )
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, EngineError> {
        let store = build_store(circuit.n_qubits(), &self.cfg)?;
        let report = cpu::run(&store, circuit, &self.cfg, self.granularity)?;
        let amplitudes = store.to_dense()?;
        Ok(BackendRun {
            amplitudes,
            wall: report.wall,
            // Residency-cache bytes are part of the state footprint: with
            // `cache_bytes = 0` this equals the compressed peak.
            peak_state_bytes: report.peak_resident_bytes,
            peak_working_bytes: report.peak_buffer_bytes,
            modeled_device: Duration::ZERO,
            detail: format!(
                "{} stages, {} chunk visits, ratio {:.1}x",
                report.stages,
                report.chunk_visits,
                store.current_ratio()
            ),
            telemetry: report.telemetry,
        })
    }
}

/// The full MEMQSIM hybrid backend (CPU store + device kernels).
#[derive(Debug, Clone)]
pub struct HybridBackend {
    /// Engine configuration.
    pub cfg: MemQSimConfig,
    /// Device description (a device is created per run).
    pub device_spec: DeviceSpec,
    /// Overlap the pipeline roles.
    pub pipelined: bool,
}

impl HybridBackend {
    /// Pipelined hybrid backend with the given config and device.
    pub fn new(cfg: MemQSimConfig, device_spec: DeviceSpec) -> Self {
        HybridBackend {
            cfg,
            device_spec,
            pipelined: true,
        }
    }
}

impl Backend for HybridBackend {
    fn name(&self) -> String {
        format!(
            "hybrid[{}, 2^{} chunks, {} buffers{}]",
            self.cfg.codec,
            self.cfg.chunk_bits,
            self.cfg.pipeline_buffers,
            if self.pipelined { "" } else { ", serial" }
        )
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, EngineError> {
        let store = build_store(circuit.n_qubits(), &self.cfg)?;
        let device = Device::new(self.device_spec.clone());
        let report = hybrid::run(&store, circuit, &self.cfg, &device, self.pipelined)?;
        let amplitudes = store.to_dense()?;
        Ok(BackendRun {
            amplitudes,
            wall: report.wall,
            peak_state_bytes: report.peak_resident_bytes,
            // Pinned staging plus the CPU share's group buffers.
            peak_working_bytes: report.peak_working_bytes(),
            modeled_device: report.device.modeled,
            detail: format!(
                "{} stages, {} device + {} cpu groups, modeled device {:?}",
                report.stages, report.groups_device, report.groups_cpu, report.device.modeled
            ),
            telemetry: report.telemetry,
        })
    }
}

/// Runs the same circuit on every backend and checks mutual agreement —
/// the Figure 1 modularity demonstration. Returns the per-backend runs, or
/// [`EngineError::BackendDivergence`] naming the first backend whose result
/// differs from the reference (the first backend) by more than `tol`.
pub fn run_on_all(
    circuit: &Circuit,
    backends: &[&dyn Backend],
    tol: f64,
) -> Result<Vec<BackendRun>, EngineError> {
    let runs: Result<Vec<BackendRun>, EngineError> =
        backends.iter().map(|b| b.run(circuit)).collect();
    let runs = runs?;
    if let Some((first, rest)) = runs.split_first() {
        for (i, r) in rest.iter().enumerate() {
            let err = mq_num::metrics::max_amp_err(&first.amplitudes, &r.amplitudes);
            if err > tol {
                return Err(EngineError::BackendDivergence {
                    first: backends[0].name(),
                    other: backends[i + 1].name(),
                    max_err: err,
                    tol,
                });
            }
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::library;
    use mq_compress::CodecSpec;

    fn small_cfg() -> MemQSimConfig {
        MemQSimConfig {
            cpu_share: 0.25,
            ..crate::testkit::cfg(3, CodecSpec::Fpc)
        }
    }

    #[test]
    fn all_backends_agree_on_the_suite() {
        let dense = DenseCpuBackend::default();
        let compressed = CompressedCpuBackend::new(small_cfg());
        let hybrid = HybridBackend::new(small_cfg(), DeviceSpec::tiny_test(1 << 16));
        for c in library::standard_suite(6) {
            let runs = run_on_all(&c, &[&dense, &compressed, &hybrid], 1e-9).unwrap();
            assert_eq!(runs.len(), 3);
            // Compressed backends must report smaller state footprints for
            // the highly structured circuits (ghz is essentially empty).
            if c.name().starts_with("ghz") {
                assert!(runs[1].peak_state_bytes < runs[0].peak_state_bytes);
            }
        }
    }

    #[test]
    fn backend_names_are_descriptive() {
        assert_eq!(DenseCpuBackend::default().name(), "dense-cpu");
        let n = CompressedCpuBackend::new(small_cfg()).name();
        assert!(n.contains("fpc"), "{n}");
        let h = HybridBackend::new(small_cfg(), DeviceSpec::tiny_test(64)).name();
        assert!(h.contains("hybrid"), "{h}");
    }

    #[test]
    fn per_gate_backend_also_agrees() {
        let staged = CompressedCpuBackend::new(small_cfg());
        let per_gate = CompressedCpuBackend {
            cfg: small_cfg(),
            granularity: Granularity::PerGate,
        };
        let c = library::qft(6);
        run_on_all(&c, &[&staged, &per_gate], 1e-10).unwrap();
        assert!(per_gate.name().contains("per-gate"));
    }

    #[test]
    fn hybrid_oom_propagates() {
        let hybrid = HybridBackend::new(small_cfg(), DeviceSpec::tiny_test(4));
        let c = library::ghz(6);
        assert!(matches!(
            hybrid.run(&c),
            Err(EngineError::Device(
                mq_device::DeviceError::OutOfMemory { .. }
            ))
        ));
    }

    #[test]
    fn backend_run_totals() {
        let r = DenseCpuBackend::default().run(&library::ghz(5)).unwrap();
        assert_eq!(r.peak_total_bytes(), 32 * 16);
        assert_eq!(r.modeled_device, Duration::ZERO);
        // Every backend carries a balanced telemetry record.
        assert!(r.telemetry.balanced());
        assert_eq!(r.wall, r.telemetry.wall);
        assert!(r.telemetry.busy(Role::CpuApply) > Duration::ZERO);
    }

    #[test]
    fn divergence_surfaces_as_typed_error() {
        // A very lossy compressed backend against the exact dense baseline,
        // checked at an impossible tolerance: run_on_all must return the
        // typed divergence error instead of panicking.
        let dense = DenseCpuBackend::default();
        let lossy = CompressedCpuBackend::new(MemQSimConfig {
            codec: CodecSpec::Sz { eb: 1e-2 },
            ..small_cfg()
        });
        let c = library::qft(6);
        match run_on_all(&c, &[&dense, &lossy], 1e-15) {
            Err(EngineError::BackendDivergence {
                first,
                other,
                max_err,
                tol,
            }) => {
                assert_eq!(first, "dense-cpu");
                assert!(other.contains("compressed-cpu"), "{other}");
                assert!(max_err > tol);
                assert_eq!(tol, 1e-15);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
