//! The MEMQSIM execution engines.
//!
//! One chunk-streaming core, pluggable compute paths:
//!
//! * [`exec`] — the shared driver ([`exec::run_with_executor`]): config and
//!   geometry validation, plan building, telemetry/cache attachment,
//!   residency-first group ordering, chunk-visit accounting, flush and
//!   [`RunReport`] assembly — written once, for every executor.
//! * [`cpu`] — [`cpu::CpuWorkerExecutor`]: decompress → apply stage →
//!   recompress, chunk groups processed by "idle core" workers. Also hosts
//!   the per-gate granularity baseline (Wu et al.\[6\]).
//! * [`hybrid`] — [`hybrid::DevicePipelineExecutor`]: the full paper
//!   pipeline (Fig. 2): CPU decompression, pinned staging buffers, H2D,
//!   device gate kernels, D2H, CPU recompression, overlapped across
//!   in-flight buffer slots.
//! * [`report`] — the unified [`RunReport`] every run produces.

pub mod cpu;
pub mod exec;
pub mod hybrid;
pub mod report;

pub use exec::{
    build_plan, run_with_executor, stage_error_bounds, ChunkExecutor, ExecContext, ExecutorStats,
    GroupWork, SerialAdapter, StageBatchExecutor, StageWork,
};
pub use report::RunReport;

use mq_compress::CodecError;
use mq_device::DeviceError;
use std::fmt;

/// Errors surfaced by the engines.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A chunk failed to decompress (corruption or codec bug).
    Codec(CodecError),
    /// The simulated device failed (OOM, stale buffer, ...).
    Device(DeviceError),
    /// Invalid configuration.
    Config(String),
    /// The store's register width disagrees with the circuit's.
    WidthMismatch {
        /// Qubits the store was built for.
        store_qubits: u32,
        /// Qubits the circuit addresses.
        circuit_qubits: u32,
    },
    /// The store's chunk geometry disagrees with the configuration's
    /// effective chunk size (construct the store with the same config).
    ChunkMismatch {
        /// log2 amplitudes per chunk in the store.
        store_chunk_bits: u32,
        /// log2 amplitudes per chunk the config requires.
        config_chunk_bits: u32,
    },
    /// Two backends disagreed beyond tolerance on the same circuit.
    BackendDivergence {
        /// Name of the reference backend (the first in the comparison).
        first: String,
        /// Name of the diverging backend.
        other: String,
        /// Largest amplitude error observed between the two.
        max_err: f64,
        /// Tolerance the comparison was run with.
        tol: f64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::Device(e) => write!(f, "device error: {e}"),
            EngineError::Config(m) => write!(f, "configuration error: {m}"),
            EngineError::WidthMismatch {
                store_qubits,
                circuit_qubits,
            } => write!(
                f,
                "width mismatch: the store holds {store_qubits} qubits but the circuit addresses {circuit_qubits}"
            ),
            EngineError::ChunkMismatch {
                store_chunk_bits,
                config_chunk_bits,
            } => write!(
                f,
                "chunk geometry mismatch: the store uses 2^{store_chunk_bits}-amplitude chunks but the configuration requires 2^{config_chunk_bits}"
            ),
            EngineError::BackendDivergence {
                first,
                other,
                max_err,
                tol,
            } => write!(
                f,
                "backend '{other}' diverges from '{first}': max amplitude error {max_err:.3e} exceeds tolerance {tol:.3e}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        EngineError::Device(e)
    }
}

/// Attaches a telemetry handle to a store for the lifetime of the guard,
/// so engine early returns can't leave a stale handle behind.
pub(crate) struct StoreTelemetryGuard<'a>(pub(crate) &'a dyn crate::store::ChunkStore);

impl Drop for StoreTelemetryGuard<'_> {
    fn drop(&mut self) {
        self.0.detach_telemetry();
    }
}

/// Compression scheduling granularity — the paper's design challenge (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One decompress→recompress round per *stage* (MEMQSIM).
    Staged,
    /// One round per *gate* (the Wu et al.\[6\] baseline).
    PerGate,
}
