//! The MEMQSIM execution engines.
//!
//! * [`cpu`] — the compressed CPU engine: decompress → apply stage →
//!   recompress, chunk groups processed by "idle core" workers. Also hosts
//!   the per-gate granularity baseline (Wu et al.\[6\]).
//! * [`hybrid`] — the full paper pipeline (Fig. 2): CPU decompression,
//!   pinned staging buffers, H2D, device gate kernels, D2H, CPU
//!   recompression, overlapped across in-flight buffer slots.

pub mod cpu;
pub mod hybrid;

use mq_compress::CodecError;
use mq_device::DeviceError;
use std::fmt;

/// Errors surfaced by the engines.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A chunk failed to decompress (corruption or codec bug).
    Codec(CodecError),
    /// The simulated device failed (OOM, stale buffer, ...).
    Device(DeviceError),
    /// Invalid configuration.
    Config(String),
    /// Two backends disagreed beyond tolerance on the same circuit.
    BackendDivergence {
        /// Name of the reference backend (the first in the comparison).
        first: String,
        /// Name of the diverging backend.
        other: String,
        /// Largest amplitude error observed between the two.
        max_err: f64,
        /// Tolerance the comparison was run with.
        tol: f64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::Device(e) => write!(f, "device error: {e}"),
            EngineError::Config(m) => write!(f, "configuration error: {m}"),
            EngineError::BackendDivergence {
                first,
                other,
                max_err,
                tol,
            } => write!(
                f,
                "backend '{other}' diverges from '{first}': max amplitude error {max_err:.3e} exceeds tolerance {tol:.3e}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        EngineError::Device(e)
    }
}

/// Attaches a telemetry handle to a store for the lifetime of the guard,
/// so engine early returns can't leave a stale handle behind.
pub(crate) struct StoreTelemetryGuard<'a>(pub(crate) &'a crate::store::CompressedStateVector);

impl Drop for StoreTelemetryGuard<'_> {
    fn drop(&mut self) {
        self.0.detach_telemetry();
    }
}

/// Device-side counterpart of [`StoreTelemetryGuard`].
pub(crate) struct DeviceTelemetryGuard<'a>(pub(crate) &'a mq_device::Device);

impl Drop for DeviceTelemetryGuard<'_> {
    fn drop(&mut self) {
        self.0.detach_telemetry();
    }
}

/// Compression scheduling granularity — the paper's design challenge (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One decompress→recompress round per *stage* (MEMQSIM).
    Staged,
    /// One round per *gate* (the Wu et al.\[6\] baseline).
    PerGate,
}
