//! The unified execution core: one chunk-streaming driver, pluggable
//! executors.
//!
//! Every MEMQSIM engine runs the same skeleton — validate the configuration
//! and store geometry, build the offline plan, attach telemetry and the
//! residency cache, then stream every stage's chunk groups (residency-first
//! when the cache is on) through some compute path, flush, and assemble a
//! report. [`run_with_executor`] owns that skeleton once; the compute path
//! is a [`ChunkExecutor`] driven through a *streaming* stage protocol —
//! [`begin_stage`](ChunkExecutor::begin_stage), one
//! [`submit`](ChunkExecutor::submit) per chunk group, then
//! [`end_stage`](ChunkExecutor::end_stage) as the stage barrier — so an
//! executor may overlap the decompress → apply → recompress roles of
//! different groups inside a stage:
//!
//! * [`CpuWorkerExecutor`](super::cpu::CpuWorkerExecutor) — "idle core"
//!   workers decompress → apply → recompress each group (paper Fig. 2
//!   step 5), overlapped across a bounded in-flight window when
//!   `cfg.pipeline_depth > 1`;
//! * [`DevicePipelineExecutor`](super::hybrid::DevicePipelineExecutor) —
//!   the three-role producer/device/completer pipeline (Fig. 2 steps 1–6),
//!   a [`StageBatchExecutor`] bridged by [`SerialAdapter`].
//!
//! Batch-shaped compute paths (and test mocks) implement
//! [`StageBatchExecutor`] — the old whole-stage callback — and ride the
//! streaming driver through [`SerialAdapter`], which buffers submissions
//! until the stage barrier. Anything implementing either trait gets config
//! validation, plan building, cache setup, visit accounting, flush and
//! [`RunReport`] assembly for free, which is the seam heterogeneous
//! scheduling (routing stages per-executor) will plug into.

use crate::config::{FusionLevel, LayoutPolicy, MemQSimConfig, ShardPolicy};
use crate::engine::report::RunReport;
use crate::engine::{EngineError, Granularity, StoreTelemetryGuard};
use crate::planner::chunk_groups;
use crate::specialize::{specialize, GroupContext, Specialized};
use crate::store::ChunkStore;
use mq_circuit::partition::{
    partition, partition_per_gate, PartitionConfig, Plan, RemapTransition, Stage,
};
use mq_circuit::Circuit;
use mq_device::StreamStats;
use mq_num::parallel::par_for;
use mq_num::Complex64;
use mq_telemetry::{Counter, Role, StageErrorSpend, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Everything the driver hands an executor: the store being simulated, the
/// offline plan, the active configuration and the run's telemetry handle.
///
/// All fields are owned/shared so an executor can clone the context (or
/// individual fields) into worker threads that outlive any single trait
/// call — the streaming protocol keeps a pipeline running across
/// `submit`/`end_stage` boundaries.
#[derive(Clone)]
pub struct ExecContext {
    /// The chunked state the run mutates (any [`ChunkStore`] stack).
    pub store: Arc<dyn ChunkStore>,
    /// The offline plan (stages, geometry) the driver streams.
    pub plan: Arc<Plan>,
    /// The active engine configuration.
    pub cfg: MemQSimConfig,
    /// The run's shared telemetry handle (already attached to the store).
    pub telemetry: Telemetry,
}

impl ExecContext {
    /// Amplitudes per chunk.
    pub fn chunk_amps(&self) -> usize {
        self.store.chunk_amps()
    }

    /// The plan stage at `index` (the index every streaming call carries).
    pub fn stage(&self, index: u32) -> &Stage {
        &self.plan.stages[index as usize]
    }

    /// The per-amplitude error allowance stage `index` may spend under the
    /// run's fidelity budget (`None` without one). Executors carrying a
    /// private codec instance apply it via
    /// [`Codec::set_dynamic_bound`](mq_compress::Codec::set_dynamic_bound);
    /// the driver feeds the same value to the store's codec.
    pub fn stage_error_allowance(&self, index: u32) -> Option<f64> {
        stage_error_bounds(&self.cfg, self.plan.n_qubits, self.plan.stages.len())
            .map(|bounds| bounds[index as usize])
    }
}

/// One chunk group of one stage, as handed to
/// [`ChunkExecutor::submit`]. Groups within a stage touch disjoint chunk
/// sets, so an executor may process in-flight groups in any order; the
/// next stage begins only after [`ChunkExecutor::end_stage`].
#[derive(Debug, Clone)]
pub struct GroupWork {
    /// Stage index within the plan (telemetry stage id).
    pub stage: u32,
    /// The group's position in the driver's visit order for this stage.
    pub seq: usize,
    /// The co-resident chunk indices of this group.
    pub chunks: Vec<usize>,
    /// The device index this group is sharded to (always 0 for
    /// single-device configurations; see
    /// [`ShardPolicy`]).
    pub shard: usize,
}

/// One stage's whole work order, as handed to
/// [`StageBatchExecutor::execute_stage`]: the stage, its index, and its
/// chunk groups in the order the driver wants them visited
/// (cache-resident groups first).
pub struct StageWork<'a> {
    /// Stage index within the plan (telemetry stage id).
    pub index: u32,
    /// The stage being executed.
    pub stage: &'a Stage,
    /// Ordered chunk groups; each inner vector is one co-resident group.
    pub groups: Vec<Vec<usize>>,
    /// Per-group device assignment, aligned with `groups` (all zeros for
    /// single-device configurations).
    pub shards: Vec<usize>,
    /// The per-amplitude error allowance this stage may spend under the
    /// run's fidelity budget (`None` without one). Executors with a
    /// private codec instance forward it to
    /// [`Codec::set_dynamic_bound`](mq_compress::Codec::set_dynamic_bound).
    pub error_allowance: Option<f64>,
}

/// Executor-side accounting folded into the final [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Gates applied (after specialization).
    pub gates_applied: usize,
    /// Whole-buffer scalar multiplications applied.
    pub scalars_applied: usize,
    /// Groups routed through a device.
    pub groups_device: usize,
    /// Groups handled by CPU workers.
    pub groups_cpu: usize,
    /// Peak transient per-worker group-buffer bytes.
    pub peak_buffer_bytes: usize,
    /// Host pinned staging bytes held for the run.
    pub pinned_bytes: usize,
    /// Device working-buffer bytes held for the run.
    pub device_buffer_bytes: usize,
    /// Device-side stream accounting. For an N-device fleet this is the
    /// aggregate: `modeled` is the makespan (max over devices), every
    /// other field sums. Zero when no device was involved.
    pub device: StreamStats,
    /// Per-device stream accounting, one entry per fleet device (empty
    /// when no device was involved).
    pub per_device: Vec<StreamStats>,
}

/// A pluggable compute path for the chunk-streaming driver.
///
/// Lifecycle: [`prepare`](Self::prepare) once, then per plan stage
/// [`begin_stage`](Self::begin_stage) → one [`submit`](Self::submit) per
/// chunk group → [`end_stage`](Self::end_stage), then
/// [`finish`](Self::finish) exactly once, *even if a stage failed*, so
/// executors can drain pipelines and release buffers unconditionally.
///
/// `end_stage` is the stage barrier: every submitted group must be fully
/// applied and stored before it returns (a stage may read chunks the
/// previous stage wrote). Between `submit` calls an executor is free to
/// keep groups in flight — that window is what lets a pipelined
/// implementation overlap decompress, apply and recompress of different
/// groups. When a `submit` fails, the driver skips the stage's `end_stage`
/// and goes straight to `finish`, so `finish` must tolerate (and drain) an
/// un-ended stage.
pub trait ChunkExecutor {
    /// Display name, recorded in the report.
    fn name(&self) -> String;

    /// Allocates run-scoped resources (buffers, streams, threads).
    fn prepare(&mut self, _ctx: &ExecContext) -> Result<(), EngineError> {
        Ok(())
    }

    /// Opens stage `index`, which will receive `n_groups` submissions.
    fn begin_stage(
        &mut self,
        _ctx: &ExecContext,
        _index: u32,
        _n_groups: usize,
    ) -> Result<(), EngineError> {
        Ok(())
    }

    /// Accepts one chunk group of the open stage. May block while the
    /// executor's in-flight window is full (backpressure), and may return
    /// an error detected on any *previously* submitted group.
    fn submit(&mut self, ctx: &ExecContext, group: GroupWork) -> Result<(), EngineError>;

    /// Stage barrier: drains every in-flight group of stage `index`,
    /// surfacing the first error any of them hit.
    fn end_stage(&mut self, ctx: &ExecContext, index: u32) -> Result<(), EngineError>;

    /// Executes a layout remap transition. Called only between stages (no
    /// stage open), so the store is coherent. Chunk identities may change
    /// across the call — executors holding chunk-indexed state must
    /// invalidate or re-key it. Returns the chunk visits performed; the
    /// default runs the permutation directly against the store.
    fn remap(
        &mut self,
        ctx: &ExecContext,
        transition: &RemapTransition,
    ) -> Result<usize, EngineError> {
        apply_remap_on_store(ctx, transition)
    }

    /// Drains and releases resources, returning the executor's accounting.
    fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError>;
}

/// A batch-shaped compute path: one callback per whole stage.
///
/// This is the pre-streaming `ChunkExecutor` shape, kept for executors
/// (and test mocks) that process a stage as a unit — wrap one in
/// [`SerialAdapter`] to drive it through the streaming core.
pub trait StageBatchExecutor {
    /// Display name, recorded in the report.
    fn name(&self) -> String;

    /// Allocates run-scoped resources (buffers, streams, threads).
    fn prepare(&mut self, _ctx: &ExecContext) -> Result<(), EngineError> {
        Ok(())
    }

    /// Processes every chunk group of one stage, in the given order.
    fn execute_stage(&mut self, ctx: &ExecContext, work: &StageWork<'_>)
        -> Result<(), EngineError>;

    /// Executes a layout remap transition between stages (see
    /// [`ChunkExecutor::remap`]). Returns the chunk visits performed.
    fn remap(
        &mut self,
        ctx: &ExecContext,
        transition: &RemapTransition,
    ) -> Result<usize, EngineError> {
        apply_remap_on_store(ctx, transition)
    }

    /// Drains and releases resources, returning the executor's accounting.
    fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError>;
}

/// Bridges a [`StageBatchExecutor`] onto the streaming [`ChunkExecutor`]
/// protocol: submissions buffer until the stage barrier, where the whole
/// stage is delivered as one [`StageWork`]. The migration path for batch
/// executors — semantics are exactly the pre-streaming driver loop.
pub struct SerialAdapter<E> {
    inner: E,
    pending: Vec<Vec<usize>>,
    pending_shards: Vec<usize>,
}

impl<E> SerialAdapter<E> {
    /// Wraps `inner` for the streaming driver.
    pub fn new(inner: E) -> SerialAdapter<E> {
        SerialAdapter {
            inner,
            pending: Vec::new(),
            pending_shards: Vec::new(),
        }
    }

    /// The wrapped executor.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: StageBatchExecutor> ChunkExecutor for SerialAdapter<E> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn prepare(&mut self, ctx: &ExecContext) -> Result<(), EngineError> {
        self.inner.prepare(ctx)
    }

    fn begin_stage(
        &mut self,
        _ctx: &ExecContext,
        _index: u32,
        n_groups: usize,
    ) -> Result<(), EngineError> {
        self.pending.clear();
        self.pending.reserve(n_groups);
        self.pending_shards.clear();
        self.pending_shards.reserve(n_groups);
        Ok(())
    }

    fn submit(&mut self, _ctx: &ExecContext, group: GroupWork) -> Result<(), EngineError> {
        self.pending.push(group.chunks);
        self.pending_shards.push(group.shard);
        Ok(())
    }

    fn end_stage(&mut self, ctx: &ExecContext, index: u32) -> Result<(), EngineError> {
        let work = StageWork {
            index,
            stage: ctx.stage(index),
            groups: std::mem::take(&mut self.pending),
            shards: std::mem::take(&mut self.pending_shards),
            error_allowance: ctx.stage_error_allowance(index),
        };
        self.inner.execute_stage(ctx, &work)
    }

    fn remap(
        &mut self,
        ctx: &ExecContext,
        transition: &RemapTransition,
    ) -> Result<usize, EngineError> {
        self.inner.remap(ctx, transition)
    }

    fn finish(&mut self, ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
        self.pending.clear();
        self.pending_shards.clear();
        self.inner.finish(ctx)
    }
}

/// Builds the plan for `circuit` under `cfg` at the given granularity,
/// optionally running the commutation-aware reorder pass first and the
/// per-stage fusion pass (`cfg.fusion`) last.
pub fn build_plan(circuit: &Circuit, cfg: &MemQSimConfig, granularity: Granularity) -> Plan {
    build_plan_counted(circuit, cfg, granularity).0
}

/// [`build_plan`] that also reports how many gates per-stage fusion
/// eliminated (0 when `cfg.fusion` is [`FusionLevel::Off`]).
pub(crate) fn build_plan_counted(
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
) -> (Plan, usize) {
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    let reordered;
    let circuit = if cfg.reorder {
        reordered = mq_circuit::reorder::reorder_for_locality(circuit, chunk_bits);
        &reordered
    } else {
        circuit
    };
    let mut plan = match granularity {
        Granularity::Staged => {
            let pcfg = PartitionConfig {
                chunk_bits,
                max_high_qubits: cfg.max_high_qubits,
            };
            match cfg.layout_policy {
                LayoutPolicy::Fixed => partition(circuit, &pcfg),
                // Greedy falls back to the fixed plan internally whenever
                // remapping would not strictly reduce chunk visits.
                LayoutPolicy::Greedy => mq_circuit::layout::plan_greedy(circuit, &pcfg),
            }
        }
        // Per-gate plans stay fixed-layout: each gate is its own stage, so
        // there is no lookahead window for a remap to pay for itself.
        Granularity::PerGate => partition_per_gate(circuit, chunk_bits),
    };
    let gates_fused = fuse_plan_stages(&mut plan, cfg.fusion, circuit.n_qubits());
    (plan, gates_fused)
}

/// Fuses each stage's gate list in place, never crossing a stage barrier.
/// Gates touching qubits at or above `chunk_bits` (the stage's cross-chunk
/// pairing set lives there) pass through unfused, so the stage's
/// `high_qubits` and the specializer's index mapping stay valid. Returns
/// the number of gates eliminated.
fn fuse_plan_stages(plan: &mut Plan, level: FusionLevel, n_qubits: u32) -> usize {
    if level == FusionLevel::Off {
        return 0;
    }
    let mut fused_away = 0usize;
    for stage in &mut plan.stages {
        let mut staged = Circuit::new(n_qubits);
        for g in &stage.gates {
            staged.push(g.clone());
        }
        let fused = match level {
            FusionLevel::Runs1q => mq_circuit::fusion::fuse_1q_runs_below(&staged, plan.chunk_bits),
            FusionLevel::Blocks2q => mq_circuit::fusion::fuse_to_2q_below(&staged, plan.chunk_bits),
            FusionLevel::Off => unreachable!(),
        };
        fused_away += stage.gates.len().saturating_sub(fused.len());
        stage.gates = fused.gates().to_vec();
    }
    fused_away
}

/// Assigns one stage's groups to devices under `policy`. `load` is the
/// per-device chunk count carried across stages (only `LoadBalanced` reads
/// it; every policy updates it so telemetry can report imbalance).
///
/// Groups within a stage touch disjoint chunk sets, so any assignment is
/// bit-exact; policies only trade modeled makespan against arena locality.
fn assign_shards(
    policy: ShardPolicy,
    n_devices: usize,
    groups: &[Vec<usize>],
    load: &mut [usize],
) -> Vec<usize> {
    if n_devices <= 1 || groups.is_empty() {
        for (i, g) in groups.iter().enumerate() {
            load[i % n_devices.max(1)] += g.len();
        }
        return vec![0; groups.len()];
    }
    let shards: Vec<usize> = match policy {
        ShardPolicy::ChunkAffinity => {
            // Rank groups by base chunk, then split the ranking into N
            // contiguous ranges: device d owns the d-th range of the chunk
            // space, so the same chunks land on the same device's arena in
            // every stage (the stage's group *bases* shift with its high
            // qubits, but ranking keeps the ranges balanced regardless).
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by_key(|&i| groups[i].first().copied().unwrap_or(0));
            let mut shards = vec![0usize; groups.len()];
            for (rank, &gi) in order.iter().enumerate() {
                shards[gi] = rank * n_devices / groups.len();
            }
            shards
        }
        ShardPolicy::RoundRobin => (0..groups.len()).map(|seq| seq % n_devices).collect(),
        ShardPolicy::LoadBalanced => groups
            .iter()
            .map(|g| {
                let d = (0..n_devices).min_by_key(|&d| load[d]).unwrap_or(0);
                load[d] += g.len();
                d
            })
            .collect(),
    };
    if policy != ShardPolicy::LoadBalanced {
        for (gi, &d) in shards.iter().enumerate() {
            load[d] += groups[gi].len();
        }
    }
    shards
}

/// Executes one remap transition directly against the store, returning the
/// chunk visits it performed. The permutation classes mirror
/// [`RemapTransition::visit_cost`]:
///
/// * **high-high** — a pure chunk-pair exchange: the store's
///   [`swap_chunks`](ChunkStore::swap_chunks) fast path moves compressed
///   payloads without a decode (zero visits); a refusing tier falls back
///   to a load/load/store/store round trip (two visits per pair);
/// * **high-low** — chunks are paired along the high position's chunk bit,
///   each pair is gathered into one buffer, and the transposition runs as
///   a strided intra-buffer gather fused with the decode pass (two visits
///   per pair, i.e. one full sweep);
/// * **low-low** — a per-chunk intra-chunk bit swap (one visit per chunk).
pub fn apply_remap_on_store(
    ctx: &ExecContext,
    transition: &RemapTransition,
) -> Result<usize, EngineError> {
    let store = &ctx.store;
    let c = store.chunk_bits();
    let chunk_amps = store.chunk_amps();
    let chunk_count = store.chunk_count();
    let workers = ctx.cfg.workers.max(1);
    let mut visits = 0usize;
    for &(a, b) in &transition.swaps {
        let (a, b) = (a.min(b), a.max(b));
        if a >= c {
            let (b1, b2) = (1usize << (a - c), 1usize << (b - c));
            let mut buf_a = Vec::new();
            let mut buf_b = Vec::new();
            for k in 0..chunk_count {
                if k & b1 == 0 || k & b2 != 0 {
                    continue; // visit each pair once, from its (1, 0) side
                }
                let j = k ^ b1 ^ b2;
                if !store.swap_chunks(k, j)? {
                    buf_a.resize(chunk_amps, Complex64::ZERO);
                    buf_b.resize(chunk_amps, Complex64::ZERO);
                    store.load_chunk(k, &mut buf_a)?;
                    store.load_chunk(j, &mut buf_b)?;
                    store.store_chunk(k, &buf_b)?;
                    store.store_chunk(j, &buf_a)?;
                    visits += 2;
                }
            }
        } else if b >= c {
            // Bit `c` of the two-chunk gather buffer is global bit `b`, so
            // the global (a, b) transposition is the buffer-local (a, c).
            let hb = 1usize << (b - c);
            let mut buf = vec![Complex64::ZERO; 2 * chunk_amps];
            for k in 0..chunk_count {
                if k & hb != 0 {
                    continue;
                }
                let j = k | hb;
                store.load_chunk(k, &mut buf[..chunk_amps])?;
                store.load_chunk(j, &mut buf[chunk_amps..])?;
                mq_statevec::apply::swap_index_bits(&mut buf, a, c, workers);
                store.store_chunk(k, &buf[..chunk_amps])?;
                store.store_chunk(j, &buf[chunk_amps..])?;
                visits += 2;
            }
        } else {
            let mut buf = vec![Complex64::ZERO; chunk_amps];
            for k in 0..chunk_count {
                store.load_chunk(k, &mut buf)?;
                mq_statevec::apply::swap_index_bits(&mut buf, a, b, workers);
                store.store_chunk(k, &buf)?;
                visits += 1;
            }
        }
    }
    Ok(visits)
}

/// Runs `circuit` against `store`, streaming every stage's chunk groups
/// through `executor`. This is the one engine driver: `cpu::run` and
/// `hybrid::run` are thin constructors over it.
///
/// Geometry mismatches surface as typed errors
/// ([`EngineError::WidthMismatch`] / [`EngineError::ChunkMismatch`]) rather
/// than panics.
pub fn run_with_executor(
    store: &Arc<dyn ChunkStore>,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
    executor: &mut dyn ChunkExecutor,
) -> Result<RunReport, EngineError> {
    cfg.validate().map_err(EngineError::Config)?;
    if store.n_qubits() != circuit.n_qubits() {
        return Err(EngineError::WidthMismatch {
            store_qubits: store.n_qubits(),
            circuit_qubits: circuit.n_qubits(),
        });
    }
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    if store.chunk_bits() != chunk_bits {
        return Err(EngineError::ChunkMismatch {
            store_chunk_bits: store.chunk_bits(),
            config_chunk_bits: chunk_bits,
        });
    }

    // One telemetry record for the whole run; the store stack's telemetry
    // tier (and any device the executor attaches) feeds counters into it.
    let telemetry = Telemetry::new();
    store.attach_telemetry(telemetry.clone());
    let _store_guard = StoreTelemetryGuard(&**store);
    // The hot-chunk residency cache, when configured, is already part of the
    // store stack (see `store::build_store`); the driver only exploits it by
    // ordering groups residency-first.
    let cache_enabled = cfg.cache_bytes > 0;

    let (plan, gates_fused) = build_plan_counted(circuit, cfg, granularity);
    if gates_fused > 0 {
        telemetry.add(Counter::GatesFused, gates_fused as u64);
    }
    let plan = Arc::new(plan);
    let ctx = ExecContext {
        store: Arc::clone(store),
        plan: Arc::clone(&plan),
        cfg: *cfg,
        telemetry: telemetry.clone(),
    };

    // Run-level fidelity budget: convert the end-state target into a total
    // per-amplitude error allowance and split it across stages. Per-stage
    // spend is attributed by diffing the store's lossy-encode counter
    // around each stage: a stage that only picked lossless backends spends
    // nothing even though it had an allowance.
    let stage_bounds = stage_error_bounds(cfg, circuit.n_qubits(), plan.stages.len());
    let mut error_spend: Vec<StageErrorSpend> = Vec::new();
    let mut lossy_mark = store.counters().lossy_encodes;

    let n_devices = cfg.devices.max(1);
    let mut device_load = vec![0usize; n_devices];
    let mut chunk_visits = 0usize;
    let mut run_err: Option<EngineError> = None;
    match executor.prepare(&ctx) {
        Err(e) => run_err = Some(e),
        Ok(()) => {
            'stages: for (si, stage) in plan.stages.iter().enumerate() {
                if let Some(bounds) = &stage_bounds {
                    store.set_error_allowance(Some(bounds[si]));
                }
                if let Some(transition) = &stage.transition {
                    // Remap before the stage: chunk identities change, so
                    // per-device load tracking restarts (ChunkAffinity
                    // re-ranks per stage; LoadBalanced re-seeds).
                    match executor.remap(&ctx, transition) {
                        Ok(v) => {
                            chunk_visits += v;
                            telemetry.add(Counter::RemapPasses, 1);
                            device_load.iter_mut().for_each(|l| *l = 0);
                        }
                        Err(e) => {
                            run_err = Some(e);
                            break;
                        }
                    }
                }
                let mut groups = chunk_groups(plan.n_qubits, plan.chunk_bits, stage);
                if cache_enabled {
                    // Visit groups with the most cache-resident members
                    // first so a stage harvests its hits before misses
                    // evict them. An empty cache (first stage, tiny budget)
                    // skips the set build; an all-zero count vector skips
                    // the sort.
                    let resident = store.resident_chunks();
                    if !resident.is_empty() {
                        let resident: std::collections::HashSet<usize> =
                            resident.into_iter().collect();
                        let mut counted: Vec<(usize, Vec<usize>)> = groups
                            .into_iter()
                            .map(|g| (g.iter().filter(|c| resident.contains(c)).count(), g))
                            .collect();
                        if counted.iter().any(|(n, _)| *n > 0) {
                            counted.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
                        }
                        groups = counted.into_iter().map(|(_, g)| g).collect();
                    }
                }
                chunk_visits += groups.iter().map(Vec::len).sum::<usize>();
                let shards = assign_shards(cfg.shard_policy, n_devices, &groups, &mut device_load);
                let si = si as u32;
                if let Err(e) = executor.begin_stage(&ctx, si, groups.len()) {
                    run_err = Some(e);
                    break;
                }
                for (seq, (chunks, shard)) in groups.into_iter().zip(shards).enumerate() {
                    let group = GroupWork {
                        stage: si,
                        seq,
                        chunks,
                        shard,
                    };
                    if let Err(e) = executor.submit(&ctx, group) {
                        run_err = Some(e);
                        break 'stages;
                    }
                }
                if let Err(e) = executor.end_stage(&ctx, si) {
                    run_err = Some(e);
                    break;
                }
                if let Some(bounds) = &stage_bounds {
                    let now = store.counters().lossy_encodes;
                    let allocated = bounds[si as usize];
                    error_spend.push(StageErrorSpend {
                        stage: si,
                        allocated,
                        spent: if now > lossy_mark { allocated } else { 0.0 },
                    });
                    lossy_mark = now;
                }
            }
            // Epilogue: un-permute the layout back to identity so callers
            // (measurement, to_dense, comparisons) see logical order.
            if run_err.is_none() {
                if let Some(epilogue) = &plan.epilogue {
                    match executor.remap(&ctx, epilogue) {
                        Ok(v) => {
                            chunk_visits += v;
                            telemetry.add(Counter::RemapPasses, 1);
                        }
                        Err(e) => run_err = Some(e),
                    }
                }
                if plan.layout_visits_saved > 0 {
                    telemetry.add(
                        Counter::ChunkVisitsSavedByLayout,
                        plan.layout_visits_saved as u64,
                    );
                }
            }
        }
    }

    // Always give the executor its drain/release call so pipelines join and
    // buffers free even on a failed stage, then flush dirty resident chunks
    // so the base representation is coherent for callers.
    let finish_result = executor.finish(&ctx);
    if let Err(e) = store.flush() {
        run_err.get_or_insert(e.into());
    }

    // Epilogue traffic (drained pipelines, dirty cache write-backs) ran
    // under the last stage's allowance; fold any post-stage lossy encodes
    // into that stage's ledger entry, then clear the allowance.
    if stage_bounds.is_some() {
        if store.counters().lossy_encodes > lossy_mark {
            if let Some(last) = error_spend.last_mut() {
                last.spent = last.allocated;
            }
        }
        store.set_error_allowance(None);
        telemetry.set_error_spend(error_spend);
    }

    // Snapshot after the executor drained, so every span is closed and
    // every counter has landed.
    let record = telemetry.finish();
    if let Some(e) = run_err {
        return Err(e);
    }
    let stats = finish_result?;

    let decompress = record.busy(Role::Decompress);
    let compress = record.busy(Role::Recompress);
    let cpu_apply = record.busy(Role::CpuApply);
    let cpu_side = decompress + compress + cpu_apply;
    Ok(RunReport {
        executor: executor.name(),
        wall: record.wall,
        decompress,
        cpu_apply,
        compress,
        device: stats.device,
        per_device: stats.per_device,
        stages: plan.stages.len(),
        chunk_visits,
        gates_applied: stats.gates_applied,
        scalars_applied: stats.scalars_applied,
        gates_fused: record.counter(Counter::GatesFused) as usize,
        apply_passes_saved: record.counter(Counter::ApplyPassesSaved) as usize,
        remap_passes: record.counter(Counter::RemapPasses) as usize,
        chunk_visits_saved_by_layout: record.counter(Counter::ChunkVisitsSavedByLayout) as usize,
        groups_device: stats.groups_device,
        groups_cpu: stats.groups_cpu,
        peak_compressed_bytes: store.peak_state_bytes(),
        peak_resident_bytes: store.peak_resident_bytes(),
        peak_buffer_bytes: stats.peak_buffer_bytes,
        pinned_bytes: stats.pinned_bytes,
        device_buffer_bytes: stats.device_buffer_bytes,
        modeled_serial: cpu_side + stats.device.modeled,
        modeled_overlapped: cpu_side.max(stats.device.modeled),
        fidelity_budget: cfg.fidelity_budget,
        error_budget: stage_bounds.map_or(0.0, |b| b.iter().sum()),
        error_spent: record.total_error_spent(),
        telemetry: record,
    })
}

/// Per-stage error allowances for a run with a fidelity budget (`None`
/// without one): the end-state infidelity `1 - target` is converted into a
/// total per-amplitude (per re/im plane) error allowance via the worst-case
/// L2 relation `1 - F <= 2 * 2^n * E^2`, then split across stages by the
/// configured [`BudgetPolicy`](crate::config::BudgetPolicy) — per-stage
/// errors add at worst linearly per amplitude, so bounds summing to `E`
/// keep the end-state claim.
pub fn stage_error_bounds(cfg: &MemQSimConfig, n_qubits: u32, n_stages: usize) -> Option<Vec<f64>> {
    cfg.fidelity_budget.map(|target| {
        let total = ((1.0 - target) / (2.0 * (2f64).powi(n_qubits as i32))).sqrt();
        cfg.budget_policy.allocate(total, n_stages)
    })
}

/// Shared gate/scalar application counters for CPU-side group processing.
#[derive(Debug, Default)]
pub(crate) struct ApplyCounters {
    pub(crate) gates: AtomicUsize,
    pub(crate) scalars: AtomicUsize,
}

/// Decompresses `group`'s chunks into consecutive `chunk_amps`-sized slots
/// of `buffer` (no telemetry span — callers hold the right role span).
pub(crate) fn load_group(
    store: &dyn ChunkStore,
    group: &[usize],
    buffer: &mut [Complex64],
    chunk_amps: usize,
) -> Result<(), EngineError> {
    for (j, &chunk) in group.iter().enumerate() {
        store.load_chunk(chunk, &mut buffer[j * chunk_amps..(j + 1) * chunk_amps])?;
    }
    Ok(())
}

/// Recompresses `group`'s chunks from consecutive `chunk_amps`-sized slots
/// of `buffer` (no telemetry span — callers hold the right role span).
pub(crate) fn store_group(
    store: &dyn ChunkStore,
    group: &[usize],
    buffer: &[Complex64],
    chunk_amps: usize,
) -> Result<(), EngineError> {
    for (j, &chunk) in group.iter().enumerate() {
        store.store_chunk(chunk, &buffer[j * chunk_amps..(j + 1) * chunk_amps])?;
    }
    Ok(())
}

/// Applies one stage's gates, specialized for the group based at
/// `base_chunk`, to a decompressed group `buffer` — the single apply body
/// behind the serial loop and the pipelined apply pool, so both paths
/// count gates/scalars and save passes identically.
pub(crate) fn apply_stage_to_group(
    stage: &Stage,
    chunk_bits: u32,
    fusion: FusionLevel,
    base_chunk: usize,
    buffer: &mut [Complex64],
    counters: &ApplyCounters,
    telemetry: &Telemetry,
) {
    let gctx = GroupContext {
        chunk_bits,
        high: &stage.high_qubits,
        base_chunk,
    };
    if fusion == FusionLevel::Off {
        // Unfused baseline: one full buffer pass per gate, exactly as
        // authored.
        for gate in &stage.gates {
            match specialize(gate, &gctx) {
                Specialized::Skip => {}
                Specialized::Scalar(s) => {
                    for z in buffer.iter_mut() {
                        *z *= s;
                    }
                    counters.scalars.fetch_add(1, Ordering::Relaxed);
                }
                Specialized::Apply(g) => {
                    mq_statevec::apply::apply_gate(buffer, &g, 1);
                    counters.gates.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    } else {
        // Fused path: specialize the whole stage first (scalars fold
        // into one factor), then run the cache-blocked sweep.
        let mut gates = Vec::with_capacity(stage.gates.len());
        let mut scalar = Complex64::ONE;
        for gate in &stage.gates {
            match specialize(gate, &gctx) {
                Specialized::Skip => {}
                Specialized::Scalar(s) => {
                    scalar *= s;
                    counters.scalars.fetch_add(1, Ordering::Relaxed);
                }
                Specialized::Apply(g) => gates.push(g),
            }
        }
        if scalar != Complex64::ONE {
            for z in buffer.iter_mut() {
                *z *= scalar;
            }
        }
        let stats = mq_statevec::apply::apply_all(buffer, &gates, 1);
        counters.gates.fetch_add(stats.gates, Ordering::Relaxed);
        if stats.passes_saved() > 0 {
            telemetry.add(Counter::ApplyPassesSaved, stats.passes_saved() as u64);
        }
    }
}

/// Processes a slice of one stage's groups entirely on CPU workers:
/// decompress → specialize+apply → recompress, distributed with `par_for`.
/// The single implementation behind the serial CPU executor path and the
/// hybrid executor's "idle core" share (paper Fig. 2 step 5).
pub(crate) fn process_groups_on_cpu(
    ctx: &ExecContext,
    work: &StageWork<'_>,
    groups: &[Vec<usize>],
    counters: &ApplyCounters,
) -> Result<(), EngineError> {
    let chunk_amps = ctx.chunk_amps();
    let chunk_bits = ctx.plan.chunk_bits;
    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    par_for(groups.len(), ctx.cfg.workers, |gi| {
        if first_error.lock().is_some() {
            return;
        }
        let group = &groups[gi];
        let mut buffer = vec![Complex64::ZERO; group.len() * chunk_amps];

        // Decompress members into their buffer slots.
        {
            let _span = ctx.telemetry.stage_span(Role::Decompress, work.index);
            if let Err(e) = load_group(&*ctx.store, group, &mut buffer, chunk_amps) {
                *first_error.lock() = Some(e);
                return;
            }
        }

        // Apply all stage gates, specialized to this group.
        {
            let _span = ctx.telemetry.stage_span(Role::CpuApply, work.index);
            apply_stage_to_group(
                work.stage,
                chunk_bits,
                ctx.cfg.fusion,
                group[0],
                &mut buffer,
                counters,
                &ctx.telemetry,
            );
        }

        // Recompress.
        let _span = ctx.telemetry.stage_span(Role::Recompress, work.index);
        if let Err(e) = store_group(&*ctx.store, group, &buffer, chunk_amps) {
            *first_error.lock() = Some(e);
        }
    });
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use mq_circuit::library;
    use mq_compress::CodecSpec;
    use mq_telemetry::Counter;

    /// A third, trivial executor: proves the batch seam is real by driving
    /// the shared core with a mock that only round-trips chunks (identity
    /// compute) while counting what the driver hands it — through
    /// [`SerialAdapter`], the same bridge the hybrid engine uses.
    #[derive(Default)]
    struct CountingExecutor {
        prepared: usize,
        finished: usize,
        stages_seen: Vec<u32>,
        groups_seen: usize,
        chunks_seen: usize,
    }

    impl StageBatchExecutor for CountingExecutor {
        fn name(&self) -> String {
            "counting-mock".to_string()
        }

        fn prepare(&mut self, _ctx: &ExecContext) -> Result<(), EngineError> {
            self.prepared += 1;
            Ok(())
        }

        fn execute_stage(
            &mut self,
            ctx: &ExecContext,
            work: &StageWork<'_>,
        ) -> Result<(), EngineError> {
            self.stages_seen.push(work.index);
            self.groups_seen += work.groups.len();
            let chunk_amps = ctx.chunk_amps();
            let mut buf = vec![Complex64::ZERO; chunk_amps];
            for group in &work.groups {
                for &chunk in group {
                    self.chunks_seen += 1;
                    ctx.store.load_chunk(chunk, &mut buf)?;
                    ctx.store.store_chunk(chunk, &buf)?;
                }
            }
            Ok(())
        }

        fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
            self.finished += 1;
            Ok(ExecutorStats {
                groups_cpu: self.groups_seen,
                ..ExecutorStats::default()
            })
        }
    }

    #[test]
    fn counting_mock_rides_the_same_core() {
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let circuit = library::qft(7);
        let store = testkit::zero_store(7, 3, &cfg);
        let mut mock = SerialAdapter::new(CountingExecutor::default());
        let report =
            run_with_executor(&store, &circuit, &cfg, Granularity::Staged, &mut mock).unwrap();
        let mock = mock.into_inner();

        // Lifecycle: prepare and finish exactly once, stages in plan order.
        assert_eq!(mock.prepared, 1);
        assert_eq!(mock.finished, 1);
        assert_eq!(
            mock.stages_seen,
            (0..report.stages as u32).collect::<Vec<_>>()
        );

        // The driver's visit accounting matches what the executor was
        // handed, and matches the store's counter (the mock loads every
        // chunk exactly once per stage).
        assert_eq!(mock.chunks_seen, report.chunk_visits);
        assert_eq!(
            report.chunk_visits as u64,
            report.telemetry.counter(Counter::ChunkVisits)
        );
        assert_eq!(report.groups_cpu, mock.groups_seen);
        assert_eq!(report.executor, "counting-mock");

        // Identity compute: the state is untouched.
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() < 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() < 1e-12));

        // The report is fully assembled even for a mock executor.
        assert!(report.telemetry.balanced());
        assert_eq!(report.gates_applied, 0);
        assert!(report.peak_compressed_bytes > 0);
        assert_eq!(report.device, StreamStats::default());
    }

    #[test]
    fn failed_stage_still_finishes_the_executor() {
        struct FailingExecutor {
            finished: bool,
        }
        impl StageBatchExecutor for FailingExecutor {
            fn name(&self) -> String {
                "failing-mock".to_string()
            }
            fn execute_stage(
                &mut self,
                _ctx: &ExecContext,
                _work: &StageWork<'_>,
            ) -> Result<(), EngineError> {
                Err(EngineError::Config("boom".to_string()))
            }
            fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
                self.finished = true;
                Ok(ExecutorStats::default())
            }
        }
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let store = testkit::zero_store(6, 3, &cfg);
        let mut exec = SerialAdapter::new(FailingExecutor { finished: false });
        let err = run_with_executor(
            &store,
            &library::ghz(6),
            &cfg,
            Granularity::Staged,
            &mut exec,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
        assert!(
            exec.into_inner().finished,
            "finish must run even when a stage fails"
        );
    }

    #[test]
    fn streaming_protocol_delivers_groups_in_order_with_barriers() {
        /// A native streaming executor that records the raw protocol: every
        /// begin/submit/end call, in order, with its stage index.
        #[derive(Default)]
        struct ProtocolRecorder {
            events: Vec<String>,
            open_stage: Option<u32>,
            announced: usize,
            submitted: usize,
        }
        impl ChunkExecutor for ProtocolRecorder {
            fn name(&self) -> String {
                "protocol-recorder".to_string()
            }
            fn begin_stage(
                &mut self,
                _ctx: &ExecContext,
                index: u32,
                n_groups: usize,
            ) -> Result<(), EngineError> {
                assert_eq!(self.open_stage, None, "stages must not nest");
                self.open_stage = Some(index);
                self.announced = n_groups;
                self.submitted = 0;
                self.events.push(format!("begin {index}"));
                Ok(())
            }
            fn submit(&mut self, ctx: &ExecContext, group: GroupWork) -> Result<(), EngineError> {
                assert_eq!(self.open_stage, Some(group.stage), "submit outside stage");
                assert_eq!(group.seq, self.submitted, "submissions arrive in order");
                self.submitted += 1;
                // Identity round-trip keeps the run observable end to end.
                let chunk_amps = ctx.chunk_amps();
                let mut buf = vec![Complex64::ZERO; chunk_amps];
                for &chunk in &group.chunks {
                    ctx.store.load_chunk(chunk, &mut buf)?;
                    ctx.store.store_chunk(chunk, &buf)?;
                }
                Ok(())
            }
            fn end_stage(&mut self, _ctx: &ExecContext, index: u32) -> Result<(), EngineError> {
                assert_eq!(self.open_stage.take(), Some(index));
                assert_eq!(
                    self.submitted, self.announced,
                    "begin_stage announced a different group count"
                );
                self.events.push(format!("end {index}"));
                Ok(())
            }
            fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
                assert_eq!(self.open_stage, None, "finish with a stage still open");
                Ok(ExecutorStats::default())
            }
        }

        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let store = testkit::zero_store(7, 3, &cfg);
        let mut exec = ProtocolRecorder::default();
        let report = run_with_executor(
            &store,
            &library::qft(7),
            &cfg,
            Granularity::Staged,
            &mut exec,
        )
        .unwrap();
        // Every stage opened and closed, in plan order.
        let want: Vec<String> = (0..report.stages as u32)
            .flat_map(|i| [format!("begin {i}"), format!("end {i}")])
            .collect();
        assert_eq!(exec.events, want);
    }

    #[test]
    fn geometry_mismatches_are_typed_errors_not_panics() {
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let mut mock = SerialAdapter::new(CountingExecutor::default());

        // Store narrower than the circuit.
        let store = testkit::zero_store(6, 3, &cfg);
        match run_with_executor(
            &store,
            &library::ghz(8),
            &cfg,
            Granularity::Staged,
            &mut mock,
        ) {
            Err(EngineError::WidthMismatch {
                store_qubits: 6,
                circuit_qubits: 8,
            }) => {}
            other => panic!("expected WidthMismatch, got {other:?}"),
        }

        // Store chunked differently from the config.
        let store = testkit::zero_store(8, 5, &cfg);
        match run_with_executor(
            &store,
            &library::ghz(8),
            &cfg,
            Granularity::Staged,
            &mut mock,
        ) {
            Err(EngineError::ChunkMismatch {
                store_chunk_bits: 5,
                config_chunk_bits: 3,
            }) => {}
            other => panic!("expected ChunkMismatch, got {other:?}"),
        }
        // Neither failed run reached the executor.
        assert_eq!(mock.into_inner().prepared, 0);
    }
}
