//! The unified execution core: one chunk-streaming driver, pluggable
//! executors.
//!
//! Every MEMQSIM engine runs the same skeleton — validate the configuration
//! and store geometry, build the offline plan, attach telemetry and the
//! residency cache, then stream every stage's chunk groups (residency-first
//! when the cache is on) through some compute path, flush, and assemble a
//! report. [`run_with_executor`] owns that skeleton once; the compute path
//! is a [`ChunkExecutor`]:
//!
//! * [`CpuWorkerExecutor`](super::cpu::CpuWorkerExecutor) — "idle core"
//!   workers decompress → apply → recompress each group (paper Fig. 2
//!   step 5);
//! * [`DevicePipelineExecutor`](super::hybrid::DevicePipelineExecutor) —
//!   the three-role producer/device/completer pipeline (Fig. 2 steps 1–6).
//!
//! Anything implementing the trait — including test mocks — gets config
//! validation, plan building, cache setup, visit accounting, flush and
//! [`RunReport`] assembly for free, which is the seam heterogeneous
//! scheduling (routing stages per-executor) will plug into.

use crate::config::{FusionLevel, MemQSimConfig};
use crate::engine::report::RunReport;
use crate::engine::{EngineError, Granularity, StoreTelemetryGuard};
use crate::planner::chunk_groups;
use crate::specialize::{specialize, GroupContext, Specialized};
use crate::store::ChunkStore;
use mq_circuit::partition::{partition, partition_per_gate, PartitionConfig, Plan, Stage};
use mq_circuit::Circuit;
use mq_device::StreamStats;
use mq_num::parallel::par_for;
use mq_num::Complex64;
use mq_telemetry::{Counter, Role, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything the driver hands an executor: the store being simulated, the
/// offline plan, the active configuration and the run's telemetry handle.
pub struct ExecContext<'a> {
    /// The chunked state the run mutates (any [`ChunkStore`] stack).
    pub store: &'a dyn ChunkStore,
    /// The offline plan (stages, geometry) the driver streams.
    pub plan: &'a Plan,
    /// The active engine configuration.
    pub cfg: &'a MemQSimConfig,
    /// The run's shared telemetry handle (already attached to the store).
    pub telemetry: &'a Telemetry,
}

impl ExecContext<'_> {
    /// Amplitudes per chunk.
    pub fn chunk_amps(&self) -> usize {
        self.store.chunk_amps()
    }
}

/// One stage's work order: the stage, its index, and its chunk groups in
/// the order the driver wants them visited (cache-resident groups first).
pub struct StageWork<'a> {
    /// Stage index within the plan (telemetry stage id).
    pub index: u32,
    /// The stage being executed.
    pub stage: &'a Stage,
    /// Ordered chunk groups; each inner vector is one co-resident group.
    pub groups: Vec<Vec<usize>>,
}

/// Executor-side accounting folded into the final [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Gates applied (after specialization).
    pub gates_applied: usize,
    /// Whole-buffer scalar multiplications applied.
    pub scalars_applied: usize,
    /// Groups routed through a device.
    pub groups_device: usize,
    /// Groups handled by CPU workers.
    pub groups_cpu: usize,
    /// Peak transient per-worker group-buffer bytes.
    pub peak_buffer_bytes: usize,
    /// Host pinned staging bytes held for the run.
    pub pinned_bytes: usize,
    /// Device working-buffer bytes held for the run.
    pub device_buffer_bytes: usize,
    /// Device-side stream accounting (zero when no device was involved).
    pub device: StreamStats,
}

/// A pluggable compute path for the chunk-streaming driver.
///
/// Lifecycle: [`prepare`](Self::prepare) once, then
/// [`execute_stage`](Self::execute_stage) per plan stage (stage boundaries
/// are barriers — a stage may read chunks the previous stage wrote), then
/// [`finish`](Self::finish) exactly once, *even if a stage failed*, so
/// executors can drain pipelines and release buffers unconditionally.
pub trait ChunkExecutor {
    /// Display name, recorded in the report.
    fn name(&self) -> String;

    /// Allocates run-scoped resources (buffers, streams, threads).
    fn prepare(&mut self, _ctx: &ExecContext<'_>) -> Result<(), EngineError> {
        Ok(())
    }

    /// Processes every chunk group of one stage, in the given order.
    fn execute_stage(
        &mut self,
        ctx: &ExecContext<'_>,
        work: &StageWork<'_>,
    ) -> Result<(), EngineError>;

    /// Drains and releases resources, returning the executor's accounting.
    fn finish(&mut self, _ctx: &ExecContext<'_>) -> Result<ExecutorStats, EngineError>;
}

/// Builds the plan for `circuit` under `cfg` at the given granularity,
/// optionally running the commutation-aware reorder pass first and the
/// per-stage fusion pass (`cfg.fusion`) last.
pub fn build_plan(circuit: &Circuit, cfg: &MemQSimConfig, granularity: Granularity) -> Plan {
    build_plan_counted(circuit, cfg, granularity).0
}

/// [`build_plan`] that also reports how many gates per-stage fusion
/// eliminated (0 when `cfg.fusion` is [`FusionLevel::Off`]).
pub(crate) fn build_plan_counted(
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
) -> (Plan, usize) {
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    let reordered;
    let circuit = if cfg.reorder {
        reordered = mq_circuit::reorder::reorder_for_locality(circuit, chunk_bits);
        &reordered
    } else {
        circuit
    };
    let mut plan = match granularity {
        Granularity::Staged => partition(
            circuit,
            &PartitionConfig {
                chunk_bits,
                max_high_qubits: cfg.max_high_qubits,
            },
        ),
        Granularity::PerGate => partition_per_gate(circuit, chunk_bits),
    };
    let gates_fused = fuse_plan_stages(&mut plan, cfg.fusion, circuit.n_qubits());
    (plan, gates_fused)
}

/// Fuses each stage's gate list in place, never crossing a stage barrier.
/// Gates touching qubits at or above `chunk_bits` (the stage's cross-chunk
/// pairing set lives there) pass through unfused, so the stage's
/// `high_qubits` and the specializer's index mapping stay valid. Returns
/// the number of gates eliminated.
fn fuse_plan_stages(plan: &mut Plan, level: FusionLevel, n_qubits: u32) -> usize {
    if level == FusionLevel::Off {
        return 0;
    }
    let mut fused_away = 0usize;
    for stage in &mut plan.stages {
        let mut staged = Circuit::new(n_qubits);
        for g in &stage.gates {
            staged.push(g.clone());
        }
        let fused = match level {
            FusionLevel::Runs1q => mq_circuit::fusion::fuse_1q_runs_below(&staged, plan.chunk_bits),
            FusionLevel::Blocks2q => mq_circuit::fusion::fuse_to_2q_below(&staged, plan.chunk_bits),
            FusionLevel::Off => unreachable!(),
        };
        fused_away += stage.gates.len().saturating_sub(fused.len());
        stage.gates = fused.gates().to_vec();
    }
    fused_away
}

/// Runs `circuit` against `store`, streaming every stage's chunk groups
/// through `executor`. This is the one engine driver: `cpu::run` and
/// `hybrid::run` are thin constructors over it.
///
/// Geometry mismatches surface as typed errors
/// ([`EngineError::WidthMismatch`] / [`EngineError::ChunkMismatch`]) rather
/// than panics.
pub fn run_with_executor(
    store: &dyn ChunkStore,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
    executor: &mut dyn ChunkExecutor,
) -> Result<RunReport, EngineError> {
    cfg.validate().map_err(EngineError::Config)?;
    if store.n_qubits() != circuit.n_qubits() {
        return Err(EngineError::WidthMismatch {
            store_qubits: store.n_qubits(),
            circuit_qubits: circuit.n_qubits(),
        });
    }
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    if store.chunk_bits() != chunk_bits {
        return Err(EngineError::ChunkMismatch {
            store_chunk_bits: store.chunk_bits(),
            config_chunk_bits: chunk_bits,
        });
    }

    // One telemetry record for the whole run; the store stack's telemetry
    // tier (and any device the executor attaches) feeds counters into it.
    let telemetry = Telemetry::new();
    store.attach_telemetry(telemetry.clone());
    let _store_guard = StoreTelemetryGuard(store);
    // The hot-chunk residency cache, when configured, is already part of the
    // store stack (see `store::build_store`); the driver only exploits it by
    // ordering groups residency-first.
    let cache_enabled = cfg.cache_bytes > 0;

    let (plan, gates_fused) = build_plan_counted(circuit, cfg, granularity);
    if gates_fused > 0 {
        telemetry.add(Counter::GatesFused, gates_fused as u64);
    }
    let ctx = ExecContext {
        store,
        plan: &plan,
        cfg,
        telemetry: &telemetry,
    };

    let mut chunk_visits = 0usize;
    let mut run_err: Option<EngineError> = None;
    match executor.prepare(&ctx) {
        Err(e) => run_err = Some(e),
        Ok(()) => {
            for (si, stage) in plan.stages.iter().enumerate() {
                let mut groups = chunk_groups(plan.n_qubits, plan.chunk_bits, stage);
                if cache_enabled {
                    // Visit groups with the most cache-resident members
                    // first so a stage harvests its hits before misses
                    // evict them. An empty cache (first stage, tiny budget)
                    // skips the set build; an all-zero count vector skips
                    // the sort.
                    let resident = store.resident_chunks();
                    if !resident.is_empty() {
                        let resident: std::collections::HashSet<usize> =
                            resident.into_iter().collect();
                        let mut counted: Vec<(usize, Vec<usize>)> = groups
                            .into_iter()
                            .map(|g| (g.iter().filter(|c| resident.contains(c)).count(), g))
                            .collect();
                        if counted.iter().any(|(n, _)| *n > 0) {
                            counted.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
                        }
                        groups = counted.into_iter().map(|(_, g)| g).collect();
                    }
                }
                chunk_visits += groups.iter().map(Vec::len).sum::<usize>();
                let work = StageWork {
                    index: si as u32,
                    stage,
                    groups,
                };
                if let Err(e) = executor.execute_stage(&ctx, &work) {
                    run_err = Some(e);
                    break;
                }
            }
        }
    }

    // Always give the executor its drain/release call so pipelines join and
    // buffers free even on a failed stage, then flush dirty resident chunks
    // so the base representation is coherent for callers.
    let finish_result = executor.finish(&ctx);
    if let Err(e) = store.flush() {
        run_err.get_or_insert(e.into());
    }

    // Snapshot after the executor drained, so every span is closed and
    // every counter has landed.
    let record = telemetry.finish();
    if let Some(e) = run_err {
        return Err(e);
    }
    let stats = finish_result?;

    let decompress = record.busy(Role::Decompress);
    let compress = record.busy(Role::Recompress);
    let cpu_apply = record.busy(Role::CpuApply);
    let cpu_side = decompress + compress + cpu_apply;
    Ok(RunReport {
        executor: executor.name(),
        wall: record.wall,
        decompress,
        cpu_apply,
        compress,
        device: stats.device,
        stages: plan.stages.len(),
        chunk_visits,
        gates_applied: stats.gates_applied,
        scalars_applied: stats.scalars_applied,
        gates_fused: record.counter(Counter::GatesFused) as usize,
        apply_passes_saved: record.counter(Counter::ApplyPassesSaved) as usize,
        groups_device: stats.groups_device,
        groups_cpu: stats.groups_cpu,
        peak_compressed_bytes: store.peak_state_bytes(),
        peak_resident_bytes: store.peak_resident_bytes(),
        peak_buffer_bytes: stats.peak_buffer_bytes,
        pinned_bytes: stats.pinned_bytes,
        device_buffer_bytes: stats.device_buffer_bytes,
        modeled_serial: cpu_side + stats.device.modeled,
        modeled_overlapped: cpu_side.max(stats.device.modeled),
        telemetry: record,
    })
}

/// Shared gate/scalar application counters for CPU-side group processing.
#[derive(Debug, Default)]
pub(crate) struct ApplyCounters {
    pub(crate) gates: AtomicUsize,
    pub(crate) scalars: AtomicUsize,
}

/// Processes a slice of one stage's groups entirely on CPU workers:
/// decompress → specialize+apply → recompress, distributed with `par_for`.
/// The single implementation behind both the CPU executor and the hybrid
/// executor's "idle core" share (paper Fig. 2 step 5).
pub(crate) fn process_groups_on_cpu(
    ctx: &ExecContext<'_>,
    work: &StageWork<'_>,
    groups: &[Vec<usize>],
    counters: &ApplyCounters,
) -> Result<(), EngineError> {
    let chunk_amps = ctx.chunk_amps();
    let chunk_bits = ctx.plan.chunk_bits;
    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    par_for(groups.len(), ctx.cfg.workers, |gi| {
        if first_error.lock().is_some() {
            return;
        }
        let group = &groups[gi];
        let mut buffer = vec![Complex64::ZERO; group.len() * chunk_amps];

        // Decompress members into their buffer slots.
        {
            let _span = ctx.telemetry.stage_span(Role::Decompress, work.index);
            for (j, &chunk) in group.iter().enumerate() {
                if let Err(e) = ctx
                    .store
                    .load_chunk(chunk, &mut buffer[j * chunk_amps..(j + 1) * chunk_amps])
                {
                    *first_error.lock() = Some(e.into());
                    return;
                }
            }
        }

        // Apply all stage gates, specialized to this group.
        let apply_span = ctx.telemetry.stage_span(Role::CpuApply, work.index);
        let gctx = GroupContext {
            chunk_bits,
            high: &work.stage.high_qubits,
            base_chunk: group[0],
        };
        if ctx.cfg.fusion == FusionLevel::Off {
            // Unfused baseline: one full buffer pass per gate, exactly as
            // authored.
            for gate in &work.stage.gates {
                match specialize(gate, &gctx) {
                    Specialized::Skip => {}
                    Specialized::Scalar(s) => {
                        for z in buffer.iter_mut() {
                            *z *= s;
                        }
                        counters.scalars.fetch_add(1, Ordering::Relaxed);
                    }
                    Specialized::Apply(g) => {
                        mq_statevec::apply::apply_gate(&mut buffer, &g, 1);
                        counters.gates.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        } else {
            // Fused path: specialize the whole stage first (scalars fold
            // into one factor), then run the cache-blocked sweep.
            let mut gates = Vec::with_capacity(work.stage.gates.len());
            let mut scalar = Complex64::ONE;
            for gate in &work.stage.gates {
                match specialize(gate, &gctx) {
                    Specialized::Skip => {}
                    Specialized::Scalar(s) => {
                        scalar *= s;
                        counters.scalars.fetch_add(1, Ordering::Relaxed);
                    }
                    Specialized::Apply(g) => gates.push(g),
                }
            }
            if scalar != Complex64::ONE {
                for z in buffer.iter_mut() {
                    *z *= scalar;
                }
            }
            let stats = mq_statevec::apply::apply_all(&mut buffer, &gates, 1);
            counters.gates.fetch_add(stats.gates, Ordering::Relaxed);
            if stats.passes_saved() > 0 {
                ctx.telemetry
                    .add(Counter::ApplyPassesSaved, stats.passes_saved() as u64);
            }
        }
        drop(apply_span);

        // Recompress.
        let _span = ctx.telemetry.stage_span(Role::Recompress, work.index);
        for (j, &chunk) in group.iter().enumerate() {
            if let Err(e) = ctx
                .store
                .store_chunk(chunk, &buffer[j * chunk_amps..(j + 1) * chunk_amps])
            {
                *first_error.lock() = Some(e.into());
                return;
            }
        }
    });
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use mq_circuit::library;
    use mq_compress::CodecSpec;
    use mq_telemetry::Counter;

    /// A third, trivial executor: proves the `ChunkExecutor` seam is real by
    /// driving the shared core with a mock that only round-trips chunks
    /// (identity compute) while counting what the driver hands it.
    #[derive(Default)]
    struct CountingExecutor {
        prepared: usize,
        finished: usize,
        stages_seen: Vec<u32>,
        groups_seen: usize,
        chunks_seen: usize,
    }

    impl ChunkExecutor for CountingExecutor {
        fn name(&self) -> String {
            "counting-mock".to_string()
        }

        fn prepare(&mut self, _ctx: &ExecContext<'_>) -> Result<(), EngineError> {
            self.prepared += 1;
            Ok(())
        }

        fn execute_stage(
            &mut self,
            ctx: &ExecContext<'_>,
            work: &StageWork<'_>,
        ) -> Result<(), EngineError> {
            self.stages_seen.push(work.index);
            self.groups_seen += work.groups.len();
            let chunk_amps = ctx.chunk_amps();
            let mut buf = vec![Complex64::ZERO; chunk_amps];
            for group in &work.groups {
                for &chunk in group {
                    self.chunks_seen += 1;
                    ctx.store.load_chunk(chunk, &mut buf)?;
                    ctx.store.store_chunk(chunk, &buf)?;
                }
            }
            Ok(())
        }

        fn finish(&mut self, _ctx: &ExecContext<'_>) -> Result<ExecutorStats, EngineError> {
            self.finished += 1;
            Ok(ExecutorStats {
                groups_cpu: self.groups_seen,
                ..ExecutorStats::default()
            })
        }
    }

    #[test]
    fn counting_mock_rides_the_same_core() {
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let circuit = library::qft(7);
        let store = testkit::zero_store(7, 3, &cfg);
        let mut mock = CountingExecutor::default();
        let report =
            run_with_executor(&store, &circuit, &cfg, Granularity::Staged, &mut mock).unwrap();

        // Lifecycle: prepare and finish exactly once, stages in plan order.
        assert_eq!(mock.prepared, 1);
        assert_eq!(mock.finished, 1);
        assert_eq!(
            mock.stages_seen,
            (0..report.stages as u32).collect::<Vec<_>>()
        );

        // The driver's visit accounting matches what the executor was
        // handed, and matches the store's counter (the mock loads every
        // chunk exactly once per stage).
        assert_eq!(mock.chunks_seen, report.chunk_visits);
        assert_eq!(
            report.chunk_visits as u64,
            report.telemetry.counter(Counter::ChunkVisits)
        );
        assert_eq!(report.groups_cpu, mock.groups_seen);
        assert_eq!(report.executor, "counting-mock");

        // Identity compute: the state is untouched.
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() < 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() < 1e-12));

        // The report is fully assembled even for a mock executor.
        assert!(report.telemetry.balanced());
        assert_eq!(report.gates_applied, 0);
        assert!(report.peak_compressed_bytes > 0);
        assert_eq!(report.device, StreamStats::default());
    }

    #[test]
    fn failed_stage_still_finishes_the_executor() {
        struct FailingExecutor {
            finished: bool,
        }
        impl ChunkExecutor for FailingExecutor {
            fn name(&self) -> String {
                "failing-mock".to_string()
            }
            fn execute_stage(
                &mut self,
                _ctx: &ExecContext<'_>,
                _work: &StageWork<'_>,
            ) -> Result<(), EngineError> {
                Err(EngineError::Config("boom".to_string()))
            }
            fn finish(&mut self, _ctx: &ExecContext<'_>) -> Result<ExecutorStats, EngineError> {
                self.finished = true;
                Ok(ExecutorStats::default())
            }
        }
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let store = testkit::zero_store(6, 3, &cfg);
        let mut exec = FailingExecutor { finished: false };
        let err = run_with_executor(
            &store,
            &library::ghz(6),
            &cfg,
            Granularity::Staged,
            &mut exec,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
        assert!(exec.finished, "finish must run even when a stage fails");
    }

    #[test]
    fn geometry_mismatches_are_typed_errors_not_panics() {
        let cfg = testkit::cfg(3, CodecSpec::Fpc);
        let mut mock = CountingExecutor::default();

        // Store narrower than the circuit.
        let store = testkit::zero_store(6, 3, &cfg);
        match run_with_executor(
            &store,
            &library::ghz(8),
            &cfg,
            Granularity::Staged,
            &mut mock,
        ) {
            Err(EngineError::WidthMismatch {
                store_qubits: 6,
                circuit_qubits: 8,
            }) => {}
            other => panic!("expected WidthMismatch, got {other:?}"),
        }

        // Store chunked differently from the config.
        let store = testkit::zero_store(8, 5, &cfg);
        match run_with_executor(
            &store,
            &library::ghz(8),
            &cfg,
            Granularity::Staged,
            &mut mock,
        ) {
            Err(EngineError::ChunkMismatch {
                store_chunk_bits: 5,
                config_chunk_bits: 3,
            }) => {}
            other => panic!("expected ChunkMismatch, got {other:?}"),
        }
        // Neither failed run reached the executor.
        assert_eq!(mock.prepared, 0);
    }
}
