//! The compressed CPU engine.
//!
//! Executes a circuit directly against any [`ChunkStore`] stack:
//! for every stage of the offline plan, every chunk group is decompressed
//! into a working buffer, all of the stage's gates are applied (specialized
//! to the group), and the chunks are recompressed — with groups distributed
//! over "idle core" workers (paper Fig. 2, step 5).
//!
//! The streaming skeleton (validation, plan, cache, ordering, accounting,
//! flush, report) lives in [`exec::run_with_executor`](super::exec); this
//! module contributes only the [`CpuWorkerExecutor`] compute path.

use crate::config::MemQSimConfig;
use crate::engine::exec::{
    process_groups_on_cpu, run_with_executor, ApplyCounters, ChunkExecutor, ExecContext,
    ExecutorStats, StageWork,
};
use crate::engine::{EngineError, Granularity, RunReport};
use crate::store::ChunkStore;
use mq_circuit::Circuit;

pub use crate::engine::exec::build_plan;

/// [`ChunkExecutor`] that processes every chunk group on CPU workers
/// (`cfg.workers` "idle cores"): decompress → apply → recompress per group.
#[derive(Debug, Default)]
pub struct CpuWorkerExecutor {
    counters: ApplyCounters,
    groups: usize,
    peak_buffer_bytes: usize,
}

impl CpuWorkerExecutor {
    /// Creates a fresh executor (one per run).
    pub fn new() -> CpuWorkerExecutor {
        CpuWorkerExecutor::default()
    }
}

impl ChunkExecutor for CpuWorkerExecutor {
    fn name(&self) -> String {
        "cpu-workers".to_string()
    }

    fn execute_stage(
        &mut self,
        ctx: &ExecContext<'_>,
        work: &StageWork<'_>,
    ) -> Result<(), EngineError> {
        let group_amps = work.stage.group_size() * ctx.chunk_amps();
        let amp_bytes = std::mem::size_of::<mq_num::Complex64>();
        self.peak_buffer_bytes = self
            .peak_buffer_bytes
            .max(ctx.cfg.workers.min(work.groups.len()) * group_amps * amp_bytes);
        self.groups += work.groups.len();
        process_groups_on_cpu(ctx, work, &work.groups, &self.counters)
    }

    fn finish(&mut self, _ctx: &ExecContext<'_>) -> Result<ExecutorStats, EngineError> {
        Ok(ExecutorStats {
            gates_applied: *self.counters.gates.get_mut(),
            scalars_applied: *self.counters.scalars.get_mut(),
            groups_cpu: self.groups,
            peak_buffer_bytes: self.peak_buffer_bytes,
            ..ExecutorStats::default()
        })
    }
}

/// Runs `circuit` against `store` on CPU workers.
///
/// Geometry mismatches between the store and `cfg`/`circuit` surface as
/// [`EngineError::WidthMismatch`] / [`EngineError::ChunkMismatch`].
pub fn run(
    store: &dyn ChunkStore,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
) -> Result<RunReport, EngineError> {
    let mut executor = CpuWorkerExecutor::new();
    run_with_executor(store, circuit, cfg, granularity, &mut executor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, run_cpu_and_compare};
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_num::metrics::{fidelity, max_amp_err};
    use mq_telemetry::Role;

    #[test]
    fn suite_matches_dense_reference_lossless() {
        for c in library::standard_suite(7) {
            for chunk_bits in [3u32, 5, 7] {
                run_cpu_and_compare(&c, &testkit::cfg(chunk_bits, CodecSpec::Fpc), 1e-10);
            }
        }
    }

    #[test]
    fn suite_matches_dense_reference_lossy() {
        for c in library::standard_suite(6) {
            let report =
                run_cpu_and_compare(&c, &testkit::cfg(3, CodecSpec::Sz { eb: 1e-12 }), 1e-6);
            assert!(report.gates_applied > 0);
        }
    }

    #[test]
    fn lossy_fidelity_stays_high() {
        let c = library::qft(8);
        let config = testkit::cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = testkit::zero_store(8, 4, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(&c, 0);
        let f = fidelity(&got, &want);
        assert!(f > 0.999999, "fidelity {f}");
    }

    #[test]
    fn multithreaded_run_matches_single_threaded() {
        let c = library::random_circuit(8, 8, 5);
        let mk = |workers| MemQSimConfig {
            workers,
            ..testkit::cfg(3, CodecSpec::Fpc)
        };
        let s1 = testkit::zero_store(8, 3, &mk(1));
        run(&s1, &c, &mk(1), Granularity::Staged).unwrap();
        let s4 = testkit::zero_store(8, 3, &mk(4));
        run(&s4, &c, &mk(4), Granularity::Staged).unwrap();
        let err = max_amp_err(&s1.to_dense().unwrap(), &s4.to_dense().unwrap());
        assert!(err < 1e-12, "thread count changed the result: {err}");
    }

    #[test]
    fn per_gate_granularity_same_result_more_visits() {
        let c = library::qft(7);
        let config = testkit::cfg(3, CodecSpec::Fpc);
        let staged_store = testkit::zero_store(7, 3, &config);
        let staged = run(&staged_store, &c, &config, Granularity::Staged).unwrap();
        let pg_store = testkit::zero_store(7, 3, &config);
        let per_gate = run(&pg_store, &c, &config, Granularity::PerGate).unwrap();
        let err = max_amp_err(
            &staged_store.to_dense().unwrap(),
            &pg_store.to_dense().unwrap(),
        );
        assert!(err < 1e-12);
        assert!(
            per_gate.chunk_visits > staged.chunk_visits,
            "per-gate {} vs staged {}",
            per_gate.chunk_visits,
            staged.chunk_visits
        );
        assert_eq!(per_gate.stages, c.len());
    }

    #[test]
    fn grover_finds_marked_state_through_compression() {
        let n = 7;
        let marked = 0b1011010u64;
        let c = library::grover(n, marked, library::optimal_grover_iterations(n));
        let config = testkit::cfg(3, CodecSpec::Sz { eb: 1e-11 });
        let store = testkit::zero_store(n, 3, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let p = store.probability(marked as usize).unwrap();
        assert!(p > 0.9, "p(marked) = {p}");
    }

    #[test]
    fn norm_is_preserved() {
        let c = library::hardware_efficient_ansatz(8, 2, 3);
        let config = testkit::cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = testkit::zero_store(8, 4, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let n = store.norm().unwrap();
        assert!((n - 1.0).abs() < 1e-5, "norm {n}");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let c = library::ghz(8);
        let config = testkit::cfg(4, CodecSpec::Fpc);
        let store = testkit::zero_store(8, 4, &config);
        let r = run(&store, &c, &config, Granularity::Staged).unwrap();
        assert!(r.stages >= 1);
        assert!(r.chunk_visits >= store.chunk_count());
        assert!(r.peak_compressed_bytes > 0);
        assert!(r.peak_buffer_bytes > 0);
        // The CPU executor routes nothing through a device.
        assert_eq!(r.executor, "cpu-workers");
        assert_eq!(r.groups_device, 0);
        assert!(r.groups_cpu > 0);
        assert_eq!(r.device, mq_device::StreamStats::default());
        assert_eq!(r.pinned_bytes, 0);
        // GHZ has no outside-diagonal gates, so no scalars.
        assert_eq!(r.scalars_applied, 0);
        // Durations are derived from the telemetry record, not separate
        // accumulators, so they agree with it exactly.
        assert!(r.telemetry.balanced());
        assert_eq!(r.decompress, r.telemetry.busy(Role::Decompress));
        assert_eq!(r.cpu_apply, r.telemetry.busy(Role::CpuApply));
        assert_eq!(r.compress, r.telemetry.busy(Role::Recompress));
        assert_eq!(
            r.chunk_visits as u64,
            r.telemetry.counter(mq_telemetry::Counter::ChunkVisits)
        );
        assert!(r.telemetry.counter(mq_telemetry::Counter::BytesCompressed) > 0);
    }

    #[test]
    fn rejects_invalid_config() {
        let c = library::ghz(4);
        let mut config = testkit::cfg(2, CodecSpec::Fpc);
        config.workers = 0;
        let store = testkit::zero_store(4, 2, &config);
        assert!(matches!(
            run(&store, &c, &config, Granularity::Staged),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let config = testkit::cfg(3, CodecSpec::Fpc);
        let store = testkit::zero_store(6, 3, &config);
        assert!(matches!(
            run(&store, &library::ghz(8), &config, Granularity::Staged),
            Err(EngineError::WidthMismatch { .. })
        ));
        let store = testkit::zero_store(8, 5, &config);
        assert!(matches!(
            run(&store, &library::ghz(8), &config, Granularity::Staged),
            Err(EngineError::ChunkMismatch { .. })
        ));
    }

    #[test]
    fn adder_works_chunked() {
        let n_bits = 2;
        let (a, b) = (2u64, 3u64);
        let mut c = library::arithmetic::load_operands(n_bits, a, b);
        c.extend(&library::ripple_carry_adder(n_bits));
        let config = testkit::cfg(2, CodecSpec::ZeroRle);
        let store = testkit::zero_store(c.n_qubits(), 2, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let dense = store.to_dense().unwrap();
        let hot: Vec<usize> = (0..dense.len())
            .filter(|&i| dense[i].norm() > 0.5)
            .collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(
            library::arithmetic::decode_sum(n_bits, hot[0] as u64),
            a + b
        );
    }
}
