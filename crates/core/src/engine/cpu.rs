//! The compressed CPU engine.
//!
//! Executes a circuit directly against any [`ChunkStore`] stack:
//! for every stage of the offline plan, every chunk group is decompressed
//! into a working buffer, all of the stage's gates are applied (specialized
//! to the group), and the chunks are recompressed — the "idle core" loop of
//! paper Fig. 2, step 5.
//!
//! Two shapes, one executor:
//!
//! * `pipeline_depth == 1` (default) — the serial chunk loop: groups of a
//!   stage are distributed over `cfg.workers` flat workers, each handling a
//!   group's decompress → apply → recompress back to back.
//! * `pipeline_depth > 1` — the paper's overlapped chunk loop on the CPU:
//!   three persistent worker pools (decoders → appliers → encoders, sized
//!   by [`WorkerSplit`]) connected by bounded channels, with a recycled
//!   buffer pool capping decompressed groups in flight at
//!   `pipeline_depth`. Group `k+1` decompresses while group `k` applies
//!   and group `k-1` recompresses, so the three telemetry roles genuinely
//!   overlap — `RunTelemetry::has_role_overlap()` measures it.
//!
//! The streaming skeleton (validation, plan, cache, ordering, accounting,
//! flush, report) lives in [`exec::run_with_executor`](super::exec); this
//! module contributes only the [`CpuWorkerExecutor`] compute path.

use crate::config::{MemQSimConfig, WorkerSplit};
use crate::engine::exec::{
    apply_stage_to_group, load_group, process_groups_on_cpu, run_with_executor, store_group,
    ApplyCounters, ChunkExecutor, ExecContext, ExecutorStats, GroupWork, StageWork,
};
use crate::engine::{EngineError, Granularity, RunReport};
use crate::store::ChunkStore;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mq_circuit::partition::Plan;
use mq_circuit::Circuit;
use mq_num::Complex64;
use mq_telemetry::{Role, Telemetry};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

pub use crate::engine::exec::build_plan;

const AMP_BYTES: usize = std::mem::size_of::<Complex64>();

/// One chunk group moving through the decode → apply → encode pools. The
/// buffer travels with the job and returns to the token pool afterwards,
/// so live decompressed bytes never exceed `pipeline_depth × group_bytes`.
struct PipeJob {
    stage: u32,
    chunks: Vec<usize>,
    buf: Vec<Complex64>,
}

/// The persistent three-pool pipeline (spawned in `prepare`, joined in
/// `finish`). Stage barriers are enforced by draining the `done` channel
/// until every submitted group of the stage has reported back.
struct Pipeline {
    /// `None` after shutdown; dropping it disconnects the decoder pool.
    decode_tx: Option<Sender<PipeJob>>,
    /// Recycled group buffers; capacity (= prefill) is the in-flight budget.
    token_rx: Receiver<Vec<Complex64>>,
    /// One completion message per submitted group, errors included.
    done_rx: Receiver<Result<(), EngineError>>,
    handles: Vec<JoinHandle<()>>,
    in_flight: usize,
    first_error: Option<EngineError>,
    /// Largest group (amplitudes) ever submitted — sizes the honest
    /// `peak_buffer_bytes = depth × max_group_amps × 16` claim.
    max_group_amps: usize,
    depth: usize,
}

fn worker_lost() -> EngineError {
    EngineError::Config("cpu pipeline worker exited unexpectedly".into())
}

impl Pipeline {
    fn spawn(ctx: &ExecContext, counters: &Arc<ApplyCounters>) -> Pipeline {
        let depth = ctx.cfg.pipeline_depth;
        let split = ctx
            .cfg
            .worker_split
            .unwrap_or_else(|| WorkerSplit::auto(ctx.cfg.workers));

        let (decode_tx, decode_rx) = bounded::<PipeJob>(depth);
        let (apply_tx, apply_rx) = bounded::<PipeJob>(depth);
        let (encode_tx, encode_rx) = bounded::<PipeJob>(depth);
        let (token_tx, token_rx) = bounded::<Vec<Complex64>>(depth);
        let (done_tx, done_rx) = unbounded::<Result<(), EngineError>>();
        for _ in 0..depth {
            token_tx.send(Vec::new()).expect("token pool has capacity");
        }

        let mut handles = Vec::with_capacity(split.total());
        for _ in 0..split.decode {
            handles.push(spawn_decoder(
                Arc::clone(&ctx.store),
                ctx.telemetry.clone(),
                decode_rx.clone(),
                apply_tx.clone(),
                done_tx.clone(),
                token_tx.clone(),
            ));
        }
        for _ in 0..split.apply {
            handles.push(spawn_applier(
                Arc::clone(&ctx.plan),
                ctx.cfg,
                Arc::clone(counters),
                ctx.telemetry.clone(),
                apply_rx.clone(),
                encode_tx.clone(),
            ));
        }
        for _ in 0..split.encode {
            handles.push(spawn_encoder(
                Arc::clone(&ctx.store),
                ctx.telemetry.clone(),
                encode_rx.clone(),
                done_tx.clone(),
                token_tx.clone(),
            ));
        }

        Pipeline {
            decode_tx: Some(decode_tx),
            token_rx,
            done_rx,
            handles,
            in_flight: 0,
            first_error: None,
            max_group_amps: 0,
            depth,
        }
    }

    /// Folds completion messages into `in_flight`/`first_error`; blocks
    /// until all in-flight groups completed when `to_zero`, otherwise only
    /// harvests what is already available.
    fn collect_done(&mut self, to_zero: bool) {
        while self.in_flight > 0 {
            let msg = if to_zero {
                match self.done_rx.recv() {
                    Ok(m) => m,
                    Err(_) => {
                        // Workers gone with groups outstanding: a panic
                        // somewhere in the pipeline.
                        self.first_error.get_or_insert_with(worker_lost);
                        self.in_flight = 0;
                        break;
                    }
                }
            } else {
                match self.done_rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            self.in_flight -= 1;
            if let Err(e) = msg {
                self.first_error.get_or_insert(e);
            }
        }
    }

    /// Submits one group: acquires a recycled buffer (blocking while the
    /// in-flight window is full — the backpressure that bounds memory) and
    /// hands the job to the decoder pool.
    fn submit(
        &mut self,
        stage: u32,
        chunks: Vec<usize>,
        group_amps: usize,
    ) -> Result<(), EngineError> {
        self.collect_done(false);
        if let Some(e) = self.first_error.clone() {
            return Err(e);
        }
        let mut buf = self.token_rx.recv().map_err(|_| worker_lost())?;
        // Recycled buffers are fully overwritten by the decoder; re-zero
        // only on a size change so steady-state submits skip the memset.
        if buf.len() != group_amps {
            buf.clear();
            buf.resize(group_amps, Complex64::ZERO);
        }
        self.max_group_amps = self.max_group_amps.max(group_amps);
        let tx = self.decode_tx.as_ref().expect("pipeline running");
        tx.send(PipeJob { stage, chunks, buf })
            .map_err(|_| worker_lost())?;
        self.in_flight += 1;
        Ok(())
    }

    /// Stage barrier: waits until every submitted group has been encoded
    /// back into the store, surfacing the first error among them.
    fn barrier(&mut self) -> Result<(), EngineError> {
        self.collect_done(true);
        match self.first_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drains outstanding work, winds the pools down and joins them.
    fn shutdown(&mut self) -> Result<(), EngineError> {
        self.collect_done(true);
        self.decode_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        match self.first_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Normal runs shut down in `finish`; this covers executor drops on
        // early driver exits so no detached thread outlives the run.
        let _ = self.shutdown();
    }
}

fn spawn_decoder(
    store: Arc<dyn ChunkStore>,
    telemetry: Telemetry,
    rx: Receiver<PipeJob>,
    apply_tx: Sender<PipeJob>,
    done_tx: Sender<Result<(), EngineError>>,
    token_tx: Sender<Vec<Complex64>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let chunk_amps = store.chunk_amps();
        while let Ok(mut job) = rx.recv() {
            let result = {
                let _span = telemetry.stage_span(Role::Decompress, job.stage);
                load_group(&*store, &job.chunks, &mut job.buf, chunk_amps)
            };
            match result {
                Ok(()) => {
                    if apply_tx.send(job).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    // The failed group still completes: recycle its buffer
                    // (the pool never shrinks) and report the error.
                    let _ = token_tx.try_send(job.buf);
                    if done_tx.send(Err(e)).is_err() {
                        break;
                    }
                }
            }
        }
    })
}

fn spawn_applier(
    plan: Arc<Plan>,
    cfg: MemQSimConfig,
    counters: Arc<ApplyCounters>,
    telemetry: Telemetry,
    rx: Receiver<PipeJob>,
    encode_tx: Sender<PipeJob>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(mut job) = rx.recv() {
            {
                let _span = telemetry.stage_span(Role::CpuApply, job.stage);
                apply_stage_to_group(
                    &plan.stages[job.stage as usize],
                    plan.chunk_bits,
                    cfg.fusion,
                    job.chunks[0],
                    &mut job.buf,
                    &counters,
                    &telemetry,
                );
            }
            if encode_tx.send(job).is_err() {
                break;
            }
        }
    })
}

fn spawn_encoder(
    store: Arc<dyn ChunkStore>,
    telemetry: Telemetry,
    rx: Receiver<PipeJob>,
    done_tx: Sender<Result<(), EngineError>>,
    token_tx: Sender<Vec<Complex64>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let chunk_amps = store.chunk_amps();
        while let Ok(job) = rx.recv() {
            let result = {
                let _span = telemetry.stage_span(Role::Recompress, job.stage);
                store_group(&*store, &job.chunks, &job.buf, chunk_amps)
            };
            let _ = token_tx.try_send(job.buf);
            if done_tx.send(result).is_err() {
                break;
            }
        }
    })
}

/// [`ChunkExecutor`] that processes every chunk group on CPU workers:
/// the flat `cfg.workers` group-parallel loop at `pipeline_depth == 1`, or
/// the overlapped decode → apply → encode pool pipeline above it.
#[derive(Default)]
pub struct CpuWorkerExecutor {
    counters: Arc<ApplyCounters>,
    groups: usize,
    peak_buffer_bytes: usize,
    /// Depth-1 path: groups buffered until the stage barrier.
    pending: Vec<Vec<usize>>,
    /// Depth > 1 path: the persistent pool pipeline.
    pipeline: Option<Pipeline>,
}

impl CpuWorkerExecutor {
    /// Creates a fresh executor (one per run).
    pub fn new() -> CpuWorkerExecutor {
        CpuWorkerExecutor::default()
    }
}

impl ChunkExecutor for CpuWorkerExecutor {
    fn name(&self) -> String {
        "cpu-workers".to_string()
    }

    fn prepare(&mut self, ctx: &ExecContext) -> Result<(), EngineError> {
        if ctx.cfg.pipeline_depth > 1 {
            self.pipeline = Some(Pipeline::spawn(ctx, &self.counters));
        }
        Ok(())
    }

    fn submit(&mut self, ctx: &ExecContext, group: GroupWork) -> Result<(), EngineError> {
        self.groups += 1;
        match &mut self.pipeline {
            None => {
                self.pending.push(group.chunks);
                Ok(())
            }
            Some(p) => {
                let group_amps = group.chunks.len() * ctx.chunk_amps();
                p.submit(group.stage, group.chunks, group_amps)
            }
        }
    }

    fn end_stage(&mut self, ctx: &ExecContext, index: u32) -> Result<(), EngineError> {
        match &mut self.pipeline {
            None => {
                let work = StageWork {
                    index,
                    stage: ctx.stage(index),
                    groups: std::mem::take(&mut self.pending),
                    shards: Vec::new(),
                    error_allowance: ctx.stage_error_allowance(index),
                };
                let group_amps = work.stage.group_size() * ctx.chunk_amps();
                self.peak_buffer_bytes = self
                    .peak_buffer_bytes
                    .max(ctx.cfg.workers.min(work.groups.len()) * group_amps * AMP_BYTES);
                process_groups_on_cpu(ctx, &work, &work.groups, &self.counters)
            }
            Some(p) => p.barrier(),
        }
    }

    fn finish(&mut self, _ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
        let mut shutdown_err = None;
        if let Some(mut p) = self.pipeline.take() {
            shutdown_err = p.shutdown().err();
            // The in-flight budget is the real buffer peak: `depth` pooled
            // buffers, each grown to the largest group seen.
            self.peak_buffer_bytes = self
                .peak_buffer_bytes
                .max(p.depth * p.max_group_amps * AMP_BYTES);
        }
        self.pending.clear();
        if let Some(e) = shutdown_err {
            return Err(e);
        }
        Ok(ExecutorStats {
            gates_applied: self.counters.gates.load(Ordering::Relaxed),
            scalars_applied: self.counters.scalars.load(Ordering::Relaxed),
            groups_cpu: self.groups,
            peak_buffer_bytes: self.peak_buffer_bytes,
            ..ExecutorStats::default()
        })
    }
}

/// Runs `circuit` against `store` on CPU workers.
///
/// Geometry mismatches between the store and `cfg`/`circuit` surface as
/// [`EngineError::WidthMismatch`] / [`EngineError::ChunkMismatch`].
pub fn run(
    store: &Arc<dyn ChunkStore>,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
) -> Result<RunReport, EngineError> {
    let mut executor = CpuWorkerExecutor::new();
    run_with_executor(store, circuit, cfg, granularity, &mut executor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, run_cpu_and_compare};
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_num::metrics::{fidelity, max_amp_err};
    use mq_telemetry::Role;

    #[test]
    fn suite_matches_dense_reference_lossless() {
        for c in library::standard_suite(7) {
            for chunk_bits in [3u32, 5, 7] {
                run_cpu_and_compare(&c, &testkit::cfg(chunk_bits, CodecSpec::Fpc), 1e-10);
            }
        }
    }

    #[test]
    fn suite_matches_dense_reference_lossy() {
        for c in library::standard_suite(6) {
            let report =
                run_cpu_and_compare(&c, &testkit::cfg(3, CodecSpec::Sz { eb: 1e-12 }), 1e-6);
            assert!(report.gates_applied > 0);
        }
    }

    #[test]
    fn pipelined_suite_matches_dense_reference() {
        for c in library::standard_suite(6) {
            let config = MemQSimConfig {
                pipeline_depth: 4,
                workers: 2,
                ..testkit::cfg(3, CodecSpec::Fpc)
            };
            let report = run_cpu_and_compare(&c, &config, 1e-10);
            assert_eq!(report.executor, "cpu-workers", "{}", c.name());
        }
    }

    #[test]
    fn lossy_fidelity_stays_high() {
        let c = library::qft(8);
        let config = testkit::cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = testkit::zero_store(8, 4, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(&c, 0);
        let f = fidelity(&got, &want);
        assert!(f > 0.999999, "fidelity {f}");
    }

    #[test]
    fn multithreaded_run_matches_single_threaded() {
        let c = library::random_circuit(8, 8, 5);
        let mk = |workers| MemQSimConfig {
            workers,
            ..testkit::cfg(3, CodecSpec::Fpc)
        };
        let s1 = testkit::zero_store(8, 3, &mk(1));
        run(&s1, &c, &mk(1), Granularity::Staged).unwrap();
        let s4 = testkit::zero_store(8, 3, &mk(4));
        run(&s4, &c, &mk(4), Granularity::Staged).unwrap();
        let err = max_amp_err(&s1.to_dense().unwrap(), &s4.to_dense().unwrap());
        assert!(err < 1e-12, "thread count changed the result: {err}");
    }

    #[test]
    fn per_gate_granularity_same_result_more_visits() {
        let c = library::qft(7);
        let config = testkit::cfg(3, CodecSpec::Fpc);
        let staged_store = testkit::zero_store(7, 3, &config);
        let staged = run(&staged_store, &c, &config, Granularity::Staged).unwrap();
        let pg_store = testkit::zero_store(7, 3, &config);
        let per_gate = run(&pg_store, &c, &config, Granularity::PerGate).unwrap();
        let err = max_amp_err(
            &staged_store.to_dense().unwrap(),
            &pg_store.to_dense().unwrap(),
        );
        assert!(err < 1e-12);
        assert!(
            per_gate.chunk_visits > staged.chunk_visits,
            "per-gate {} vs staged {}",
            per_gate.chunk_visits,
            staged.chunk_visits
        );
        assert_eq!(per_gate.stages, c.len());
    }

    #[test]
    fn grover_finds_marked_state_through_compression() {
        let n = 7;
        let marked = 0b1011010u64;
        let c = library::grover(n, marked, library::optimal_grover_iterations(n));
        let config = testkit::cfg(3, CodecSpec::Sz { eb: 1e-11 });
        let store = testkit::zero_store(n, 3, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let p = store.probability(marked as usize).unwrap();
        assert!(p > 0.9, "p(marked) = {p}");
    }

    #[test]
    fn norm_is_preserved() {
        let c = library::hardware_efficient_ansatz(8, 2, 3);
        let config = testkit::cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = testkit::zero_store(8, 4, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let n = store.norm().unwrap();
        assert!((n - 1.0).abs() < 1e-5, "norm {n}");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let c = library::ghz(8);
        let config = testkit::cfg(4, CodecSpec::Fpc);
        let store = testkit::zero_store(8, 4, &config);
        let r = run(&store, &c, &config, Granularity::Staged).unwrap();
        assert!(r.stages >= 1);
        assert!(r.chunk_visits >= store.chunk_count());
        assert!(r.peak_compressed_bytes > 0);
        assert!(r.peak_buffer_bytes > 0);
        // The CPU executor routes nothing through a device.
        assert_eq!(r.executor, "cpu-workers");
        assert_eq!(r.groups_device, 0);
        assert!(r.groups_cpu > 0);
        assert_eq!(r.device, mq_device::StreamStats::default());
        assert_eq!(r.pinned_bytes, 0);
        // GHZ has no outside-diagonal gates, so no scalars.
        assert_eq!(r.scalars_applied, 0);
        // Durations are derived from the telemetry record, not separate
        // accumulators, so they agree with it exactly.
        assert!(r.telemetry.balanced());
        assert_eq!(r.decompress, r.telemetry.busy(Role::Decompress));
        assert_eq!(r.cpu_apply, r.telemetry.busy(Role::CpuApply));
        assert_eq!(r.compress, r.telemetry.busy(Role::Recompress));
        assert_eq!(
            r.chunk_visits as u64,
            r.telemetry.counter(mq_telemetry::Counter::ChunkVisits)
        );
        assert!(r.telemetry.counter(mq_telemetry::Counter::BytesCompressed) > 0);
    }

    #[test]
    fn pipelined_corruption_surfaces_and_joins_cleanly() {
        use crate::store::CompressedTier;
        let config = MemQSimConfig {
            pipeline_depth: 4,
            ..testkit::cfg(4, CodecSpec::Fpc)
        };
        let store: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            8,
            4,
            Arc::from(config.codec.build()),
        ));
        store.debug_corrupt_chunk(7);
        let result = run(&store, &library::qft(8), &config, Granularity::Staged);
        assert!(matches!(result, Err(EngineError::Codec(_))), "{result:?}");
    }

    #[test]
    fn rejects_invalid_config() {
        let c = library::ghz(4);
        let mut config = testkit::cfg(2, CodecSpec::Fpc);
        config.workers = 0;
        let store = testkit::zero_store(4, 2, &config);
        assert!(matches!(
            run(&store, &c, &config, Granularity::Staged),
            Err(EngineError::Config(_))
        ));
        let mut config = testkit::cfg(2, CodecSpec::Fpc);
        config.pipeline_depth = 0;
        assert!(matches!(
            run(&store, &c, &config, Granularity::Staged),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let config = testkit::cfg(3, CodecSpec::Fpc);
        let store = testkit::zero_store(6, 3, &config);
        assert!(matches!(
            run(&store, &library::ghz(8), &config, Granularity::Staged),
            Err(EngineError::WidthMismatch { .. })
        ));
        let store = testkit::zero_store(8, 5, &config);
        assert!(matches!(
            run(&store, &library::ghz(8), &config, Granularity::Staged),
            Err(EngineError::ChunkMismatch { .. })
        ));
    }

    #[test]
    fn adder_works_chunked() {
        let n_bits = 2;
        let (a, b) = (2u64, 3u64);
        let mut c = library::arithmetic::load_operands(n_bits, a, b);
        c.extend(&library::ripple_carry_adder(n_bits));
        let config = testkit::cfg(2, CodecSpec::ZeroRle);
        let store = testkit::zero_store(c.n_qubits(), 2, &config);
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let dense = store.to_dense().unwrap();
        let hot: Vec<usize> = (0..dense.len())
            .filter(|&i| dense[i].norm() > 0.5)
            .collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(
            library::arithmetic::decode_sum(n_bits, hot[0] as u64),
            a + b
        );
    }
}
