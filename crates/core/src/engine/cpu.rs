//! The compressed CPU engine.
//!
//! Executes a circuit directly against the [`CompressedStateVector`]:
//! for every stage of the offline plan, every chunk group is decompressed
//! into a working buffer, all of the stage's gates are applied (specialized
//! to the group), and the chunks are recompressed — with groups distributed
//! over "idle core" workers (paper Fig. 2, step 5).

use crate::config::MemQSimConfig;
use crate::engine::{EngineError, Granularity, StoreTelemetryGuard};
use crate::planner::chunk_groups;
use crate::specialize::{specialize, GroupContext, Specialized};
use crate::store::CompressedStateVector;
use mq_circuit::partition::{partition, partition_per_gate, PartitionConfig, Plan};
use mq_circuit::Circuit;
use mq_num::parallel::par_for;
use mq_num::Complex64;
use mq_telemetry::{Role, RunTelemetry, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Timing and traffic report from a compressed-CPU run.
///
/// All duration fields are *derived* from the run's [`RunTelemetry`]
/// timeline (per-role busy times), so they agree with the span record by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRunReport {
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cumulative time in chunk decompression (summed across workers).
    pub decompress: Duration,
    /// Cumulative time applying gates.
    pub apply: Duration,
    /// Cumulative time in chunk recompression.
    pub compress: Duration,
    /// Number of stages executed.
    pub stages: usize,
    /// Total chunk visits (decompress+recompress rounds).
    pub chunk_visits: usize,
    /// Gates applied (after specialization; skipped gates not counted).
    pub gates_applied: usize,
    /// Whole-buffer scalar multiplications applied.
    pub scalars_applied: usize,
    /// Peak resident compressed bytes during the run.
    pub peak_compressed_bytes: usize,
    /// Peak resident bytes including the residency cache (compressed +
    /// decompressed cache copies) — the footprint to hold against a memory
    /// budget when `cache_bytes > 0`.
    pub peak_resident_bytes: usize,
    /// Peak transient working-buffer bytes (per-worker buffers).
    pub peak_buffer_bytes: usize,
    /// The full span/counter record the durations above derive from.
    pub telemetry: RunTelemetry,
}

/// Builds the plan for `circuit` under `cfg` at the given granularity,
/// optionally running the commutation-aware reorder pass first.
pub fn build_plan(circuit: &Circuit, cfg: &MemQSimConfig, granularity: Granularity) -> Plan {
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    let reordered;
    let circuit = if cfg.reorder {
        reordered = mq_circuit::reorder::reorder_for_locality(circuit, chunk_bits);
        &reordered
    } else {
        circuit
    };
    match granularity {
        Granularity::Staged => partition(
            circuit,
            &PartitionConfig {
                chunk_bits,
                max_high_qubits: cfg.max_high_qubits,
            },
        ),
        Granularity::PerGate => partition_per_gate(circuit, chunk_bits),
    }
}

/// Runs `circuit` against `store` on the CPU.
///
/// # Panics
/// Panics if the store geometry does not match `cfg`/`circuit` (construct
/// the store with the same config), or if a gate exceeds
/// `cfg.max_high_qubits` (plan-time invariant).
pub fn run(
    store: &CompressedStateVector,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    granularity: Granularity,
) -> Result<CpuRunReport, EngineError> {
    cfg.validate().map_err(EngineError::Config)?;
    assert_eq!(store.n_qubits(), circuit.n_qubits(), "width mismatch");
    assert_eq!(
        store.chunk_bits(),
        cfg.effective_chunk_bits(circuit.n_qubits()),
        "store chunk size disagrees with config"
    );

    let telemetry = Telemetry::new();
    store.attach_telemetry(telemetry.clone());
    let _store_guard = StoreTelemetryGuard(store);
    // Hot-chunk residency cache: loads of resident chunks skip the codec
    // entirely; stores defer recompression to eviction or the final flush.
    store.set_cache(cfg.cache_bytes, cfg.cache_policy);
    let cache_enabled = cfg.cache_bytes > 0;

    let plan = build_plan(circuit, cfg, granularity);
    let chunk_amps = store.chunk_amps();

    let gates_applied = AtomicUsize::new(0);
    let scalars_applied = AtomicUsize::new(0);
    let first_error = parking_lot::Mutex::new(None::<EngineError>);
    let mut chunk_visits = 0usize;
    let mut peak_buffer_bytes = 0usize;

    for (si, stage) in plan.stages.iter().enumerate() {
        let mut groups = chunk_groups(plan.n_qubits, plan.chunk_bits, stage);
        if cache_enabled {
            // Visit groups with the most cache-resident members first so a
            // stage harvests its hits before misses evict them.
            let resident: std::collections::HashSet<usize> =
                store.resident_chunks().into_iter().collect();
            groups.sort_by_cached_key(|g| {
                std::cmp::Reverse(g.iter().filter(|c| resident.contains(c)).count())
            });
        }
        chunk_visits += groups.iter().map(Vec::len).sum::<usize>();
        let group_amps = stage.group_size() * chunk_amps;
        peak_buffer_bytes = peak_buffer_bytes.max(cfg.workers.min(groups.len()) * group_amps * 16);

        par_for(groups.len(), cfg.workers, |gi| {
            if first_error.lock().is_some() {
                return;
            }
            let group = &groups[gi];
            let mut buffer = vec![Complex64::ZERO; group_amps];

            // Decompress members into their buffer slots.
            {
                let _span = telemetry.stage_span(Role::Decompress, si as u32);
                for (j, &chunk) in group.iter().enumerate() {
                    if let Err(e) =
                        store.load_chunk(chunk, &mut buffer[j * chunk_amps..(j + 1) * chunk_amps])
                    {
                        *first_error.lock() = Some(e.into());
                        return;
                    }
                }
            }

            // Apply all stage gates, specialized to this group.
            let apply_span = telemetry.stage_span(Role::CpuApply, si as u32);
            let ctx = GroupContext {
                chunk_bits: plan.chunk_bits,
                high: &stage.high_qubits,
                base_chunk: group[0],
            };
            for gate in &stage.gates {
                match specialize(gate, &ctx) {
                    Specialized::Skip => {}
                    Specialized::Scalar(s) => {
                        for z in buffer.iter_mut() {
                            *z *= s;
                        }
                        scalars_applied.fetch_add(1, Ordering::Relaxed);
                    }
                    Specialized::Apply(g) => {
                        mq_statevec::apply::apply_gate(&mut buffer, &g, 1);
                        gates_applied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            drop(apply_span);

            // Recompress.
            let _span = telemetry.stage_span(Role::Recompress, si as u32);
            for (j, &chunk) in group.iter().enumerate() {
                store.store_chunk(chunk, &buffer[j * chunk_amps..(j + 1) * chunk_amps]);
            }
        });

        if let Some(e) = first_error.lock().take() {
            return Err(e);
        }
    }

    // Write back dirty resident chunks so the compressed representation is
    // coherent for callers (compression ratio, direct slot readers); the
    // entries stay resident and clean, so a following `to_dense` still hits.
    store.flush();

    let record = telemetry.finish();
    Ok(CpuRunReport {
        wall: record.wall,
        decompress: record.busy(Role::Decompress),
        apply: record.busy(Role::CpuApply),
        compress: record.busy(Role::Recompress),
        stages: plan.stages.len(),
        chunk_visits,
        gates_applied: gates_applied.into_inner(),
        scalars_applied: scalars_applied.into_inner(),
        peak_compressed_bytes: store.peak_compressed_bytes(),
        peak_resident_bytes: store.peak_resident_bytes(),
        peak_buffer_bytes,
        telemetry: record,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_num::metrics::{fidelity, max_amp_err};
    use std::sync::Arc;

    fn cfg(chunk_bits: u32, codec: CodecSpec) -> MemQSimConfig {
        MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec,
            workers: 1,
            ..Default::default()
        }
    }

    fn run_and_compare(
        circuit: &mq_circuit::Circuit,
        cfg: &MemQSimConfig,
        tol: f64,
    ) -> CpuRunReport {
        let store = CompressedStateVector::zero_state(
            circuit.n_qubits(),
            cfg.effective_chunk_bits(circuit.n_qubits()),
            Arc::from(cfg.codec.build()),
        );
        let report = run(&store, circuit, cfg, Granularity::Staged).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(circuit, 0);
        let err = max_amp_err(&got, &want);
        assert!(err <= tol, "{}: max amp err {err} > {tol}", circuit.name());
        report
    }

    #[test]
    fn suite_matches_dense_reference_lossless() {
        for c in library::standard_suite(7) {
            for chunk_bits in [3u32, 5, 7] {
                run_and_compare(&c, &cfg(chunk_bits, CodecSpec::Fpc), 1e-10);
            }
        }
    }

    #[test]
    fn suite_matches_dense_reference_lossy() {
        for c in library::standard_suite(6) {
            let report = run_and_compare(&c, &cfg(3, CodecSpec::Sz { eb: 1e-12 }), 1e-6);
            assert!(report.gates_applied > 0);
        }
    }

    #[test]
    fn lossy_fidelity_stays_high() {
        let c = library::qft(8);
        let config = cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = CompressedStateVector::zero_state(8, 4, Arc::from(config.codec.build()));
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(&c, 0);
        let f = fidelity(&got, &want);
        assert!(f > 0.999999, "fidelity {f}");
    }

    #[test]
    fn multithreaded_run_matches_single_threaded() {
        let c = library::random_circuit(8, 8, 5);
        let mk = |workers| MemQSimConfig {
            workers,
            ..cfg(3, CodecSpec::Fpc)
        };
        let s1 = CompressedStateVector::zero_state(8, 3, Arc::from(CodecSpec::Fpc.build()));
        run(&s1, &c, &mk(1), Granularity::Staged).unwrap();
        let s4 = CompressedStateVector::zero_state(8, 3, Arc::from(CodecSpec::Fpc.build()));
        run(&s4, &c, &mk(4), Granularity::Staged).unwrap();
        let err = max_amp_err(&s1.to_dense().unwrap(), &s4.to_dense().unwrap());
        assert!(err < 1e-12, "thread count changed the result: {err}");
    }

    #[test]
    fn per_gate_granularity_same_result_more_visits() {
        let c = library::qft(7);
        let config = cfg(3, CodecSpec::Fpc);
        let staged_store =
            CompressedStateVector::zero_state(7, 3, Arc::from(CodecSpec::Fpc.build()));
        let staged = run(&staged_store, &c, &config, Granularity::Staged).unwrap();
        let pg_store = CompressedStateVector::zero_state(7, 3, Arc::from(CodecSpec::Fpc.build()));
        let per_gate = run(&pg_store, &c, &config, Granularity::PerGate).unwrap();
        let err = max_amp_err(
            &staged_store.to_dense().unwrap(),
            &pg_store.to_dense().unwrap(),
        );
        assert!(err < 1e-12);
        assert!(
            per_gate.chunk_visits > staged.chunk_visits,
            "per-gate {} vs staged {}",
            per_gate.chunk_visits,
            staged.chunk_visits
        );
        assert_eq!(per_gate.stages, c.len());
    }

    #[test]
    fn grover_finds_marked_state_through_compression() {
        let n = 7;
        let marked = 0b1011010u64;
        let c = library::grover(n, marked, library::optimal_grover_iterations(n));
        let config = cfg(3, CodecSpec::Sz { eb: 1e-11 });
        let store = CompressedStateVector::zero_state(n, 3, Arc::from(config.codec.build()));
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let p = store.probability(marked as usize).unwrap();
        assert!(p > 0.9, "p(marked) = {p}");
    }

    #[test]
    fn norm_is_preserved() {
        let c = library::hardware_efficient_ansatz(8, 2, 3);
        let config = cfg(4, CodecSpec::Sz { eb: 1e-10 });
        let store = CompressedStateVector::zero_state(8, 4, Arc::from(config.codec.build()));
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let n = store.norm().unwrap();
        assert!((n - 1.0).abs() < 1e-5, "norm {n}");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let c = library::ghz(8);
        let config = cfg(4, CodecSpec::Fpc);
        let store = CompressedStateVector::zero_state(8, 4, Arc::from(config.codec.build()));
        let r = run(&store, &c, &config, Granularity::Staged).unwrap();
        assert!(r.stages >= 1);
        assert!(r.chunk_visits >= store.chunk_count());
        assert!(r.peak_compressed_bytes > 0);
        assert!(r.peak_buffer_bytes > 0);
        // GHZ has no outside-diagonal gates, so no scalars.
        assert_eq!(r.scalars_applied, 0);
        // Durations are derived from the telemetry record, not separate
        // accumulators, so they agree with it exactly.
        assert!(r.telemetry.balanced());
        assert_eq!(r.decompress, r.telemetry.busy(Role::Decompress));
        assert_eq!(r.apply, r.telemetry.busy(Role::CpuApply));
        assert_eq!(r.compress, r.telemetry.busy(Role::Recompress));
        assert_eq!(
            r.chunk_visits as u64,
            r.telemetry.counter(mq_telemetry::Counter::ChunkVisits)
        );
        assert!(r.telemetry.counter(mq_telemetry::Counter::BytesCompressed) > 0);
    }

    #[test]
    fn rejects_invalid_config() {
        let c = library::ghz(4);
        let mut config = cfg(2, CodecSpec::Fpc);
        config.workers = 0;
        let store = CompressedStateVector::zero_state(4, 2, Arc::from(CodecSpec::Fpc.build()));
        assert!(matches!(
            run(&store, &c, &config, Granularity::Staged),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn adder_works_chunked() {
        let n_bits = 2;
        let (a, b) = (2u64, 3u64);
        let mut c = library::arithmetic::load_operands(n_bits, a, b);
        c.extend(&library::ripple_carry_adder(n_bits));
        let config = cfg(2, CodecSpec::ZeroRle);
        let store =
            CompressedStateVector::zero_state(c.n_qubits(), 2, Arc::from(config.codec.build()));
        run(&store, &c, &config, Granularity::Staged).unwrap();
        let dense = store.to_dense().unwrap();
        let hot: Vec<usize> = (0..dense.len())
            .filter(|&i| dense[i].norm() > 0.5)
            .collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(
            library::arithmetic::decode_sum(n_bits, hot[0] as u64),
            a + b
        );
    }
}
