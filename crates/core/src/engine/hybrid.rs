//! The hybrid CPU/GPU pipeline engine — the paper's Figure 2.
//!
//! Per stage, every chunk group flows through the six steps:
//!
//! 1. CPU decompresses the group's chunks into a pinned staging buffer;
//! 2. the buffer is copied host→device (bulk copy — the Table 1 winner);
//! 3. the device executes the stage's (specialized) gate kernels
//!    asynchronously;
//! 4. results are copied device→host into the same pinned buffer;
//! 5. "idle cores" optionally take a share of the groups entirely on the
//!    CPU (`cpu_share`);
//! 6. the CPU recompresses the group back into main memory.
//!
//! In pipelined mode three roles run concurrently — decompressor, device
//! issuer, recompressor — connected by bounded channels with
//! `pipeline_buffers` in-flight staging slots (2 = double buffering), so
//! step 1 of group `k+1` overlaps steps 2–4 of group `k`. Stage boundaries
//! are barriers (a stage may read chunks the previous stage wrote).

use crate::config::MemQSimConfig;
use crate::engine::EngineError;
use crate::engine::Granularity;
use crate::engine::{DeviceTelemetryGuard, StoreTelemetryGuard};
use crate::planner::chunk_groups;
use crate::specialize::{specialize, GroupContext, Specialized};
use crate::store::CompressedStateVector;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use mq_circuit::{Circuit, Gate};
use mq_device::{Device, DeviceBuffer, PinnedBuffer, StreamStats};
use mq_num::parallel::par_for;
use mq_num::Complex64;
use mq_telemetry::{Role, RunTelemetry, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Report from a hybrid run.
///
/// The `decompress` / `compress` / `cpu_apply` durations are *derived* from
/// the run's [`RunTelemetry`] timeline (per-role busy times), so they agree
/// with the span record by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridRunReport {
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cumulative CPU time decompressing chunks.
    pub decompress: Duration,
    /// Cumulative CPU time recompressing chunks.
    pub compress: Duration,
    /// Cumulative CPU time applying gates on the CPU share of groups.
    pub cpu_apply: Duration,
    /// Device-side accounting (modeled H2D/kernel/D2H and real time).
    pub device: StreamStats,
    /// Groups routed through the device.
    pub groups_device: usize,
    /// Groups handled by CPU idle cores (step 5).
    pub groups_cpu: usize,
    /// Stages executed.
    pub stages: usize,
    /// Peak resident compressed bytes.
    pub peak_compressed_bytes: usize,
    /// Peak resident bytes including the residency cache (compressed +
    /// decompressed cache copies).
    pub peak_resident_bytes: usize,
    /// Host pinned staging bytes held by the pipeline.
    pub pinned_bytes: usize,
    /// Device working-buffer bytes held by the pipeline.
    pub device_buffer_bytes: usize,
    /// Modeled end-to-end time with no overlap (sum of all phases).
    pub modeled_serial: Duration,
    /// Modeled end-to-end time with perfect phase overlap
    /// (max of CPU-side and device-side busy time).
    pub modeled_overlapped: Duration,
    /// The full span/counter record the durations above derive from.
    pub telemetry: RunTelemetry,
}

/// One unit of pipeline work: a chunk group, staged and specialized.
struct Work {
    group: Vec<usize>,
    amps: usize,
    slot: usize,
    stage: u32,
    gates: Vec<Gate>,
    scalar: Complex64,
}

enum ToDevice {
    Work(Work),
    StageEnd,
}

enum ToCompleter {
    Work(Work, mq_device::Event),
    StageEnd,
}

/// Runs `circuit` against `store` through `device`. With `pipelined =
/// false` every group completes before the next starts (the Fig. 2 ablation
/// baseline); with `true` the three roles overlap.
pub fn run(
    store: &CompressedStateVector,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    device: &Device,
    pipelined: bool,
) -> Result<HybridRunReport, EngineError> {
    cfg.validate().map_err(EngineError::Config)?;
    assert_eq!(store.n_qubits(), circuit.n_qubits(), "width mismatch");
    let chunk_bits = cfg.effective_chunk_bits(circuit.n_qubits());
    assert_eq!(store.chunk_bits(), chunk_bits, "store chunk size mismatch");

    // One telemetry record for the whole run, shared by all three pipeline
    // roles; the store and the device feed their counters into it.
    let telemetry = Telemetry::new();
    store.attach_telemetry(telemetry.clone());
    let _store_guard = StoreTelemetryGuard(store);
    device.attach_telemetry(telemetry.clone());
    let _device_guard = DeviceTelemetryGuard(device);
    // Hot-chunk residency cache (shared with the CPU engine): resident
    // loads skip the codec; dirty stores recompress on eviction/flush.
    store.set_cache(cfg.cache_bytes, cfg.cache_policy);
    let cache_enabled = cfg.cache_bytes > 0;

    let plan = super::cpu::build_plan(circuit, cfg, Granularity::Staged);
    let chunk_amps = store.chunk_amps();
    let max_group_amps = chunk_amps << cfg.max_high_qubits;
    let slots = cfg.pipeline_buffers.max(1);

    // Staging: `slots` pinned host buffers + matching device buffers.
    let pinned: Vec<PinnedBuffer> = (0..slots)
        .map(|_| PinnedBuffer::new(max_group_amps))
        .collect();
    let dev_bufs: Vec<DeviceBuffer> = (0..slots)
        .map(|_| device.alloc(max_group_amps))
        .collect::<Result<_, _>>()?;

    let groups_cpu = AtomicUsize::new(0);
    let groups_device = AtomicUsize::new(0);
    let error: Mutex<Option<EngineError>> = Mutex::new(None);

    let copy_stream = device.create_stream();
    // Dual-stream mode actually uses three streams (upload / compute /
    // download) so the next group's H2D overlaps this group's kernels and
    // the previous group's D2H — the standard CUDA double-buffering shape.
    let extra_streams = if cfg.dual_stream {
        Some((device.create_stream(), device.create_stream()))
    } else {
        None
    };

    let result: Result<(), EngineError> = crossbeam::thread::scope(|scope| {
        let (to_device_tx, to_device_rx) = bounded::<ToDevice>(slots);
        let (to_completer_tx, to_completer_rx) = bounded::<ToCompleter>(slots);
        let (pool_tx, pool_rx) = bounded::<usize>(slots);
        let (stage_ack_tx, stage_ack_rx) = bounded::<()>(1);
        for i in 0..slots {
            pool_tx.send(i).expect("pool has capacity");
        }

        // --- device issuer ------------------------------------------------
        let copy_ref = &copy_stream;
        let extra_ref = extra_streams.as_ref();
        let pinned_ref = &pinned;
        let dev_bufs_ref = &dev_bufs;
        let issuer_telemetry = telemetry.clone();
        scope.spawn(move |_| {
            while let Ok(msg) = to_completer_forwarder(&to_device_rx) {
                match msg {
                    ToDevice::StageEnd => {
                        if to_completer_tx.send(ToCompleter::StageEnd).is_err() {
                            break;
                        }
                    }
                    ToDevice::Work(work) => {
                        let span = issuer_telemetry.stage_span(Role::DeviceIssue, work.stage);
                        let pb = &pinned_ref[work.slot];
                        let db = dev_bufs_ref[work.slot];
                        let event = match extra_ref {
                            // Multi-stream: uploads, kernels and downloads
                            // each get their own in-order stream, linked by
                            // events, so group k+1's H2D overlaps group k's
                            // kernels and group k-1's D2H — the paper's
                            // step (3): kernels run "asynchronously during
                            // the CPU-GPU data transfer".
                            Some((compute, down)) => {
                                copy_ref.h2d(pb, 0, db, 0, work.amps);
                                let uploaded = copy_ref.record_event();
                                compute.wait_event(&uploaded);
                                for g in &work.gates {
                                    compute.run_gate_region(db, work.amps, g.clone());
                                }
                                let kernels_done = compute.record_event();
                                down.wait_event(&kernels_done);
                                down.d2h(db, 0, pb, 0, work.amps);
                                down.record_event()
                            }
                            None => {
                                copy_ref.h2d(pb, 0, db, 0, work.amps);
                                for g in &work.gates {
                                    // The kernel operates on the leading
                                    // `amps` region of the slot buffer.
                                    copy_ref.run_gate_region(db, work.amps, g.clone());
                                }
                                copy_ref.d2h(db, 0, pb, 0, work.amps);
                                copy_ref.record_event()
                            }
                        };
                        // Close before the send: a full channel is
                        // backpressure wait, not device-issue work.
                        drop(span);
                        if to_completer_tx
                            .send(ToCompleter::Work(work, event))
                            .is_err()
                        {
                            break;
                        }
                    }
                }
            }
        });

        // --- completer / recompressor --------------------------------------
        let store_ref = store;
        let groups_device_ref = &groups_device;
        let completer_telemetry = telemetry.clone();
        scope.spawn(move |_| {
            while let Ok(msg) = to_completer_rx.recv() {
                match msg {
                    ToCompleter::StageEnd => {
                        if stage_ack_tx.send(()).is_err() {
                            break;
                        }
                    }
                    ToCompleter::Work(work, event) => {
                        // Waiting on the device is idle time, not recompress
                        // work; the span opens only once results are back.
                        event.wait();
                        let _span = completer_telemetry.stage_span(Role::Recompress, work.stage);
                        pinned_ref[work.slot].write(|data| {
                            if work.scalar != Complex64::ONE {
                                for z in &mut data[..work.amps] {
                                    *z *= work.scalar;
                                }
                            }
                            for (j, &chunk) in work.group.iter().enumerate() {
                                store_ref.store_chunk(
                                    chunk,
                                    &data[j * chunk_amps..(j + 1) * chunk_amps],
                                );
                            }
                        });
                        groups_device_ref.fetch_add(1, Ordering::Relaxed);
                        let _ = pool_tx.send(work.slot);
                    }
                }
            }
        });

        // --- producer (this thread): decompress + specialize ---------------
        'stages: for (si, stage) in plan.stages.iter().enumerate() {
            let mut groups = chunk_groups(plan.n_qubits, plan.chunk_bits, stage);
            if cache_enabled {
                // Visit groups with the most cache-resident members first
                // so a stage harvests its hits before misses evict them.
                let resident: std::collections::HashSet<usize> =
                    store.resident_chunks().into_iter().collect();
                groups.sort_by_cached_key(|g| {
                    std::cmp::Reverse(g.iter().filter(|c| resident.contains(c)).count())
                });
            }
            let n_cpu = ((groups.len() as f64) * cfg.cpu_share).round() as usize;
            let (cpu_groups, dev_groups) = groups.split_at(n_cpu.min(groups.len()));

            // Step 5: idle-core CPU share, processed before device issue so
            // both halves of the stage stay within the stage barrier.
            if !cpu_groups.is_empty() {
                process_groups_on_cpu(
                    store,
                    stage,
                    cpu_groups,
                    plan.chunk_bits,
                    cfg.workers,
                    &telemetry,
                    si as u32,
                    &error,
                );
                groups_cpu.fetch_add(cpu_groups.len(), Ordering::Relaxed);
                if error.lock().is_some() {
                    break 'stages;
                }
            }

            for group in dev_groups {
                if error.lock().is_some() {
                    break 'stages;
                }
                // Acquire a staging slot (poll so a dead completer cannot
                // wedge the producer).
                let slot = loop {
                    match pool_rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(s) => break s,
                        Err(RecvTimeoutError::Timeout) => {
                            if error.lock().is_some() {
                                break 'stages;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break 'stages,
                    }
                };
                let amps = group.len() * chunk_amps;
                let mut failed = None;
                {
                    let _span = telemetry.stage_span(Role::Decompress, si as u32);
                    pinned[slot].write(|data| {
                        for (j, &chunk) in group.iter().enumerate() {
                            if let Err(e) = store
                                .load_chunk(chunk, &mut data[j * chunk_amps..(j + 1) * chunk_amps])
                            {
                                failed = Some(e);
                                return;
                            }
                        }
                    });
                }
                if let Some(e) = failed {
                    *error.lock() = Some(e.into());
                    break 'stages;
                }

                let ctx = GroupContext {
                    chunk_bits: plan.chunk_bits,
                    high: &stage.high_qubits,
                    base_chunk: group[0],
                };
                let mut gates = Vec::new();
                let mut scalar = Complex64::ONE;
                for gate in &stage.gates {
                    match specialize(gate, &ctx) {
                        Specialized::Skip => {}
                        Specialized::Scalar(s) => scalar *= s,
                        Specialized::Apply(g) => gates.push(g),
                    }
                }
                let work = Work {
                    group: group.clone(),
                    amps,
                    slot,
                    stage: si as u32,
                    gates,
                    scalar,
                };
                if to_device_tx.send(ToDevice::Work(work)).is_err() {
                    break 'stages;
                }
                if !pipelined {
                    // Serial ablation: drain the pipeline after every group.
                    if to_device_tx.send(ToDevice::StageEnd).is_err() {
                        break 'stages;
                    }
                    if stage_ack_rx.recv().is_err() {
                        break 'stages;
                    }
                }
            }
            if pipelined {
                if to_device_tx.send(ToDevice::StageEnd).is_err() {
                    break 'stages;
                }
                if stage_ack_rx.recv().is_err() {
                    break 'stages;
                }
            }
        }
        drop(to_device_tx); // shut the pipeline down
        Ok(())
    })
    .expect("pipeline thread panicked");
    result?;

    let mut device_stats = copy_stream.synchronize()?;
    if let Some((compute, down)) = &extra_streams {
        for s in [compute.synchronize()?, down.synchronize()?] {
            // Streams share the device epoch: the device is done when the
            // last stream is; category busy-times add.
            device_stats.modeled = device_stats.modeled.max(s.modeled);
            device_stats.modeled_h2d += s.modeled_h2d;
            device_stats.modeled_d2h += s.modeled_d2h;
            device_stats.modeled_kernel += s.modeled_kernel;
            device_stats.modeled_scatter += s.modeled_scatter;
            device_stats.modeled_wait += s.modeled_wait;
            device_stats.real += s.real;
            device_stats.commands += s.commands;
            device_stats.bytes_h2d += s.bytes_h2d;
            device_stats.bytes_d2h += s.bytes_d2h;
        }
    }
    for db in dev_bufs {
        device.free(db)?;
    }
    if let Some(e) = error.lock().take() {
        return Err(e);
    }

    // Write back dirty resident chunks so the compressed representation is
    // coherent for callers; entries stay resident for follow-up reads.
    store.flush();

    // Snapshot after the pipeline threads joined and the streams drained,
    // so every span is closed and every device counter has landed.
    let record = telemetry.finish();
    let decompress = record.busy(Role::Decompress);
    let compress = record.busy(Role::Recompress);
    let cpu_apply = record.busy(Role::CpuApply);
    let cpu_side = decompress + compress + cpu_apply;
    Ok(HybridRunReport {
        wall: record.wall,
        decompress,
        compress,
        cpu_apply,
        device: device_stats,
        groups_device: groups_device.into_inner(),
        groups_cpu: groups_cpu.into_inner(),
        stages: plan.stages.len(),
        peak_compressed_bytes: store.peak_compressed_bytes(),
        peak_resident_bytes: store.peak_resident_bytes(),
        pinned_bytes: slots * max_group_amps * 16,
        device_buffer_bytes: slots * max_group_amps * 16,
        modeled_serial: cpu_side + device_stats.modeled,
        modeled_overlapped: cpu_side.max(device_stats.modeled),
        telemetry: record,
    })
}

/// Forwards a receive, keeping the issuer loop tidy.
fn to_completer_forwarder(
    rx: &Receiver<ToDevice>,
) -> Result<ToDevice, crossbeam::channel::RecvError> {
    rx.recv()
}

/// Step 5: process a slice of groups entirely on CPU workers.
#[allow(clippy::too_many_arguments)]
fn process_groups_on_cpu(
    store: &CompressedStateVector,
    stage: &mq_circuit::partition::Stage,
    groups: &[Vec<usize>],
    chunk_bits: u32,
    workers: usize,
    telemetry: &Telemetry,
    stage_idx: u32,
    error: &Mutex<Option<EngineError>>,
) {
    let chunk_amps = 1usize << chunk_bits;
    par_for(groups.len(), workers, |gi| {
        if error.lock().is_some() {
            return;
        }
        let group = &groups[gi];
        let mut buffer = vec![Complex64::ZERO; group.len() * chunk_amps];
        {
            let _span = telemetry.stage_span(Role::Decompress, stage_idx);
            for (j, &chunk) in group.iter().enumerate() {
                if let Err(e) =
                    store.load_chunk(chunk, &mut buffer[j * chunk_amps..(j + 1) * chunk_amps])
                {
                    *error.lock() = Some(e.into());
                    return;
                }
            }
        }
        let apply_span = telemetry.stage_span(Role::CpuApply, stage_idx);
        let ctx = GroupContext {
            chunk_bits,
            high: &stage.high_qubits,
            base_chunk: group[0],
        };
        for gate in &stage.gates {
            match specialize(gate, &ctx) {
                Specialized::Skip => {}
                Specialized::Scalar(s) => {
                    for z in buffer.iter_mut() {
                        *z *= s;
                    }
                }
                Specialized::Apply(g) => mq_statevec::apply::apply_gate(&mut buffer, &g, 1),
            }
        }
        drop(apply_span);
        let _span = telemetry.stage_span(Role::Recompress, stage_idx);
        for (j, &chunk) in group.iter().enumerate() {
            store.store_chunk(chunk, &buffer[j * chunk_amps..(j + 1) * chunk_amps]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;
    use std::sync::Arc;

    fn cfg(chunk_bits: u32) -> MemQSimConfig {
        MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            workers: 1,
            ..Default::default()
        }
    }

    fn device() -> Device {
        Device::new(DeviceSpec::tiny_test(1 << 20))
    }

    fn run_and_compare(
        circuit: &Circuit,
        config: &MemQSimConfig,
        pipelined: bool,
    ) -> HybridRunReport {
        let store = CompressedStateVector::zero_state(
            circuit.n_qubits(),
            config.effective_chunk_bits(circuit.n_qubits()),
            Arc::from(config.codec.build()),
        );
        let dev = device();
        let report = run(&store, circuit, config, &dev, pipelined).unwrap();
        let got = store.to_dense().unwrap();
        let want = run_dense(circuit, 0);
        let err = max_amp_err(&got, &want);
        assert!(err < 1e-10, "{}: err {err}", circuit.name());
        report
    }

    #[test]
    fn suite_matches_dense_reference_pipelined() {
        for c in library::standard_suite(6) {
            let r = run_and_compare(&c, &cfg(3), true);
            assert!(r.groups_device > 0, "{}", c.name());
            assert!(r.device.modeled_h2d > Duration::ZERO);
        }
    }

    #[test]
    fn suite_matches_dense_reference_serial() {
        for c in library::standard_suite(6) {
            run_and_compare(&c, &cfg(3), false);
        }
    }

    #[test]
    fn cpu_share_splits_work_and_stays_correct() {
        let c = library::qft(7);
        for share in [0.0, 0.3, 0.7, 1.0] {
            let config = MemQSimConfig {
                cpu_share: share,
                ..cfg(3)
            };
            let r = run_and_compare(&c, &config, true);
            if share == 0.0 {
                assert_eq!(r.groups_cpu, 0);
            }
            if share == 1.0 {
                assert_eq!(r.groups_device, 0);
            }
            if share > 0.0 && share < 1.0 {
                assert!(r.groups_cpu > 0 && r.groups_device > 0, "share {share}");
            }
        }
    }

    #[test]
    fn more_pipeline_buffers_same_answer() {
        let c = library::random_circuit(7, 6, 2);
        for buffers in [1usize, 2, 4] {
            let config = MemQSimConfig {
                pipeline_buffers: buffers,
                ..cfg(3)
            };
            run_and_compare(&c, &config, true);
        }
    }

    #[test]
    fn device_oom_surfaces_as_engine_error() {
        let c = library::ghz(8);
        let config = cfg(4);
        let store = CompressedStateVector::zero_state(8, 4, Arc::from(config.codec.build()));
        // Device too small for even one staging buffer (2^(4+2) amps needed).
        let dev = Device::new(DeviceSpec::tiny_test(8));
        match run(&store, &c, &config, &dev, true) {
            Err(EngineError::Device(mq_device::DeviceError::OutOfMemory { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modeled_overlap_never_exceeds_serial() {
        let c = library::qft(7);
        let r = run_and_compare(&c, &cfg(3), true);
        assert!(r.modeled_overlapped <= r.modeled_serial);
        assert_eq!(
            r.modeled_serial,
            r.decompress + r.compress + r.cpu_apply + r.device.modeled
        );
    }

    #[test]
    fn report_durations_derive_from_telemetry() {
        use mq_telemetry::Counter;
        let c = library::qft(7);
        let r = run_and_compare(&c, &cfg(3), true);
        assert!(r.telemetry.balanced());
        assert_eq!(r.decompress, r.telemetry.busy(Role::Decompress));
        assert_eq!(r.compress, r.telemetry.busy(Role::Recompress));
        assert_eq!(r.cpu_apply, r.telemetry.busy(Role::CpuApply));
        assert!(r.telemetry.busy(Role::DeviceIssue) > Duration::ZERO);
        // Device counters agree with the stream's own accounting.
        assert_eq!(
            r.device.bytes_h2d as u64,
            r.telemetry.counter(Counter::BytesH2d)
        );
        assert_eq!(
            r.device.bytes_d2h as u64,
            r.telemetry.counter(Counter::BytesD2h)
        );
        assert!(r.telemetry.counter(Counter::KernelLaunches) > 0);
        assert!(r.telemetry.counter(Counter::BytesCompressed) > 0);
    }

    #[test]
    fn serial_run_records_no_role_overlap() {
        // The ablation drains the pipeline after every group, so no two
        // spans of different roles can ever be open at once.
        let c = library::qft(7);
        let r = run_and_compare(&c, &cfg(3), false);
        assert!(r.telemetry.balanced());
        assert!(!r.telemetry.has_role_overlap());
        assert_eq!(r.telemetry.overlap(), Duration::ZERO);
    }

    #[test]
    fn grover_through_the_full_pipeline() {
        let n = 6;
        let marked = 0b110101u64;
        let c = library::grover(n, marked, library::optimal_grover_iterations(n));
        let config = MemQSimConfig {
            codec: CodecSpec::Sz { eb: 1e-11 },
            ..cfg(3)
        };
        let store = CompressedStateVector::zero_state(n, 3, Arc::from(config.codec.build()));
        let dev = device();
        run(&store, &c, &config, &dev, true).unwrap();
        let p = store.probability(marked as usize).unwrap();
        assert!(p > 0.9, "p = {p}");
    }

    #[test]
    fn report_byte_accounting() {
        let c = library::ghz(7);
        let r = run_and_compare(&c, &cfg(3), true);
        // 2 slots * 2^(3+2) amps * 16 bytes.
        assert_eq!(r.pinned_bytes, 2 * (1 << 5) * 16);
        assert_eq!(r.device_buffer_bytes, r.pinned_bytes);
        assert!(r.peak_compressed_bytes > 0);
        assert!(r.peak_resident_bytes >= r.peak_compressed_bytes);
    }

    #[test]
    fn cached_pipeline_matches_and_cuts_codec_traffic() {
        use mq_telemetry::Counter;
        let c = library::qft(7);
        let base = cfg(3);
        let cached = MemQSimConfig {
            // Room for half the chunks (16 chunks of 2^3 amps).
            cache_bytes: 8 * (1 << 3) * 16,
            ..base
        };
        let uncached_r = run_and_compare(&c, &base, true);
        let cached_r = run_and_compare(&c, &cached, true);
        let visits = cached_r.telemetry.counter(Counter::ChunkVisits);
        assert_eq!(
            cached_r.telemetry.counter(Counter::CacheHits)
                + cached_r.telemetry.counter(Counter::CacheMisses),
            visits
        );
        assert!(cached_r.telemetry.counter(Counter::CacheHits) > 0);
        assert!(
            cached_r.telemetry.counter(Counter::BytesDecompressed)
                < uncached_r.telemetry.counter(Counter::BytesDecompressed)
        );
        // Cache bytes are accounted against the resident footprint.
        assert!(cached_r.peak_resident_bytes >= cached_r.peak_compressed_bytes);
    }
}

#[cfg(test)]
mod dual_stream_tests {
    use super::*;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;
    use std::sync::Arc;

    fn cfg(dual_stream: bool) -> MemQSimConfig {
        MemQSimConfig {
            chunk_bits: 3,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            workers: 1,
            dual_stream,
            ..Default::default()
        }
    }

    #[test]
    fn dual_stream_matches_single_stream_exactly() {
        for circuit in library::standard_suite(7) {
            let mk = |ds: bool| {
                let store =
                    CompressedStateVector::zero_state(7, 3, Arc::from(CodecSpec::Fpc.build()));
                let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
                run(&store, &circuit, &cfg(ds), &dev, true).unwrap();
                store.to_dense().unwrap()
            };
            let single = mk(false);
            let dual = mk(true);
            let err = max_amp_err(&single, &dual);
            assert!(
                err < 1e-12,
                "{}: dual-stream drifted by {err}",
                circuit.name()
            );
            assert!(max_amp_err(&dual, &run_dense(&circuit, 0)) < 1e-10);
        }
    }

    #[test]
    fn dual_stream_overlaps_the_modeled_device_clock() {
        // Many groups with real kernel work: in dual-stream mode, group
        // k+1's H2D overlaps group k's kernels, so the device finishes
        // strictly earlier than the serial sum of its busy categories.
        let circuit = library::supremacy_like(12, 6, 8);
        let store = CompressedStateVector::zero_state(12, 3, Arc::from(CodecSpec::Fpc.build()));
        let dev = Device::new(DeviceSpec::tiny_test(1 << 14));
        let config = MemQSimConfig {
            chunk_bits: 3,
            ..cfg(true)
        };
        let r = run(&store, &circuit, &config, &dev, true).unwrap();
        let busy = r.device.modeled_h2d
            + r.device.modeled_d2h
            + r.device.modeled_kernel
            + r.device.modeled_scatter;
        assert!(
            r.device.modeled < busy,
            "no overlap: end {:?} vs busy sum {:?}",
            r.device.modeled,
            busy
        );
        assert!(r.device.modeled_wait > Duration::ZERO);
    }

    #[test]
    fn dual_stream_works_serial_and_with_cpu_share() {
        let circuit = library::qft(8);
        let want = run_dense(&circuit, 0);
        for (pipelined, share) in [(false, 0.0), (true, 0.5)] {
            let config = MemQSimConfig {
                cpu_share: share,
                ..cfg(true)
            };
            let store = CompressedStateVector::zero_state(8, 3, Arc::from(CodecSpec::Fpc.build()));
            let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
            run(&store, &circuit, &config, &dev, pipelined).unwrap();
            assert!(max_amp_err(&store.to_dense().unwrap(), &want) < 1e-10);
        }
    }
}

#[cfg(test)]
mod max_high_one_tests {
    use super::*;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;
    use std::sync::Arc;

    #[test]
    fn pair_only_scheduling_works_end_to_end() {
        // max_high_qubits = 1: every cross-chunk stage handles exactly one
        // pairing qubit, so groups are chunk *pairs* — the minimal working
        // set (GHZ/W/BV never need more).
        let cfg = MemQSimConfig {
            chunk_bits: 3,
            max_high_qubits: 1,
            codec: CodecSpec::Fpc,
            workers: 1,
            dual_stream: true,
            reorder: true,
            ..Default::default()
        };
        for circuit in [library::ghz(8), library::w_state(8)] {
            let store = CompressedStateVector::zero_state(8, 3, Arc::from(CodecSpec::Fpc.build()));
            let dev = Device::new(DeviceSpec::tiny_test(1 << 10));
            run(&store, &circuit, &cfg, &dev, true).unwrap();
            let err = max_amp_err(&store.to_dense().unwrap(), &run_dense(&circuit, 0));
            assert!(err < 1e-10, "{}: {err}", circuit.name());
        }
    }
}
