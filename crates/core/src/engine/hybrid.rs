//! The hybrid CPU/GPU pipeline engine — the paper's Figure 2.
//!
//! Per stage, every chunk group flows through the six steps:
//!
//! 1. CPU decompresses the group's chunks into a pinned staging buffer;
//! 2. the buffer is copied host→device (bulk copy — the Table 1 winner);
//! 3. the device executes the stage's (specialized) gate kernels
//!    asynchronously;
//! 4. results are copied device→host into the same pinned buffer;
//! 5. "idle cores" optionally take a share of the groups entirely on the
//!    CPU (`cpu_share`);
//! 6. the CPU recompresses the group back into main memory.
//!
//! In pipelined mode three roles run concurrently — decompressor, device
//! issuer, recompressor — connected by bounded channels with
//! `pipeline_buffers` in-flight staging slots (2 = double buffering), so
//! step 1 of group `k+1` overlaps steps 2–4 of group `k`. Stage boundaries
//! are barriers (a stage may read chunks the previous stage wrote).
//!
//! With `cfg.devices > 1` the whole issuer/completer pair is instantiated
//! once **per device**: each fleet member owns its own staging slots,
//! device buffers and streams, and the producer routes every group to the
//! device the driver's [`ShardPolicy`](crate::config::ShardPolicy) chose.
//! Groups within a stage touch disjoint chunk sets, so fleet runs are
//! bit-identical to single-device runs; only the modeled makespan (max
//! over devices) shrinks.
//!
//! The streaming skeleton (validation, plan, cache, ordering, accounting,
//! flush, report) lives in [`exec::run_with_executor`](super::exec); this
//! module contributes only the [`DevicePipelineExecutor`] compute path.

use crate::config::{FusionLevel, MemQSimConfig, TransferMode};
use crate::engine::exec::{
    apply_remap_on_store, process_groups_on_cpu, run_with_executor, ApplyCounters, ExecContext,
    ExecutorStats, SerialAdapter, StageBatchExecutor, StageWork,
};
use crate::engine::{EngineError, Granularity, RunReport};
use crate::specialize::{specialize, GroupContext, Specialized};
use crate::store::ChunkStore;
use crossbeam::channel::{bounded, RecvTimeoutError};
use mq_circuit::partition::RemapTransition;
use mq_circuit::{Circuit, Gate};
use mq_compress::{decompress_complex, Codec, CodecError};
use mq_device::{Device, DeviceBuffer, PayloadCell, PinnedBuffer, Stream, StreamStats};
use mq_num::Complex64;
use mq_telemetry::{DeviceLane, Role};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One unit of pipeline work: a chunk group, staged and specialized.
struct Work {
    group: Vec<usize>,
    amps: usize,
    slot: usize,
    stage: u32,
    gates: Vec<Gate>,
    scalar: Complex64,
    /// Compressed transfer: per-chunk codec payloads shipped to the
    /// device-side decoder in place of the staged raw copy. `None` = raw
    /// staging path (always, under [`TransferMode::Raw`]; per group, when
    /// a tier refused to hand out payloads).
    payloads: Option<Vec<Vec<u8>>>,
    /// Write-back payload cells, filled by the issuer's device-side encode
    /// commands in compressed mode; empty on the raw path.
    cells: Vec<PayloadCell>,
}

/// Tries to fetch every chunk of `group` as a compressed payload. `None`
/// when any tier refuses (e.g. a dense or spill tier with no codec): the
/// caller falls back to raw staging for the whole group, so a group's
/// transfer mode is always uniform. An active residency cache serves
/// payloads encode-through (dirty residents are written back first).
fn fetch_payloads(
    store: &Arc<dyn ChunkStore>,
    group: &[usize],
) -> Result<Option<Vec<Vec<u8>>>, CodecError> {
    let mut payloads = Vec::with_capacity(group.len());
    for &chunk in group {
        match store.load_chunk_payload(chunk)? {
            Some(p) => payloads.push(p),
            None => return Ok(None),
        }
    }
    Ok(Some(payloads))
}

/// Commits a compressed group's device-encoded payloads back to the store.
/// The group scalar was already folded in by the device encode kernel, so
/// the payloads land verbatim; a tier that refuses a payload gets a host
/// decode + raw store instead.
fn complete_compressed(
    store: &Arc<dyn ChunkStore>,
    work: &Work,
    chunk_amps: usize,
    codec: &Arc<dyn Codec>,
) -> Result<(), EngineError> {
    let mut scratch = Vec::new();
    for (cell, &chunk) in work.cells.iter().zip(&work.group) {
        let payload = cell.take().ok_or_else(|| {
            EngineError::Codec(CodecError::Io(format!(
                "device encode produced no payload for chunk {chunk}"
            )))
        })?;
        if !store.store_chunk_payload(chunk, payload.clone())? {
            scratch.resize(chunk_amps, Complex64::ZERO);
            decompress_complex(codec.as_ref(), &payload, &mut scratch)?;
            store.store_chunk(chunk, &scratch)?;
        }
    }
    Ok(())
}

enum ToDevice {
    Work(Work),
    /// Serial-ablation barrier: drain everything issued so far.
    Drain,
}

enum ToCompleter {
    Work(Work, mq_device::Event),
    Drain,
}

/// One fleet member's run-scoped resources: its staging slots, device
/// buffers and streams. A lane's slots are private to its device, so the
/// per-device pipelines never contend for staging memory.
struct Lane {
    pinned: Vec<PinnedBuffer>,
    dev_bufs: Vec<DeviceBuffer>,
    copy_stream: Option<Stream>,
    // Dual-stream mode actually uses three streams (upload / compute /
    // download) so the next group's H2D overlaps this group's kernels and
    // the previous group's D2H — the standard CUDA double-buffering shape.
    extra_streams: Option<(Stream, Stream)>,
}

/// Folds `s` into `into` for streams that share a clock epoch: the merged
/// end time is the latest stream's (`modeled = max`), while category busy
/// times, bytes and command counts add. The same shape serves both merges
/// this executor performs — a device's own streams, and the fleet's
/// per-device totals into the makespan aggregate.
fn merge_stream_stats(into: &mut StreamStats, s: &StreamStats) {
    into.modeled = into.modeled.max(s.modeled);
    into.modeled_h2d += s.modeled_h2d;
    into.modeled_d2h += s.modeled_d2h;
    into.modeled_kernel += s.modeled_kernel;
    into.modeled_scatter += s.modeled_scatter;
    into.modeled_decode += s.modeled_decode;
    into.modeled_encode += s.modeled_encode;
    into.modeled_wait += s.modeled_wait;
    into.real += s.real;
    into.commands += s.commands;
    into.bytes_h2d += s.bytes_h2d;
    into.bytes_d2h += s.bytes_d2h;
    into.bytes_h2d_compressed += s.bytes_h2d_compressed;
    into.bytes_d2h_compressed += s.bytes_d2h_compressed;
}

/// [`StageBatchExecutor`] running the paper's three-role pipeline against a
/// simulated device fleet: a producer decompresses and specializes groups
/// into pinned staging slots, a per-device issuer runs H2D → kernels → D2H,
/// and a per-device completer recompresses results — overlapped across
/// `pipeline_buffers` in-flight slots per device when `pipelined`, fully
/// drained after every group when not (the Fig. 2 ablation baseline). A
/// `cpu_share` fraction of each stage's groups bypasses the fleet entirely
/// (step 5, "idle cores"); the rest land on the device the driver's
/// [`ShardPolicy`](crate::config::ShardPolicy) picked.
pub struct DevicePipelineExecutor<'d> {
    devices: &'d [Device],
    pipelined: bool,
    slots: usize,
    max_group_amps: usize,
    lanes: Vec<Lane>,
    /// Groups executed per device, for the telemetry lanes.
    lane_groups: Vec<AtomicUsize>,
    /// `Some` under [`TransferMode::Compressed`]: the device-side codec,
    /// built from the same [`CodecSpec`](mq_compress::CodecSpec) as the
    /// store's — specs build stateless codecs, so payloads are
    /// byte-compatible across the two instances.
    codec: Option<Arc<dyn Codec>>,
    counters: ApplyCounters,
    groups_cpu: usize,
    groups_device: usize,
    peak_buffer_bytes: usize,
    telemetry_attached: bool,
}

impl<'d> DevicePipelineExecutor<'d> {
    /// Creates a single-device executor over `device`; `pipelined = false`
    /// drains the pipeline after every group (the serial ablation).
    pub fn new(device: &'d Device, pipelined: bool) -> DevicePipelineExecutor<'d> {
        DevicePipelineExecutor::new_fleet(std::slice::from_ref(device), pipelined)
    }

    /// Creates an executor over an N-device fleet. Every device gets its
    /// own staging slots, streams and issuer/completer pipeline; the driver
    /// routes groups by [`GroupWork::shard`](crate::engine::exec::GroupWork).
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new_fleet(devices: &'d [Device], pipelined: bool) -> DevicePipelineExecutor<'d> {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        DevicePipelineExecutor {
            devices,
            pipelined,
            slots: 0,
            max_group_amps: 0,
            lanes: Vec::new(),
            lane_groups: (0..devices.len()).map(|_| AtomicUsize::new(0)).collect(),
            codec: None,
            counters: ApplyCounters::default(),
            groups_cpu: 0,
            groups_device: 0,
            peak_buffer_bytes: 0,
            telemetry_attached: false,
        }
    }
}

impl Drop for DevicePipelineExecutor<'_> {
    fn drop(&mut self) {
        if self.telemetry_attached {
            for device in self.devices {
                device.detach_telemetry();
            }
        }
    }
}

impl StageBatchExecutor for DevicePipelineExecutor<'_> {
    fn name(&self) -> String {
        let mode = if self.pipelined {
            "pipelined"
        } else {
            "serial"
        };
        if self.devices.len() == 1 {
            format!("device-pipeline[{mode}]")
        } else {
            format!("device-fleet[{mode} x{}]", self.devices.len())
        }
    }

    fn prepare(&mut self, ctx: &ExecContext) -> Result<(), EngineError> {
        // Every fleet member feeds transfer/kernel counters into the same
        // run record (lanes split them back out per device at `finish`).
        for device in self.devices {
            device.attach_telemetry(ctx.telemetry.clone());
        }
        self.telemetry_attached = true;

        self.max_group_amps = ctx.chunk_amps() << ctx.cfg.max_high_qubits;
        self.slots = ctx.cfg.pipeline_buffers.max(1);

        // Staging per device: `slots` pinned host buffers + matching device
        // buffers on that device's own arena. Allocated one by one into
        // `self` so a mid-way OOM still releases the successful allocations
        // in `finish`.
        for (di, device) in self.devices.iter().enumerate() {
            self.lanes.push(Lane {
                pinned: (0..self.slots)
                    .map(|_| PinnedBuffer::new(self.max_group_amps))
                    .collect(),
                dev_bufs: Vec::new(),
                copy_stream: Some(device.create_stream()),
                extra_streams: if ctx.cfg.dual_stream {
                    Some((device.create_stream(), device.create_stream()))
                } else {
                    None
                },
            });
            for _ in 0..self.slots {
                let buf = device.alloc(self.max_group_amps)?;
                self.lanes[di].dev_bufs.push(buf);
            }
        }

        self.codec = if ctx.cfg.transfer_mode == TransferMode::Compressed {
            Some(Arc::from(
                ctx.cfg.codec.build_with_precision(ctx.cfg.precision),
            ))
        } else {
            None
        };
        Ok(())
    }

    fn remap(
        &mut self,
        ctx: &ExecContext,
        transition: &RemapTransition,
    ) -> Result<usize, EngineError> {
        // Tell every device lane which chunk identities are about to swap:
        // high-high transpositions relabel whole chunks, so any device-side
        // affinity (sharding by chunk index) is stale after the transition.
        // The command moves no arena data — it charges one scatter-shaped
        // pass so fleet makespans stay honest about re-sharding — and the
        // driver re-balances `device_load` at the same boundary.
        let pairs = transition.chunk_exchange_pairs(ctx.plan.chunk_bits, ctx.store.chunk_count());
        if !pairs.is_empty() {
            for lane in &self.lanes {
                if let Some(stream) = &lane.copy_stream {
                    stream.remap_chunks(pairs.clone());
                }
            }
        }
        apply_remap_on_store(ctx, transition)
    }

    fn execute_stage(
        &mut self,
        ctx: &ExecContext,
        work: &StageWork<'_>,
    ) -> Result<(), EngineError> {
        let chunk_amps = ctx.chunk_amps();
        // A fidelity budget hands each stage its own error allowance; this
        // executor's private codec instance (compressed transfers) must
        // track the store codec's bound or payload parity breaks.
        if let Some(codec) = &self.codec {
            codec.set_dynamic_bound(work.error_allowance);
        }
        let n_cpu = ((work.groups.len() as f64) * ctx.cfg.cpu_share).round() as usize;
        let n_cpu = n_cpu.min(work.groups.len());
        let (cpu_groups, dev_groups) = work.groups.split_at(n_cpu);
        let dev_shards = &work.shards[n_cpu..];

        // Step 5: idle-core CPU share, processed before device issue so
        // both halves of the stage stay within the stage barrier.
        if !cpu_groups.is_empty() {
            let group_amps = work.stage.group_size() * chunk_amps;
            let amp_bytes = std::mem::size_of::<Complex64>();
            self.peak_buffer_bytes = self
                .peak_buffer_bytes
                .max(ctx.cfg.workers.min(cpu_groups.len()) * group_amps * amp_bytes);
            process_groups_on_cpu(ctx, work, cpu_groups, &self.counters)?;
            self.groups_cpu += cpu_groups.len();
        }
        if dev_groups.is_empty() {
            return Ok(());
        }

        let store = &ctx.store;
        let telemetry = &ctx.telemetry;
        let lanes = &self.lanes;
        let lane_groups = &self.lane_groups;
        let n_dev = self.devices.len();
        let gate_counter = &self.counters.gates;
        let scalar_counter = &self.counters.scalars;
        let slots = self.slots;
        let pipelined = self.pipelined;
        let codec = self.codec.clone();
        let compressed_mode = self.codec.is_some();
        let si = work.index;
        let stage = work.stage;
        let chunk_bits = ctx.plan.chunk_bits;
        // With fusion on, a group's whole gate list becomes one batched
        // kernel command (single modeled launch, blocked apply body).
        let fuse_kernels = ctx.cfg.fusion != FusionLevel::Off;

        let stage_groups_device = AtomicUsize::new(0);
        let error: Mutex<Option<EngineError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            // One issuer/completer pair — and one private slot pool — per
            // fleet device; the producer below routes each group to the
            // device its shard names.
            let mut to_device_txs = Vec::with_capacity(n_dev);
            let mut pool_rxs = Vec::with_capacity(n_dev);
            let mut drain_ack_rxs = Vec::with_capacity(n_dev);
            for di in 0..n_dev {
                let (to_device_tx, to_device_rx) = bounded::<ToDevice>(slots);
                let (to_completer_tx, to_completer_rx) = bounded::<ToCompleter>(slots);
                let (pool_tx, pool_rx) = bounded::<usize>(slots);
                let (drain_ack_tx, drain_ack_rx) = bounded::<()>(1);
                for i in 0..slots {
                    pool_tx.send(i).expect("pool has capacity");
                }
                to_device_txs.push(to_device_tx);
                pool_rxs.push(pool_rx);
                drain_ack_rxs.push(drain_ack_rx);

                // --- device issuer (one per device) -------------------------
                let issuer_telemetry = telemetry.clone();
                let issuer_codec = codec.clone();
                scope.spawn(move |_| {
                    let lane = &lanes[di];
                    let pinned = &lane.pinned;
                    let dev_bufs = &lane.dev_bufs;
                    let copy_stream = lane.copy_stream.as_ref().expect("prepared");
                    let extra_streams = lane.extra_streams.as_ref();
                    while let Ok(msg) = to_device_rx.recv() {
                        match msg {
                            ToDevice::Drain => {
                                if to_completer_tx.send(ToCompleter::Drain).is_err() {
                                    break;
                                }
                            }
                            ToDevice::Work(mut work) => {
                                let span =
                                    issuer_telemetry.stage_span(Role::DeviceIssue, work.stage);
                                let pb = &pinned[work.slot];
                                let db = dev_bufs[work.slot];
                                // Compressed transfer: the payloads go over the
                                // link as-is and a device-side codec kernel
                                // inflates them; on the way back, an encode
                                // kernel folds in the group scalar and the
                                // payload cells carry the bytes home.
                                let payloads = work.payloads.take();
                                let device_codec = payloads.is_some();
                                let upload = |s: &Stream| match payloads {
                                    Some(ps) => {
                                        let codec = issuer_codec.as_ref().expect("codec prepared");
                                        for (j, p) in ps.into_iter().enumerate() {
                                            s.decode_chunk(
                                                p,
                                                codec,
                                                db,
                                                j * chunk_amps,
                                                chunk_amps,
                                            );
                                        }
                                    }
                                    None => s.h2d(pb, 0, db, 0, work.amps),
                                };
                                let download = |s: &Stream, work: &mut Work| {
                                    if device_codec {
                                        let codec = issuer_codec.as_ref().expect("codec prepared");
                                        for j in 0..work.group.len() {
                                            work.cells.push(s.encode_chunk(
                                                db,
                                                j * chunk_amps,
                                                chunk_amps,
                                                work.scalar,
                                                codec,
                                            ));
                                        }
                                    } else {
                                        s.d2h(db, 0, pb, 0, work.amps);
                                    }
                                };
                                let event = match extra_streams {
                                    // Multi-stream: uploads, kernels and downloads
                                    // each get their own in-order stream, linked by
                                    // events, so group k+1's H2D overlaps group k's
                                    // kernels and group k-1's D2H — the paper's
                                    // step (3): kernels run "asynchronously during
                                    // the CPU-GPU data transfer".
                                    Some((compute, down)) => {
                                        upload(copy_stream);
                                        let uploaded = copy_stream.record_event();
                                        compute.wait_event(&uploaded);
                                        if fuse_kernels {
                                            compute.run_fused_gates_region(
                                                db,
                                                work.amps,
                                                work.gates.clone(),
                                            );
                                        } else {
                                            for g in &work.gates {
                                                compute.run_gate_region(db, work.amps, g.clone());
                                            }
                                        }
                                        let kernels_done = compute.record_event();
                                        down.wait_event(&kernels_done);
                                        download(down, &mut work);
                                        down.record_event()
                                    }
                                    None => {
                                        upload(copy_stream);
                                        if fuse_kernels {
                                            // One batched kernel over the leading
                                            // `amps` region of the slot buffer.
                                            copy_stream.run_fused_gates_region(
                                                db,
                                                work.amps,
                                                work.gates.clone(),
                                            );
                                        } else {
                                            for g in &work.gates {
                                                // The kernel operates on the leading
                                                // `amps` region of the slot buffer.
                                                copy_stream.run_gate_region(
                                                    db,
                                                    work.amps,
                                                    g.clone(),
                                                );
                                            }
                                        }
                                        download(copy_stream, &mut work);
                                        copy_stream.record_event()
                                    }
                                };
                                // Close before the send: a full channel is
                                // backpressure wait, not device-issue work.
                                drop(span);
                                if to_completer_tx
                                    .send(ToCompleter::Work(work, event))
                                    .is_err()
                                {
                                    break;
                                }
                            }
                        }
                    }
                });

                // --- completer / recompressor (one per device) --------------
                let stage_groups_device_ref = &stage_groups_device;
                let completer_telemetry = telemetry.clone();
                let completer_codec = codec.clone();
                let completer_error = &error;
                scope.spawn(move |_| {
                    let pinned = &lanes[di].pinned;
                    while let Ok(msg) = to_completer_rx.recv() {
                        match msg {
                            ToCompleter::Drain => {
                                if drain_ack_tx.send(()).is_err() {
                                    break;
                                }
                            }
                            ToCompleter::Work(work, event) => {
                                // Waiting on the device is idle time, not
                                // recompress work; the span opens only once
                                // results are back.
                                event.wait();
                                let _span =
                                    completer_telemetry.stage_span(Role::Recompress, work.stage);
                                if work.cells.is_empty() {
                                    // Raw path: scalar-fold on the host, then
                                    // recompress chunk by chunk.
                                    let mut failed = None;
                                    pinned[work.slot].write(|data| {
                                        if work.scalar != Complex64::ONE {
                                            for z in &mut data[..work.amps] {
                                                *z *= work.scalar;
                                            }
                                        }
                                        for (j, &chunk) in work.group.iter().enumerate() {
                                            if let Err(e) = store.store_chunk(
                                                chunk,
                                                &data[j * chunk_amps..(j + 1) * chunk_amps],
                                            ) {
                                                failed = Some(e);
                                                return;
                                            }
                                        }
                                    });
                                    if let Some(e) = failed {
                                        completer_error.lock().get_or_insert(e.into());
                                    }
                                } else if let Err(e) = complete_compressed(
                                    store,
                                    &work,
                                    chunk_amps,
                                    completer_codec.as_ref().expect("codec prepared"),
                                ) {
                                    completer_error.lock().get_or_insert(e);
                                }
                                stage_groups_device_ref.fetch_add(1, Ordering::Relaxed);
                                lane_groups[di].fetch_add(1, Ordering::Relaxed);
                                let _ = pool_tx.send(work.slot);
                            }
                        }
                    }
                });
            }

            // --- producer (this thread): decompress + specialize ------------
            'groups: for (group, &shard) in dev_groups.iter().zip(dev_shards) {
                if error.lock().is_some() {
                    break 'groups;
                }
                // The driver's shard policy names the device; guard against
                // a config/fleet mismatch rather than indexing out of range.
                let di = shard % n_dev;
                // Acquire a staging slot from that device's pool (poll so a
                // dead completer cannot wedge the producer).
                let slot = loop {
                    match pool_rxs[di].recv_timeout(Duration::from_millis(50)) {
                        Ok(s) => break s,
                        Err(RecvTimeoutError::Timeout) => {
                            if error.lock().is_some() {
                                break 'groups;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break 'groups,
                    }
                };
                let amps = group.len() * chunk_amps;
                let mut payloads = None;
                let mut failed = None;
                {
                    let _span = telemetry.stage_span(Role::Decompress, si);
                    // Compressed transfer skips the host decode entirely:
                    // the stored payloads ship as-is. A refusing tier
                    // (e.g. a codec-less dense store) drops the whole
                    // group back to raw staging.
                    if compressed_mode {
                        match fetch_payloads(store, group) {
                            Ok(ps) => payloads = ps,
                            Err(e) => failed = Some(e),
                        }
                    }
                    if failed.is_none() && payloads.is_none() {
                        lanes[di].pinned[slot].write(|data| {
                            for (j, &chunk) in group.iter().enumerate() {
                                if let Err(e) = store.load_chunk(
                                    chunk,
                                    &mut data[j * chunk_amps..(j + 1) * chunk_amps],
                                ) {
                                    failed = Some(e);
                                    return;
                                }
                            }
                        });
                    }
                }
                if let Some(e) = failed {
                    *error.lock() = Some(e.into());
                    break 'groups;
                }

                let gctx = GroupContext {
                    chunk_bits,
                    high: &stage.high_qubits,
                    base_chunk: group[0],
                };
                let mut gates = Vec::new();
                let mut scalar = Complex64::ONE;
                for gate in &stage.gates {
                    match specialize(gate, &gctx) {
                        Specialized::Skip => {}
                        Specialized::Scalar(s) => {
                            scalar *= s;
                            scalar_counter.fetch_add(1, Ordering::Relaxed);
                        }
                        Specialized::Apply(g) => gates.push(g),
                    }
                }
                gate_counter.fetch_add(gates.len(), Ordering::Relaxed);
                let work = Work {
                    group: group.clone(),
                    amps,
                    slot,
                    stage: si,
                    gates,
                    scalar,
                    payloads,
                    cells: Vec::new(),
                };
                if to_device_txs[di].send(ToDevice::Work(work)).is_err() {
                    break 'groups;
                }
                if !pipelined {
                    // Serial ablation: drain that device's pipeline after
                    // every group (only one lane is ever in flight, so the
                    // no-role-overlap invariant survives the fleet).
                    if to_device_txs[di].send(ToDevice::Drain).is_err() {
                        break 'groups;
                    }
                    if drain_ack_rxs[di].recv().is_err() {
                        break 'groups;
                    }
                }
            }
            // Stage barrier: dropping the senders winds every lane down and
            // the scope join waits for all roles to finish.
            drop(to_device_txs);
        })
        .expect("pipeline thread panicked");

        self.groups_device += stage_groups_device.into_inner();
        match error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn finish(&mut self, ctx: &ExecContext) -> Result<ExecutorStats, EngineError> {
        // Drain every lane's streams first so all device counters have
        // landed, then free its buffers; each lane yields one StreamStats.
        let mut per_device = Vec::with_capacity(self.lanes.len());
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let mut lane_stats = StreamStats::default();
            if let Some(copy_stream) = lane.copy_stream.take() {
                lane_stats = copy_stream.synchronize()?;
            }
            if let Some((compute, down)) = lane.extra_streams.take() {
                for s in [compute.synchronize()?, down.synchronize()?] {
                    // Streams share their device's epoch: the device is done
                    // when the last stream is; category busy-times add.
                    merge_stream_stats(&mut lane_stats, &s);
                }
            }
            for db in lane.dev_bufs.drain(..) {
                self.devices[i].free(db)?;
            }
            per_device.push(lane_stats);
        }
        if self.telemetry_attached {
            for device in self.devices {
                device.detach_telemetry();
            }
            self.telemetry_attached = false;
        }
        // Fleet aggregate: devices run concurrently, so `modeled` is the
        // makespan (max over lanes) while every other field sums.
        let mut device_stats = StreamStats::default();
        for s in &per_device {
            merge_stream_stats(&mut device_stats, s);
        }
        ctx.telemetry.set_device_lanes(
            per_device
                .iter()
                .enumerate()
                .map(|(i, s)| DeviceLane {
                    device: i,
                    groups: self.lane_groups[i].load(Ordering::Relaxed) as u64,
                    bytes_h2d: s.bytes_h2d as u64,
                    bytes_d2h: s.bytes_d2h as u64,
                    kernel_time_ns: s.modeled_kernel.as_nanos() as u64,
                    modeled_ns: s.modeled.as_nanos() as u64,
                })
                .collect(),
        );
        let staging_bytes = self.devices.len()
            * self.slots
            * self.max_group_amps
            * std::mem::size_of::<Complex64>();
        Ok(ExecutorStats {
            gates_applied: *self.counters.gates.get_mut(),
            scalars_applied: *self.counters.scalars.get_mut(),
            groups_device: self.groups_device,
            groups_cpu: self.groups_cpu,
            peak_buffer_bytes: self.peak_buffer_bytes,
            pinned_bytes: staging_bytes,
            device_buffer_bytes: staging_bytes,
            device: device_stats,
            per_device,
        })
    }
}

/// Runs `circuit` against `store` through `device`. With `pipelined =
/// false` every group completes before the next starts (the Fig. 2 ablation
/// baseline); with `true` the three roles overlap.
///
/// Geometry mismatches between the store and `cfg`/`circuit` surface as
/// [`EngineError::WidthMismatch`] / [`EngineError::ChunkMismatch`].
pub fn run(
    store: &Arc<dyn ChunkStore>,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    device: &Device,
    pipelined: bool,
) -> Result<RunReport, EngineError> {
    run_fleet(store, circuit, cfg, std::slice::from_ref(device), pipelined)
}

/// Runs `circuit` across an N-device fleet. Groups within a stage touch
/// disjoint chunk sets, so the result is bit-identical to [`run`] on one
/// device; only the modeled makespan shrinks. `cfg.devices` is overridden
/// by `devices.len()` so the driver's shard assignment always matches the
/// fleet that actually executes.
pub fn run_fleet(
    store: &Arc<dyn ChunkStore>,
    circuit: &Circuit,
    cfg: &MemQSimConfig,
    devices: &[Device],
    pipelined: bool,
) -> Result<RunReport, EngineError> {
    let mut cfg = *cfg;
    cfg.devices = devices.len().max(1);
    // The device path is a batch-per-stage executor: its internal
    // producer/issuer/completer threads already overlap within a stage, so
    // it rides the serial adapter for the streaming driver protocol.
    let mut executor = SerialAdapter::new(DevicePipelineExecutor::new_fleet(devices, pipelined));
    run_with_executor(store, circuit, &cfg, Granularity::Staged, &mut executor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, run_hybrid_and_compare};
    use mq_circuit::library;
    use mq_compress::CodecSpec;
    use mq_device::{DeviceSpec, DeviceTopology};
    use mq_telemetry::Counter;

    fn cfg(chunk_bits: u32) -> MemQSimConfig {
        testkit::cfg(chunk_bits, CodecSpec::Fpc)
    }

    #[test]
    fn suite_matches_dense_reference_pipelined() {
        for c in library::standard_suite(6) {
            let r = run_hybrid_and_compare(&c, &cfg(3), true, 1e-10);
            assert!(r.groups_device > 0, "{}", c.name());
            assert!(r.device.modeled_h2d > Duration::ZERO);
        }
    }

    #[test]
    fn suite_matches_dense_reference_serial() {
        for c in library::standard_suite(6) {
            run_hybrid_and_compare(&c, &cfg(3), false, 1e-10);
        }
    }

    #[test]
    fn cpu_share_splits_work_and_stays_correct() {
        let c = library::qft(7);
        for share in [0.0, 0.3, 0.7, 1.0] {
            let config = MemQSimConfig {
                cpu_share: share,
                ..cfg(3)
            };
            let r = run_hybrid_and_compare(&c, &config, true, 1e-10);
            if share == 0.0 {
                assert_eq!(r.groups_cpu, 0);
            }
            if share == 1.0 {
                assert_eq!(r.groups_device, 0);
            }
            if share > 0.0 && share < 1.0 {
                assert!(r.groups_cpu > 0 && r.groups_device > 0, "share {share}");
            }
        }
    }

    #[test]
    fn more_pipeline_buffers_same_answer() {
        let c = library::random_circuit(7, 6, 2);
        for buffers in [1usize, 2, 4] {
            let config = MemQSimConfig {
                pipeline_buffers: buffers,
                ..cfg(3)
            };
            run_hybrid_and_compare(&c, &config, true, 1e-10);
        }
    }

    #[test]
    fn device_oom_surfaces_as_engine_error() {
        let c = library::ghz(8);
        let config = cfg(4);
        let store = testkit::zero_store(8, 4, &config);
        // Device too small for even one staging buffer (2^(4+2) amps needed).
        let dev = Device::new(DeviceSpec::tiny_test(8));
        match run(&store, &c, &config, &dev, true) {
            Err(EngineError::Device(mq_device::DeviceError::OutOfMemory { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modeled_overlap_never_exceeds_serial() {
        let c = library::qft(7);
        let r = run_hybrid_and_compare(&c, &cfg(3), true, 1e-10);
        assert!(r.modeled_overlapped <= r.modeled_serial);
        assert_eq!(
            r.modeled_serial,
            r.decompress + r.compress + r.cpu_apply + r.device.modeled
        );
    }

    #[test]
    fn report_durations_derive_from_telemetry() {
        let c = library::qft(7);
        let r = run_hybrid_and_compare(&c, &cfg(3), true, 1e-10);
        assert!(r.telemetry.balanced());
        assert_eq!(r.decompress, r.telemetry.busy(Role::Decompress));
        assert_eq!(r.compress, r.telemetry.busy(Role::Recompress));
        assert_eq!(r.cpu_apply, r.telemetry.busy(Role::CpuApply));
        assert!(r.telemetry.busy(Role::DeviceIssue) > Duration::ZERO);
        // Device counters agree with the stream's own accounting.
        assert_eq!(
            r.device.bytes_h2d as u64,
            r.telemetry.counter(Counter::BytesH2d)
        );
        assert_eq!(
            r.device.bytes_d2h as u64,
            r.telemetry.counter(Counter::BytesD2h)
        );
        assert!(r.telemetry.counter(Counter::KernelLaunches) > 0);
        assert!(r.telemetry.counter(Counter::BytesCompressed) > 0);
    }

    #[test]
    fn serial_run_records_no_role_overlap() {
        // The ablation drains the pipeline after every group, so no two
        // spans of different roles can ever be open at once.
        let c = library::qft(7);
        let r = run_hybrid_and_compare(&c, &cfg(3), false, 1e-10);
        assert!(r.telemetry.balanced());
        assert!(!r.telemetry.has_role_overlap());
        assert_eq!(r.telemetry.overlap(), Duration::ZERO);
        assert_eq!(r.executor, "device-pipeline[serial]");
    }

    fn run_fleet_n(
        c: &mq_circuit::Circuit,
        n: usize,
        pipelined: bool,
    ) -> (Vec<Complex64>, RunReport) {
        let config = cfg(3);
        let store = testkit::zero_store(c.n_qubits(), 3, &config);
        let fleet = DeviceTopology::homogeneous(n, DeviceSpec::tiny_test(1 << 12)).build();
        let report = run_fleet(&store, c, &config, &fleet, pipelined).unwrap();
        (store.to_dense().unwrap(), report)
    }

    #[test]
    fn fleet_is_bit_identical_to_single_device() {
        // Groups within a stage touch disjoint chunk sets, so scattering
        // them across devices cannot change a single bit of the state.
        let c = library::qft(7);
        let (one, r1) = run_fleet_n(&c, 1, true);
        for n in [2usize, 4] {
            let (state, r) = run_fleet_n(&c, n, true);
            assert_eq!(one, state, "{n} devices");
            assert_eq!(r.executor, format!("device-fleet[pipelined x{n}]"));
            assert_eq!(r.per_device.len(), n);
            assert_eq!(r.gates_applied, r1.gates_applied);
            assert_eq!(r.chunk_visits, r1.chunk_visits);
        }
        assert_eq!(r1.executor, "device-pipeline[pipelined]");
        assert_eq!(r1.per_device.len(), 1);
    }

    #[test]
    fn fleet_aggregate_is_makespan_plus_sums() {
        let c = library::qft(7);
        let (_, r) = run_fleet_n(&c, 3, true);
        let lanes = &r.per_device;
        assert_eq!(lanes.len(), 3);
        let makespan = lanes.iter().map(|s| s.modeled).max().unwrap();
        assert_eq!(r.device.modeled, makespan);
        assert_eq!(
            r.device.bytes_h2d,
            lanes.iter().map(|s| s.bytes_h2d).sum::<usize>()
        );
        assert_eq!(
            r.device.commands,
            lanes.iter().map(|s| s.commands).sum::<usize>()
        );
        assert_eq!(
            r.device.modeled_kernel,
            lanes.iter().map(|s| s.modeled_kernel).sum()
        );
        // Every lane took some work on this workload, and the per-lane
        // telemetry mirrors the stream accounting.
        let tl = r.telemetry.device_lanes();
        assert_eq!(tl.len(), 3);
        let total_groups: u64 = tl.iter().map(|l| l.groups).sum();
        assert_eq!(total_groups as usize, r.groups_device);
        for (i, lane) in tl.iter().enumerate() {
            assert_eq!(lane.device, i);
            assert!(lane.groups > 0, "lane {i} starved");
            assert_eq!(lane.bytes_h2d as usize, lanes[i].bytes_h2d);
            assert_eq!(lane.modeled_ns as u128, lanes[i].modeled.as_nanos());
        }
        assert!(r.telemetry.load_imbalance() >= 1.0);
    }

    #[test]
    fn fleet_shrinks_modeled_makespan() {
        // The same group set spread over 4 devices must finish (in modeled
        // time) well ahead of one device grinding through all of it.
        let c = library::qft(8);
        let (_, r1) = run_fleet_n(&c, 1, true);
        let (_, r4) = run_fleet_n(&c, 4, true);
        assert!(
            r4.device.modeled < r1.device.modeled,
            "4-dev {:?} !< 1-dev {:?}",
            r4.device.modeled,
            r1.device.modeled
        );
    }

    #[test]
    fn fleet_serial_ablation_keeps_role_exclusivity() {
        // The serial ablation drains the targeted lane after every group,
        // so even with multiple devices only one role is ever active.
        let c = library::qft(7);
        let (one, _) = run_fleet_n(&c, 1, false);
        let (state, r) = run_fleet_n(&c, 2, false);
        assert_eq!(one, state);
        assert_eq!(r.executor, "device-fleet[serial x2]");
        assert!(!r.telemetry.has_role_overlap());
    }

    #[test]
    fn fleet_respects_every_shard_policy() {
        let c = library::random_circuit(7, 6, 7);
        let base = cfg(3);
        let (reference, _) = run_fleet_n(&c, 1, true);
        for policy in [
            crate::config::ShardPolicy::ChunkAffinity,
            crate::config::ShardPolicy::RoundRobin,
            crate::config::ShardPolicy::LoadBalanced,
        ] {
            let config = MemQSimConfig {
                shard_policy: policy,
                ..base
            };
            let store = testkit::zero_store(7, 3, &config);
            let fleet = DeviceTopology::homogeneous(3, DeviceSpec::tiny_test(1 << 12)).build();
            run_fleet(&store, &c, &config, &fleet, true).unwrap();
            assert_eq!(store.to_dense().unwrap(), reference, "{policy:?}");
        }
    }

    #[test]
    fn grover_through_the_full_pipeline() {
        let n = 6;
        let marked = 0b110101u64;
        let c = library::grover(n, marked, library::optimal_grover_iterations(n));
        let config = MemQSimConfig {
            codec: CodecSpec::Sz { eb: 1e-11 },
            ..cfg(3)
        };
        let store = testkit::zero_store(n, 3, &config);
        let dev = testkit::tiny_device();
        run(&store, &c, &config, &dev, true).unwrap();
        let p = store.probability(marked as usize).unwrap();
        assert!(p > 0.9, "p = {p}");
    }

    #[test]
    fn report_byte_accounting() {
        let c = library::ghz(7);
        let r = run_hybrid_and_compare(&c, &cfg(3), true, 1e-10);
        // 2 slots * 2^(3+2) amps * 16 bytes.
        assert_eq!(r.pinned_bytes, 2 * (1 << 5) * 16);
        assert_eq!(r.device_buffer_bytes, r.pinned_bytes);
        assert!(r.peak_compressed_bytes > 0);
        assert!(r.peak_resident_bytes >= r.peak_compressed_bytes);
        assert!(r.peak_working_bytes() >= r.pinned_bytes);
    }

    #[test]
    fn cached_pipeline_matches_and_cuts_codec_traffic() {
        let c = library::qft(7);
        let base = cfg(3);
        let cached = MemQSimConfig {
            // Room for half the chunks (16 chunks of 2^3 amps).
            cache_bytes: 8 * (1 << 3) * 16,
            ..base
        };
        let uncached_r = run_hybrid_and_compare(&c, &base, true, 1e-10);
        let cached_r = run_hybrid_and_compare(&c, &cached, true, 1e-10);
        let visits = cached_r.telemetry.counter(Counter::ChunkVisits);
        assert_eq!(
            cached_r.telemetry.counter(Counter::CacheHits)
                + cached_r.telemetry.counter(Counter::CacheMisses),
            visits
        );
        assert!(cached_r.telemetry.counter(Counter::CacheHits) > 0);
        assert!(
            cached_r.telemetry.counter(Counter::BytesDecompressed)
                < uncached_r.telemetry.counter(Counter::BytesDecompressed)
        );
        // Cache bytes are accounted against the resident footprint.
        assert!(cached_r.peak_resident_bytes >= cached_r.peak_compressed_bytes);
    }
}

#[cfg(test)]
mod compressed_transfer_tests {
    use super::*;
    use crate::testkit;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;
    use mq_telemetry::Counter;

    fn cfg(codec: CodecSpec, mode: TransferMode) -> MemQSimConfig {
        MemQSimConfig {
            transfer_mode: mode,
            ..testkit::cfg(3, codec)
        }
    }

    fn run_mode(
        circuit: &Circuit,
        codec: CodecSpec,
        mode: TransferMode,
        pipelined: bool,
    ) -> (Vec<Complex64>, RunReport) {
        let config = cfg(codec, mode);
        let store = testkit::zero_store(circuit.n_qubits(), 3, &config);
        let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
        let report = run(&store, circuit, &config, &dev, pipelined).unwrap();
        (store.to_dense().unwrap(), report)
    }

    #[test]
    fn compressed_mode_is_bit_identical_to_raw() {
        // Device-side encode applies the group scalar before compressing,
        // so the stored payloads match the raw path byte for byte — even
        // under a lossy codec the final states are identical, not just
        // close.
        for codec in [CodecSpec::Fpc, CodecSpec::Sz { eb: 1e-9 }] {
            for circuit in library::standard_suite(7) {
                let (raw, _) = run_mode(&circuit, codec, TransferMode::Raw, true);
                let (compressed, _) = run_mode(&circuit, codec, TransferMode::Compressed, true);
                assert_eq!(raw, compressed, "{} under {codec}", circuit.name());
                assert!(max_amp_err(&compressed, &run_dense(&circuit, 0)) < 1e-8);
            }
        }
    }

    #[test]
    fn compressed_mode_matches_accounting_and_cuts_link_bytes() {
        let circuit = library::qft(7);
        let (_, raw) = run_mode(&circuit, CodecSpec::Fpc, TransferMode::Raw, true);
        let (_, comp) = run_mode(&circuit, CodecSpec::Fpc, TransferMode::Compressed, true);
        // Same work happened: gate, scalar, visit, stage and group
        // accounting are identical between the modes.
        assert_eq!(raw.gates_applied, comp.gates_applied);
        assert_eq!(raw.scalars_applied, comp.scalars_applied);
        assert_eq!(raw.chunk_visits, comp.chunk_visits);
        assert_eq!(raw.stages, comp.stages);
        assert_eq!(raw.groups_device, comp.groups_device);
        // But only the compressed bytes crossed the link, and the codec
        // kernels were charged on-stream.
        assert!(
            comp.device.bytes_h2d < raw.device.bytes_h2d,
            "compressed {} vs raw {}",
            comp.device.bytes_h2d,
            raw.device.bytes_h2d
        );
        assert_eq!(comp.device.bytes_h2d, comp.device.bytes_h2d_compressed);
        assert_eq!(comp.device.bytes_d2h, comp.device.bytes_d2h_compressed);
        assert!(comp.device.modeled_decode > Duration::ZERO);
        assert!(comp.device.modeled_encode > Duration::ZERO);
        assert_eq!(raw.device.bytes_h2d_compressed, 0);
        assert_eq!(raw.device.modeled_decode, Duration::ZERO);
        // The run record carries the same numbers as counters.
        assert_eq!(
            comp.telemetry.counter(Counter::BytesH2dCompressed),
            comp.device.bytes_h2d_compressed as u64
        );
        assert_eq!(
            comp.telemetry.counter(Counter::DeviceDecodeTime),
            comp.device.modeled_decode.as_nanos() as u64
        );
        // No host codec traffic on the device half of the stage: the
        // compressed run decodes strictly less on the host.
        assert!(
            comp.telemetry.counter(Counter::BytesDecompressed)
                < raw.telemetry.counter(Counter::BytesDecompressed)
        );
    }

    #[test]
    fn compressed_mode_works_serial_dual_stream_and_cpu_share() {
        let circuit = library::qft(7);
        let want = run_dense(&circuit, 0);
        for (pipelined, dual_stream, cpu_share) in
            [(false, false, 0.0), (true, true, 0.0), (true, false, 0.5)]
        {
            let config = MemQSimConfig {
                dual_stream,
                cpu_share,
                ..cfg(CodecSpec::Fpc, TransferMode::Compressed)
            };
            let store = testkit::zero_store(7, 3, &config);
            let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
            run(&store, &circuit, &config, &dev, pipelined).unwrap();
            let err = max_amp_err(&store.to_dense().unwrap(), &want);
            assert!(
                err < 1e-10,
                "pipelined={pipelined} dual={dual_stream} share={cpu_share}: {err}"
            );
        }
    }

    #[test]
    fn active_cache_serves_payloads() {
        // A residency cache serves payloads encode-through (dirty residents
        // written back first), so compressed transfer survives a nonzero
        // cache budget instead of degrading to whole-group raw staging.
        let circuit = library::qft(7);
        let config = MemQSimConfig {
            cache_bytes: 8 * (1 << 3) * 16,
            ..cfg(CodecSpec::Fpc, TransferMode::Compressed)
        };
        let store = testkit::zero_store(7, 3, &config);
        let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
        let report = run(&store, &circuit, &config, &dev, true).unwrap();
        assert!(report.device.bytes_h2d_compressed > 0);
        let hits = report.telemetry.counter(Counter::CacheHits);
        let misses = report.telemetry.counter(Counter::CacheMisses);
        assert_eq!(
            hits + misses,
            report.telemetry.counter(Counter::ChunkVisits)
        );
        assert!(max_amp_err(&store.to_dense().unwrap(), &run_dense(&circuit, 0)) < 1e-10);
    }
}

#[cfg(test)]
mod dual_stream_tests {
    use super::*;
    use crate::testkit;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;

    fn cfg(dual_stream: bool) -> MemQSimConfig {
        MemQSimConfig {
            dual_stream,
            ..testkit::cfg(3, CodecSpec::Fpc)
        }
    }

    #[test]
    fn dual_stream_matches_single_stream_exactly() {
        for circuit in library::standard_suite(7) {
            let mk = |ds: bool| {
                let store = testkit::zero_store(7, 3, &cfg(ds));
                let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
                run(&store, &circuit, &cfg(ds), &dev, true).unwrap();
                store.to_dense().unwrap()
            };
            let single = mk(false);
            let dual = mk(true);
            let err = max_amp_err(&single, &dual);
            assert!(
                err < 1e-12,
                "{}: dual-stream drifted by {err}",
                circuit.name()
            );
            assert!(max_amp_err(&dual, &run_dense(&circuit, 0)) < 1e-10);
        }
    }

    #[test]
    fn dual_stream_overlaps_the_modeled_device_clock() {
        // Many groups with real kernel work: in dual-stream mode, group
        // k+1's H2D overlaps group k's kernels, so the device finishes
        // strictly earlier than the serial sum of its busy categories.
        let circuit = library::supremacy_like(12, 6, 8);
        let config = cfg(true);
        let store = testkit::zero_store(12, 3, &config);
        let dev = Device::new(DeviceSpec::tiny_test(1 << 14));
        let r = run(&store, &circuit, &config, &dev, true).unwrap();
        let busy = r.device.modeled_h2d
            + r.device.modeled_d2h
            + r.device.modeled_kernel
            + r.device.modeled_scatter;
        assert!(
            r.device.modeled < busy,
            "no overlap: end {:?} vs busy sum {:?}",
            r.device.modeled,
            busy
        );
        assert!(r.device.modeled_wait > Duration::ZERO);
    }

    #[test]
    fn dual_stream_works_serial_and_with_cpu_share() {
        let circuit = library::qft(8);
        let want = run_dense(&circuit, 0);
        for (pipelined, share) in [(false, 0.0), (true, 0.5)] {
            let config = MemQSimConfig {
                cpu_share: share,
                ..cfg(true)
            };
            let store = testkit::zero_store(8, 3, &config);
            let dev = Device::new(DeviceSpec::tiny_test(1 << 12));
            run(&store, &circuit, &config, &dev, pipelined).unwrap();
            assert!(max_amp_err(&store.to_dense().unwrap(), &want) < 1e-10);
        }
    }
}

#[cfg(test)]
mod max_high_one_tests {
    use super::*;
    use crate::testkit;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_compress::CodecSpec;
    use mq_device::DeviceSpec;
    use mq_num::metrics::max_amp_err;

    #[test]
    fn pair_only_scheduling_works_end_to_end() {
        // max_high_qubits = 1: every cross-chunk stage handles exactly one
        // pairing qubit, so groups are chunk *pairs* — the minimal working
        // set (GHZ/W/BV never need more).
        let cfg = MemQSimConfig {
            max_high_qubits: 1,
            dual_stream: true,
            reorder: true,
            ..testkit::cfg(3, CodecSpec::Fpc)
        };
        for circuit in [library::ghz(8), library::w_state(8)] {
            let store = testkit::zero_store(8, 3, &cfg);
            let dev = Device::new(DeviceSpec::tiny_test(1 << 10));
            run(&store, &circuit, &cfg, &dev, true).unwrap();
            let err = max_amp_err(&store.to_dense().unwrap(), &run_dense(&circuit, 0));
            assert!(err < 1e-10, "{}: {err}", circuit.name());
        }
    }
}
