//! The unified per-run report shared by every execution engine.
//!
//! A [`RunReport`] is produced by [`run_with_executor`] regardless of which
//! [`ChunkExecutor`] processed the chunk groups, so backends, benches and
//! tests consume one shape whether the run was CPU-only, hybrid, or a custom
//! executor.
//!
//! [`run_with_executor`]: crate::engine::exec::run_with_executor
//! [`ChunkExecutor`]: crate::engine::exec::ChunkExecutor

use mq_device::StreamStats;
use mq_telemetry::RunTelemetry;
use std::time::Duration;

/// Timing, traffic and accounting report from one engine run.
///
/// All duration fields are *derived* from the run's [`RunTelemetry`]
/// timeline (per-role busy times), so they agree with the span record by
/// construction. Device fields are zero for CPU-only executors.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Display name of the executor that processed the chunk groups.
    pub executor: String,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cumulative time in chunk decompression (summed across workers).
    pub decompress: Duration,
    /// Cumulative time applying gates on CPU workers.
    pub cpu_apply: Duration,
    /// Cumulative time in chunk recompression.
    pub compress: Duration,
    /// Device-side accounting (modeled H2D/kernel/D2H and real time);
    /// all-zero for executors that never touch a device. For an N-device
    /// fleet this is the aggregate: `modeled` is the makespan (max over
    /// devices), every other field sums across [`per_device`](Self::per_device).
    pub device: StreamStats,
    /// Per-device stream accounting, one entry per fleet device (empty for
    /// executors that never touch a device).
    pub per_device: Vec<StreamStats>,
    /// Number of stages executed.
    pub stages: usize,
    /// Total chunk visits (decompress+recompress rounds).
    pub chunk_visits: usize,
    /// Gates applied (after specialization; skipped gates not counted).
    pub gates_applied: usize,
    /// Whole-buffer scalar multiplications applied.
    pub scalars_applied: usize,
    /// Gates eliminated by plan-level fusion (0 with `FusionLevel::Off`).
    pub gates_fused: usize,
    /// Amplitude-buffer passes avoided by the blocked apply driver,
    /// summed over every chunk visit (0 with `FusionLevel::Off`).
    pub apply_passes_saved: usize,
    /// Layout remap transitions executed (stage transitions plus the
    /// restore-to-identity epilogue; 0 under `LayoutPolicy::Fixed`).
    pub remap_passes: usize,
    /// Chunk visits the greedy layout saved versus the fixed plan for the
    /// same circuit, remap sweeps already charged (0 when the planner kept
    /// the fixed layout).
    pub chunk_visits_saved_by_layout: usize,
    /// Chunk groups routed through the device (0 for CPU executors).
    pub groups_device: usize,
    /// Chunk groups handled by CPU workers.
    pub groups_cpu: usize,
    /// Peak resident compressed bytes during the run.
    pub peak_compressed_bytes: usize,
    /// Peak resident bytes including the residency cache (compressed +
    /// decompressed cache copies) — the footprint to hold against a memory
    /// budget when `cache_bytes > 0`.
    pub peak_resident_bytes: usize,
    /// Peak transient working-buffer bytes (per-worker group buffers).
    pub peak_buffer_bytes: usize,
    /// Host pinned staging bytes held by the executor (0 for CPU-only).
    pub pinned_bytes: usize,
    /// Device working-buffer bytes held by the executor (0 for CPU-only).
    pub device_buffer_bytes: usize,
    /// Modeled end-to-end time with no overlap (sum of all phases).
    pub modeled_serial: Duration,
    /// Modeled end-to-end time with perfect phase overlap
    /// (max of CPU-side and device-side busy time).
    pub modeled_overlapped: Duration,
    /// The run's end-state fidelity target (`None` when no budget was
    /// configured).
    pub fidelity_budget: Option<f64>,
    /// Total per-amplitude error allowance derived from the fidelity
    /// target (0.0 without a budget).
    pub error_budget: f64,
    /// Per-amplitude error actually spent across all stages — the sum of
    /// the per-stage ledger in
    /// [`telemetry.error_spend()`](RunTelemetry::error_spend). Always
    /// within [`error_budget`](Self::error_budget), so the end-state
    /// fidelity claim is auditable.
    pub error_spent: f64,
    /// The full span/counter record the durations above derive from.
    pub telemetry: RunTelemetry,
}

impl RunReport {
    /// Total CPU-side busy time (decompress + apply + recompress).
    pub fn cpu_busy(&self) -> Duration {
        self.decompress + self.cpu_apply + self.compress
    }

    /// Total transient working bytes (group buffers + pinned staging).
    pub fn peak_working_bytes(&self) -> usize {
        self.peak_buffer_bytes + self.pinned_bytes
    }
}
