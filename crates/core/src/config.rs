//! MEMQSIM configuration.

use mq_compress::CodecSpec;

/// Configuration shared by the MEMQSIM engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemQSimConfig {
    /// log2 of amplitudes per compressed chunk.
    pub chunk_bits: u32,
    /// Maximum distinct cross-chunk pairing qubits per stage (working set
    /// per chunk group is `2^max_high_qubits` chunks).
    pub max_high_qubits: u32,
    /// Which codec compresses resident chunks.
    pub codec: CodecSpec,
    /// CPU worker threads for decompress/apply/recompress ("idle cores",
    /// paper Fig. 2 step 5).
    pub workers: usize,
    /// In-flight staging buffers for the hybrid pipeline (2 = classic
    /// double buffering).
    pub pipeline_buffers: usize,
    /// Fraction of chunk groups updated on the CPU instead of the device
    /// in the hybrid engine (0.0 = all device, 1.0 = all CPU).
    pub cpu_share: f64,
    /// Hybrid engine: run transfers and kernels on *separate* device
    /// streams linked by events, so the modeled device clock overlaps the
    /// H2D of group `k+1` with the kernels of group `k` (paper Fig. 2 step
    /// 3: "initiates the GPU kernel asynchronously during the CPU-GPU data
    /// transfer").
    pub dual_stream: bool,
    /// Run the commutation-aware reordering pass
    /// (`mq_circuit::reorder::reorder_for_locality`) before partitioning,
    /// clustering same-signature gates to cut stage count further.
    pub reorder: bool,
}

impl Default for MemQSimConfig {
    fn default() -> Self {
        MemQSimConfig {
            chunk_bits: 16,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb: 1e-10 },
            workers: 1,
            pipeline_buffers: 2,
            cpu_share: 0.0,
            dual_stream: false,
            reorder: false,
        }
    }
}

impl MemQSimConfig {
    /// Effective chunk bits for an `n`-qubit register: chunks never exceed
    /// the state vector itself.
    pub fn effective_chunk_bits(&self, n_qubits: u32) -> u32 {
        self.chunk_bits.min(n_qubits)
    }

    /// Validates parameter sanity, returning a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_high_qubits == 0 {
            return Err("max_high_qubits must be >= 1".into());
        }
        if self.max_high_qubits > 8 {
            return Err("max_high_qubits > 8 would need 256-chunk groups".into());
        }
        if self.pipeline_buffers == 0 {
            return Err("pipeline_buffers must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.cpu_share) {
            return Err(format!("cpu_share {} outside [0, 1]", self.cpu_share));
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MemQSimConfig::default().validate().is_ok());
    }

    #[test]
    fn effective_chunk_bits_clamps() {
        let cfg = MemQSimConfig {
            chunk_bits: 16,
            ..Default::default()
        };
        assert_eq!(cfg.effective_chunk_bits(10), 10);
        assert_eq!(cfg.effective_chunk_bits(20), 16);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let bad = [
            MemQSimConfig {
                max_high_qubits: 0,
                ..Default::default()
            },
            MemQSimConfig {
                max_high_qubits: 9,
                ..Default::default()
            },
            MemQSimConfig {
                pipeline_buffers: 0,
                ..Default::default()
            },
            MemQSimConfig {
                cpu_share: 1.5,
                ..Default::default()
            },
            MemQSimConfig {
                workers: 0,
                ..Default::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?}");
        }
    }
}
