//! MEMQSIM configuration.

use crate::store::CachePolicy;
use mq_compress::{CodecSpec, Precision};

/// Which base storage tier [`build_store`](crate::store::build_store)
/// assembles the stack on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Codec-compressed chunks with integrity checksums
    /// ([`CompressedTier`](crate::store::CompressedTier)) — the paper's
    /// representation and the default.
    #[default]
    Compressed,
    /// Uncompressed chunks ([`DenseStore`](crate::store::DenseStore)) —
    /// the no-codec baseline for widths where codec overhead dominates.
    Dense,
    /// Compressed chunks bounded by an in-memory byte budget; overflow
    /// spills to temp files ([`SpillStore`](crate::store::SpillStore)) —
    /// the beyond-RAM "+5 qubits" direction.
    Spill {
        /// Maximum compressed bytes resident in CPU memory at once.
        resident_budget: usize,
    },
}

/// Plan-level gate fusion applied per stage by
/// [`build_plan`](crate::engine::cpu::build_plan). Fusion never crosses a
/// stage barrier, and gates touching qubits at or above the chunk width
/// pass through unfused so a stage's cross-chunk pairing set stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionLevel {
    /// No fusion; every plan gate is applied as authored.
    #[default]
    Off,
    /// Collapse runs of single-qubit gates into `U1q` gates
    /// ([`fuse_1q_runs`](mq_circuit::fusion::fuse_1q_runs)).
    Runs1q,
    /// Fuse toward two-qubit blocks: absorb 1q gates into adjacent 2q
    /// gates and merge same-pair 2q gates into `U2q`
    /// ([`fuse_to_2q`](mq_circuit::fusion::fuse_to_2q)).
    Blocks2q,
}

/// How chunks cross the CPU↔GPU link in the hybrid engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Decompress on the host and ship raw amplitudes (the paper's
    /// strategies and the default).
    #[default]
    Raw,
    /// Ship the *compressed* payload and run the codec as staged device
    /// kernels (`DecodeChunk` / `EncodeChunk`): link bytes drop by the
    /// codec ratio at the cost of modeled decode/encode-kernel time.
    /// Payloads pass straight between the compressed store and the device,
    /// so the final state stays bit-identical to [`TransferMode::Raw`].
    Compressed,
}

/// How [`run_with_executor`](crate::engine::exec::run_with_executor)
/// scatters each stage's chunk groups across an N-device fleet. Groups
/// within a stage touch disjoint chunk sets, so every policy produces a
/// bit-identical final state — policies only move modeled time and
/// device-arena locality around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Rank groups by their base chunk and split the ranking into N
    /// contiguous ranges, so a chunk range keeps hitting the same device's
    /// arena across stages (the default).
    #[default]
    ChunkAffinity,
    /// Deal groups out in submission order: group `seq` goes to device
    /// `seq % N`.
    RoundRobin,
    /// Greedy least-loaded: each group goes to the device with the fewest
    /// chunks assigned so far (load carries across stages), absorbing
    /// heterogeneous group sizes.
    LoadBalanced,
}

/// Whether the planner may re-map logical qubits onto physical state
/// positions between stages. Remapping trades one-off permutation sweeps
/// for fewer cross-chunk stages on circuits that keep hammering qubits
/// above the chunk width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutPolicy {
    /// Logical qubit `q` stays at physical position `q` for the whole run
    /// (the default; plans carry no remap transitions).
    #[default]
    Fixed,
    /// Greedy cost-model layout ([`mq_circuit::layout::plan_greedy`]): the
    /// planner may insert remap transitions swapping a hot cross-chunk
    /// qubit with a cold intra-chunk one when the chunk visits saved over
    /// a lookahead window beat the cost of the remap sweep. Falls back to
    /// the fixed plan whenever remapping would not strictly reduce chunk
    /// visits; applies to staged plans only (per-gate plans stay fixed).
    Greedy,
}

/// How a run-level fidelity budget is split into per-stage error
/// allowances. The budget converts the end-state fidelity target into a
/// total per-amplitude error allowance; the policy decides which stages
/// get to spend it. Every policy allocates bounds that sum to (at most)
/// the total, so the end-state claim holds regardless of the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Every stage gets `total / n_stages` (the default).
    #[default]
    Uniform,
    /// Early stages get tighter bounds (errors introduced early pass
    /// through more gates); allowances grow linearly toward the end.
    FrontLoaded,
    /// Early stages get looser bounds (useful when late-circuit states are
    /// the structured, compressible ones); allowances shrink linearly.
    BackLoaded,
}

impl BudgetPolicy {
    /// Splits `total` into `n_stages` per-stage allowances summing to
    /// `total` (within rounding). Returns an empty vector for zero stages.
    pub fn allocate(&self, total: f64, n_stages: usize) -> Vec<f64> {
        if n_stages == 0 {
            return Vec::new();
        }
        let n = n_stages as f64;
        match self {
            BudgetPolicy::Uniform => vec![total / n; n_stages],
            // Linear ramp with weights 1, 2, ..., n (front-loaded spends
            // the small weights first); weights sum to n(n+1)/2.
            BudgetPolicy::FrontLoaded => {
                let denom = n * (n + 1.0) / 2.0;
                (1..=n_stages).map(|k| total * k as f64 / denom).collect()
            }
            BudgetPolicy::BackLoaded => {
                let denom = n * (n + 1.0) / 2.0;
                (1..=n_stages)
                    .rev()
                    .map(|k| total * k as f64 / denom)
                    .collect()
            }
        }
    }
}

/// Per-role thread counts for the pipelined CPU executor
/// ([`CpuWorkerExecutor`](crate::engine::cpu::CpuWorkerExecutor) with
/// `pipeline_depth > 1`): decoder pool → apply pool → encoder pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSplit {
    /// Threads decompressing chunk groups into working buffers.
    pub decode: usize,
    /// Threads applying the stage's specialized gates.
    pub apply: usize,
    /// Threads recompressing finished groups back into the store.
    pub encode: usize,
}

impl WorkerSplit {
    /// A split with explicit per-role counts (each must be >= 1 to pass
    /// [`MemQSimConfig::validate`]).
    pub fn new(decode: usize, apply: usize, encode: usize) -> WorkerSplit {
        WorkerSplit {
            decode,
            apply,
            encode,
        }
    }

    /// The default split for `workers` total threads, clamped to the
    /// machine: a request larger than
    /// [`std::thread::available_parallelism`] is cut down to the hardware
    /// thread count before splitting, so oversubscribed configs don't
    /// schedule three oversized pools onto a small box.
    pub fn auto(workers: usize) -> WorkerSplit {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        WorkerSplit::auto_for_cores(workers, cores)
    }

    /// The split [`auto`](Self::auto) would pick on a machine with `cores`
    /// hardware threads. Codec work dominates the chunk loop (decompress +
    /// recompress are ~85% of busy time in the codec-bound regime), so
    /// decode and encode each take ~2/5 of the clamped budget and apply
    /// gets the remainder; every role keeps at least one thread, so the
    /// 1-core degenerate split is `(1, 1, 1)`.
    pub fn auto_for_cores(workers: usize, cores: usize) -> WorkerSplit {
        let workers = workers.min(cores.max(1));
        let codec_side = (2 * workers).div_ceil(5).max(1);
        WorkerSplit {
            decode: codec_side,
            apply: workers.saturating_sub(2 * codec_side).max(1),
            encode: codec_side,
        }
    }

    /// Total threads across the three roles.
    pub fn total(&self) -> usize {
        self.decode + self.apply + self.encode
    }
}

/// Configuration shared by the MEMQSIM engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemQSimConfig {
    /// log2 of amplitudes per compressed chunk.
    pub chunk_bits: u32,
    /// Maximum distinct cross-chunk pairing qubits per stage (working set
    /// per chunk group is `2^max_high_qubits` chunks).
    pub max_high_qubits: u32,
    /// Which codec compresses resident chunks.
    pub codec: CodecSpec,
    /// CPU worker threads for decompress/apply/recompress ("idle cores",
    /// paper Fig. 2 step 5).
    pub workers: usize,
    /// In-flight staging buffers for the hybrid pipeline (2 = classic
    /// double buffering).
    pub pipeline_buffers: usize,
    /// In-flight chunk-group budget for the CPU worker pipeline: at most
    /// this many decompressed groups exist at once across the decode →
    /// apply → encode pools. `1` (the default) is the serial chunk loop;
    /// larger depths overlap the three roles at the cost of
    /// `pipeline_depth × group_bytes` of working buffers.
    pub pipeline_depth: usize,
    /// Per-role thread counts for the pipelined CPU path. `None` (the
    /// default) derives a codec-heavy split from `workers` via
    /// [`WorkerSplit::auto`]. Ignored at `pipeline_depth == 1`, where
    /// `workers` drives the flat group-parallel loop instead.
    pub worker_split: Option<WorkerSplit>,
    /// Fraction of chunk groups updated on the CPU instead of the device
    /// in the hybrid engine (0.0 = all device, 1.0 = all CPU).
    pub cpu_share: f64,
    /// Hybrid engine: run transfers and kernels on *separate* device
    /// streams linked by events, so the modeled device clock overlaps the
    /// H2D of group `k+1` with the kernels of group `k` (paper Fig. 2 step
    /// 3: "initiates the GPU kernel asynchronously during the CPU-GPU data
    /// transfer").
    pub dual_stream: bool,
    /// Run the commutation-aware reordering pass
    /// (`mq_circuit::reorder::reorder_for_locality`) before partitioning,
    /// clustering same-signature gates to cut stage count further.
    pub reorder: bool,
    /// Byte budget for the store's residency cache of decompressed hot
    /// chunks (0 = disabled). Cache bytes count toward peak resident
    /// memory, so the budget trades codec traffic against footprint.
    pub cache_bytes: usize,
    /// When cached stores reach the compressed representation (write-back
    /// defers recompression to eviction/flush; write-through keeps slots
    /// always current).
    pub cache_policy: CachePolicy,
    /// Which base storage tier holds the chunks (compressed, dense, or
    /// disk-spill).
    pub store_kind: StoreKind,
    /// Plan-level per-stage gate fusion (fewer gates, fewer buffer passes
    /// per chunk visit); `Off` reproduces the unfused per-gate apply path.
    pub fusion: FusionLevel,
    /// How chunks cross the CPU↔GPU link in the hybrid engine (raw
    /// amplitudes, or compressed payloads decoded on the device).
    pub transfer_mode: TransferMode,
    /// Number of simulated devices the hybrid engine shards chunk groups
    /// across (1 = the classic single-GPU path). Each device gets its own
    /// stream, arena, staging buffers, and per-device stats; the modeled
    /// run time becomes the makespan (max over devices).
    pub devices: usize,
    /// How stage groups are scattered across the device fleet; ignored at
    /// `devices == 1`.
    pub shard_policy: ShardPolicy,
    /// Whether the planner may insert remap transitions that permute the
    /// logical→physical qubit layout between stages to cut chunk visits
    /// (`Fixed` keeps the identity layout for the whole run).
    pub layout_policy: LayoutPolicy,
    /// End-state fidelity target (`None` = no budget). When set (requires
    /// [`CodecSpec::Auto`]), the engine converts `1 - target` into a total
    /// per-amplitude error allowance, splits it across stages per
    /// `budget_policy`, and feeds each stage's bound to the adaptive codec
    /// — tracking actual per-stage spend in telemetry.
    pub fidelity_budget: Option<f64>,
    /// How the fidelity budget is split into per-stage allowances; ignored
    /// without `fidelity_budget`.
    pub budget_policy: BudgetPolicy,
    /// Numeric width of stored chunks. [`Precision::Adaptive`] (requires
    /// [`CodecSpec::Auto`]) lets the codec demote chunks to f32 pairs when
    /// the rounding error fits the stage's allowance.
    pub precision: Precision,
}

impl Default for MemQSimConfig {
    fn default() -> Self {
        MemQSimConfig {
            chunk_bits: 16,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb: 1e-10 },
            workers: 1,
            pipeline_buffers: 2,
            pipeline_depth: 1,
            worker_split: None,
            cpu_share: 0.0,
            dual_stream: false,
            reorder: false,
            cache_bytes: 0,
            cache_policy: CachePolicy::WriteBack,
            store_kind: StoreKind::Compressed,
            fusion: FusionLevel::Off,
            transfer_mode: TransferMode::Raw,
            devices: 1,
            shard_policy: ShardPolicy::ChunkAffinity,
            layout_policy: LayoutPolicy::Fixed,
            fidelity_budget: None,
            budget_policy: BudgetPolicy::Uniform,
            precision: Precision::F64,
        }
    }
}

impl MemQSimConfig {
    /// Starts a fail-fast builder from the default configuration.
    ///
    /// [`MemQSimConfigBuilder::build`] validates, so an invalid combination
    /// surfaces at construction instead of at engine start:
    ///
    /// ```
    /// use memqsim_core::MemQSimConfig;
    ///
    /// let cfg = MemQSimConfig::builder()
    ///     .chunk_bits(12)
    ///     .workers(4)
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(cfg.chunk_bits, 12);
    /// assert!(MemQSimConfig::builder().workers(0).build().is_err());
    /// ```
    pub fn builder() -> MemQSimConfigBuilder {
        MemQSimConfigBuilder {
            cfg: MemQSimConfig::default(),
        }
    }

    /// Effective chunk bits for an `n`-qubit register: chunks never exceed
    /// the state vector itself.
    pub fn effective_chunk_bits(&self, n_qubits: u32) -> u32 {
        self.chunk_bits.min(n_qubits)
    }

    /// Validates parameter sanity, returning a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_high_qubits == 0 {
            return Err("max_high_qubits must be >= 1".into());
        }
        if self.max_high_qubits > 8 {
            return Err("max_high_qubits > 8 would need 256-chunk groups".into());
        }
        if self.pipeline_buffers == 0 {
            return Err("pipeline_buffers must be >= 1".into());
        }
        if self.pipeline_depth == 0 {
            return Err("pipeline_depth must be >= 1 (1 = serial chunk loop)".into());
        }
        if let Some(split) = self.worker_split {
            if split.decode == 0 || split.apply == 0 || split.encode == 0 {
                return Err(format!(
                    "worker_split needs >= 1 thread per role, got \
                     decode {} / apply {} / encode {}",
                    split.decode, split.apply, split.encode
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.cpu_share) {
            return Err(format!("cpu_share {} outside [0, 1]", self.cpu_share));
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.devices == 0 {
            return Err("devices must be >= 1".into());
        }
        if let Some(target) = self.fidelity_budget {
            if !(target > 0.0 && target < 1.0) {
                return Err(format!("fidelity_budget {target} outside (0, 1)"));
            }
            if !matches!(self.codec, CodecSpec::Auto { .. }) {
                return Err("fidelity_budget requires the adaptive codec (CodecSpec::Auto)".into());
            }
        }
        if self.precision == Precision::Adaptive && !matches!(self.codec, CodecSpec::Auto { .. }) {
            return Err("Precision::Adaptive requires the adaptive codec (CodecSpec::Auto)".into());
        }
        Ok(())
    }
}

/// Builder for [`MemQSimConfig`]; created by [`MemQSimConfig::builder`].
///
/// Starts from [`MemQSimConfig::default`]; every setter overrides one field
/// and [`build`](Self::build) runs [`MemQSimConfig::validate`] so the result
/// is valid by construction. The struct-literal path (`MemQSimConfig { .. }`)
/// remains available for tests and call sites that want raw field access.
#[derive(Debug, Clone)]
pub struct MemQSimConfigBuilder {
    cfg: MemQSimConfig,
}

impl MemQSimConfigBuilder {
    /// log2 of amplitudes per compressed chunk.
    pub fn chunk_bits(mut self, chunk_bits: u32) -> Self {
        self.cfg.chunk_bits = chunk_bits;
        self
    }

    /// Maximum distinct cross-chunk pairing qubits per stage.
    pub fn max_high_qubits(mut self, max_high_qubits: u32) -> Self {
        self.cfg.max_high_qubits = max_high_qubits;
        self
    }

    /// Which codec compresses resident chunks.
    pub fn codec(mut self, codec: CodecSpec) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// CPU worker threads for decompress/apply/recompress.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// In-flight staging buffers for the hybrid pipeline.
    pub fn pipeline_buffers(mut self, pipeline_buffers: usize) -> Self {
        self.cfg.pipeline_buffers = pipeline_buffers;
        self
    }

    /// In-flight chunk-group budget for the CPU worker pipeline
    /// (1 = serial chunk loop).
    pub fn pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        self.cfg.pipeline_depth = pipeline_depth;
        self
    }

    /// Explicit per-role thread counts for the pipelined CPU path
    /// (otherwise derived from `workers` via [`WorkerSplit::auto`]).
    pub fn worker_split(mut self, split: WorkerSplit) -> Self {
        self.cfg.worker_split = Some(split);
        self
    }

    /// Fraction of chunk groups updated on the CPU instead of the device.
    pub fn cpu_share(mut self, cpu_share: f64) -> Self {
        self.cfg.cpu_share = cpu_share;
        self
    }

    /// Run transfers and kernels on separate, event-linked device streams.
    pub fn dual_stream(mut self, dual_stream: bool) -> Self {
        self.cfg.dual_stream = dual_stream;
        self
    }

    /// Run the commutation-aware reordering pass before partitioning.
    pub fn reorder(mut self, reorder: bool) -> Self {
        self.cfg.reorder = reorder;
        self
    }

    /// Byte budget for the residency cache of decompressed hot chunks
    /// (0 disables it).
    pub fn cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cfg.cache_bytes = cache_bytes;
        self
    }

    /// When cached stores reach the compressed representation.
    pub fn cache_policy(mut self, cache_policy: CachePolicy) -> Self {
        self.cfg.cache_policy = cache_policy;
        self
    }

    /// Which base storage tier holds the chunks.
    pub fn store_kind(mut self, store_kind: StoreKind) -> Self {
        self.cfg.store_kind = store_kind;
        self
    }

    /// Plan-level per-stage gate fusion level.
    pub fn fusion(mut self, fusion: FusionLevel) -> Self {
        self.cfg.fusion = fusion;
        self
    }

    /// How chunks cross the CPU↔GPU link in the hybrid engine.
    pub fn transfer_mode(mut self, transfer_mode: TransferMode) -> Self {
        self.cfg.transfer_mode = transfer_mode;
        self
    }

    /// Number of simulated devices the hybrid engine shards across
    /// (1 = single-GPU).
    pub fn devices(mut self, devices: usize) -> Self {
        self.cfg.devices = devices;
        self
    }

    /// How stage groups are scattered across the device fleet.
    pub fn shard_policy(mut self, shard_policy: ShardPolicy) -> Self {
        self.cfg.shard_policy = shard_policy;
        self
    }

    /// Whether the planner may permute the logical→physical qubit layout
    /// between stages (`Fixed` = never, `Greedy` = when it cuts visits).
    pub fn layout_policy(mut self, layout_policy: LayoutPolicy) -> Self {
        self.cfg.layout_policy = layout_policy;
        self
    }

    /// End-state fidelity target in (0, 1); requires [`CodecSpec::Auto`].
    pub fn fidelity_budget(mut self, target: f64) -> Self {
        self.cfg.fidelity_budget = Some(target);
        self
    }

    /// How the fidelity budget is split into per-stage allowances.
    pub fn budget_policy(mut self, budget_policy: BudgetPolicy) -> Self {
        self.cfg.budget_policy = budget_policy;
        self
    }

    /// Numeric width of stored chunks ([`Precision::Adaptive`] requires
    /// [`CodecSpec::Auto`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Validates and returns the configuration, or a description of the
    /// first problem found.
    pub fn build(self) -> Result<MemQSimConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MemQSimConfig::default().validate().is_ok());
    }

    #[test]
    fn effective_chunk_bits_clamps() {
        let cfg = MemQSimConfig {
            chunk_bits: 16,
            ..Default::default()
        };
        assert_eq!(cfg.effective_chunk_bits(10), 10);
        assert_eq!(cfg.effective_chunk_bits(20), 16);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let bad = [
            MemQSimConfig {
                max_high_qubits: 0,
                ..Default::default()
            },
            MemQSimConfig {
                max_high_qubits: 9,
                ..Default::default()
            },
            MemQSimConfig {
                pipeline_buffers: 0,
                ..Default::default()
            },
            MemQSimConfig {
                pipeline_depth: 0,
                ..Default::default()
            },
            MemQSimConfig {
                worker_split: Some(WorkerSplit::new(2, 0, 2)),
                ..Default::default()
            },
            MemQSimConfig {
                cpu_share: 1.5,
                ..Default::default()
            },
            MemQSimConfig {
                workers: 0,
                ..Default::default()
            },
            MemQSimConfig {
                devices: 0,
                ..Default::default()
            },
            // Budget outside (0, 1).
            MemQSimConfig {
                codec: CodecSpec::Auto { eb: None },
                fidelity_budget: Some(1.0),
                ..Default::default()
            },
            // Budget without the adaptive codec.
            MemQSimConfig {
                fidelity_budget: Some(0.999),
                ..Default::default()
            },
            // Adaptive precision without the adaptive codec.
            MemQSimConfig {
                precision: Precision::Adaptive,
                ..Default::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?}");
        }
        // The valid combination: budget + adaptive precision on Auto.
        assert!(MemQSimConfig {
            codec: CodecSpec::Auto { eb: None },
            fidelity_budget: Some(0.999999),
            precision: Precision::Adaptive,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn builder_round_trips_every_field() {
        let cfg = MemQSimConfig::builder()
            .chunk_bits(10)
            .max_high_qubits(3)
            .codec(CodecSpec::Fpc)
            .workers(2)
            .pipeline_buffers(4)
            .pipeline_depth(3)
            .worker_split(WorkerSplit::new(2, 1, 2))
            .cpu_share(0.5)
            .dual_stream(true)
            .reorder(true)
            .cache_bytes(1 << 20)
            .cache_policy(CachePolicy::WriteThrough)
            .store_kind(StoreKind::Spill {
                resident_budget: 1 << 24,
            })
            .fusion(FusionLevel::Blocks2q)
            .transfer_mode(TransferMode::Compressed)
            .devices(4)
            .shard_policy(ShardPolicy::RoundRobin)
            .layout_policy(LayoutPolicy::Greedy)
            .build()
            .unwrap();
        let adaptive = MemQSimConfig::builder()
            .codec(CodecSpec::Auto { eb: Some(1e-8) })
            .fidelity_budget(0.999999)
            .budget_policy(BudgetPolicy::FrontLoaded)
            .precision(Precision::Adaptive)
            .build()
            .unwrap();
        assert_eq!(adaptive.fidelity_budget, Some(0.999999));
        assert_eq!(adaptive.budget_policy, BudgetPolicy::FrontLoaded);
        assert_eq!(adaptive.precision, Precision::Adaptive);
        assert_eq!(
            cfg,
            MemQSimConfig {
                chunk_bits: 10,
                max_high_qubits: 3,
                codec: CodecSpec::Fpc,
                workers: 2,
                pipeline_buffers: 4,
                pipeline_depth: 3,
                worker_split: Some(WorkerSplit::new(2, 1, 2)),
                cpu_share: 0.5,
                dual_stream: true,
                reorder: true,
                cache_bytes: 1 << 20,
                cache_policy: CachePolicy::WriteThrough,
                store_kind: StoreKind::Spill {
                    resident_budget: 1 << 24,
                },
                fusion: FusionLevel::Blocks2q,
                transfer_mode: TransferMode::Compressed,
                devices: 4,
                shard_policy: ShardPolicy::RoundRobin,
                layout_policy: LayoutPolicy::Greedy,
                fidelity_budget: None,
                budget_policy: BudgetPolicy::Uniform,
                precision: Precision::F64,
            }
        );
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(
            MemQSimConfig::builder().build().unwrap(),
            MemQSimConfig::default()
        );
    }

    #[test]
    fn builder_rejects_invalid_combinations_at_build_time() {
        assert!(MemQSimConfig::builder().workers(0).build().is_err());
        assert!(MemQSimConfig::builder().cpu_share(-0.1).build().is_err());
        assert!(MemQSimConfig::builder()
            .pipeline_buffers(0)
            .build()
            .is_err());
        assert!(MemQSimConfig::builder().max_high_qubits(0).build().is_err());
        let err = MemQSimConfig::builder().cpu_share(2.0).build().unwrap_err();
        assert!(err.contains("cpu_share"), "{err}");
        let err = MemQSimConfig::builder()
            .pipeline_depth(0)
            .build()
            .unwrap_err();
        assert!(err.contains("pipeline_depth"), "{err}");
        let err = MemQSimConfig::builder()
            .worker_split(WorkerSplit::new(0, 1, 1))
            .build()
            .unwrap_err();
        assert!(err.contains("worker_split"), "{err}");
        let err = MemQSimConfig::builder().devices(0).build().unwrap_err();
        assert!(err.contains("devices"), "{err}");
        let err = MemQSimConfig::builder()
            .fidelity_budget(0.999)
            .build()
            .unwrap_err();
        assert!(err.contains("fidelity_budget"), "{err}");
        let err = MemQSimConfig::builder()
            .precision(Precision::Adaptive)
            .build()
            .unwrap_err();
        assert!(err.contains("Precision::Adaptive"), "{err}");
    }

    #[test]
    fn budget_policies_allocate_the_whole_budget() {
        for policy in [
            BudgetPolicy::Uniform,
            BudgetPolicy::FrontLoaded,
            BudgetPolicy::BackLoaded,
        ] {
            assert!(policy.allocate(1e-6, 0).is_empty());
            for n in [1usize, 2, 7] {
                let bounds = policy.allocate(1e-6, n);
                assert_eq!(bounds.len(), n);
                assert!(bounds.iter().all(|&b| b > 0.0), "{policy:?}");
                let sum: f64 = bounds.iter().sum();
                assert!((sum - 1e-6).abs() < 1e-18, "{policy:?}: sum {sum}");
            }
        }
        // Front-loaded tightens early stages; back-loaded is its mirror.
        let front = BudgetPolicy::FrontLoaded.allocate(1.0, 4);
        assert!(front.windows(2).all(|w| w[0] < w[1]));
        let back = BudgetPolicy::BackLoaded.allocate(1.0, 4);
        assert!(back.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(front[0], back[3]);
    }

    #[test]
    fn auto_split_keeps_every_role_alive_and_favors_codec() {
        for workers in 1..=16usize {
            let split = WorkerSplit::auto_for_cores(workers, 64);
            assert!(split.decode >= 1 && split.apply >= 1 && split.encode >= 1);
            assert_eq!(split.decode, split.encode, "codec roles are symmetric");
            assert!(split.apply <= split.decode.max(1) * 2);
        }
        // At least `workers` threads total once there is room to split.
        assert_eq!(
            WorkerSplit::auto_for_cores(1, 64),
            WorkerSplit::new(1, 1, 1)
        );
        assert_eq!(
            WorkerSplit::auto_for_cores(5, 64),
            WorkerSplit::new(2, 1, 2)
        );
        assert_eq!(
            WorkerSplit::auto_for_cores(10, 64),
            WorkerSplit::new(4, 2, 4)
        );
    }

    #[test]
    fn auto_split_clamps_the_pool_to_the_machine() {
        // An oversubscribed request on a 1-core box degenerates to one
        // thread per role — the smallest split that keeps the pipeline
        // stages alive.
        assert_eq!(WorkerSplit::auto_for_cores(8, 1), WorkerSplit::new(1, 1, 1));
        // Clamping to `cores` is the same as asking for `cores` outright.
        assert_eq!(
            WorkerSplit::auto_for_cores(10, 5),
            WorkerSplit::auto_for_cores(5, 64)
        );
        // A request that fits is untouched by the clamp.
        assert_eq!(
            WorkerSplit::auto_for_cores(5, 64),
            WorkerSplit::new(2, 1, 2)
        );
        // `auto` itself never plans more threads than the machine has,
        // modulo the one-thread-per-role floor.
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        assert!(WorkerSplit::auto(usize::MAX).total() <= cores.max(3));
    }
}
